//! Extension experiment: traffic-mix sensitivity (massive IoT).

fn main() {
    let obs = sc_emu::obs::ObsSink::from_env("ext_iot");
    obs.recorder().inc("emu.ext_iot.runs", 1);
    let (r, timing) = sc_emu::report::timed("ext_iot", sc_emu::ext_iot::run);
    timing.eprint();
    println!("{}", sc_emu::ext_iot::render(&r));
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write(
        "results/ext_iot.json",
        serde_json::to_string_pretty(&r).expect("serialize"),
    )
    .expect("write json");
    eprintln!("wrote results/ext_iot.json");
    obs.write();
}
