//! Extension experiment: session survival under serving-satellite
//! crashes (chaos injection).

fn main() {
    let obs = sc_emu::obs::ObsSink::from_env("ext_chaos");
    let (r, timing) = sc_emu::report::timed("ext_chaos", || {
        sc_emu::ext_chaos::run_obs(&obs.recorder())
    });
    timing.eprint();
    println!("{}", sc_emu::ext_chaos::render(&r));
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write(
        "results/ext_chaos.json",
        serde_json::to_string_pretty(&r).expect("serialize"),
    )
    .expect("write json");
    eprintln!("wrote results/ext_chaos.json");
    obs.write();
}
