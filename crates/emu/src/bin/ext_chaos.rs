//! Extension experiment: session survival under serving-satellite
//! crashes (chaos injection).

fn main() {
    sc_emu::obs::run_cli("ext_chaos", sc_emu::ext_chaos::run_obs, sc_emu::ext_chaos::render);
}
