//! Regenerates fig07 of the paper. Prints the table and writes
//! `results/fig07.json` (plus a telemetry sidecar when `--obs-out` or
//! `SC_OBS=1` is given — see docs/TELEMETRY.md).

fn main() {
    sc_emu::obs::run_cli(
        "fig07",
        |rec| {
            rec.inc("emu.fig07.runs", 1);
            sc_emu::fig07::run()
        },
        sc_emu::fig07::render,
    );
}
