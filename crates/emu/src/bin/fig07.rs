//! Regenerates fig07 of the paper. Prints the table and writes
//! `results/fig07.json`.

fn main() {
    let obs = sc_emu::obs::ObsSink::from_env("fig07");
    obs.recorder().inc("emu.fig07.runs", 1);
    let (r, timing) = sc_emu::report::timed("fig07", sc_emu::fig07::run);
    timing.eprint();
    println!("{}", sc_emu::fig07::render(&r));
    std::fs::create_dir_all("results").expect("create results dir");
    let json = serde_json::to_string_pretty(&r).expect("serialize");
    std::fs::write("results/fig07.json", json).expect("write json");
    eprintln!("wrote results/fig07.json");
    obs.write();
}
