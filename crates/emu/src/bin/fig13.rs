//! Regenerates Fig. 13 (failure inputs). Prints tables and writes
//! `results/fig13.json`.

fn main() {
    sc_emu::obs::run_cli(
        "fig13",
        |rec| {
            rec.inc("emu.fig13.runs", 1);
            sc_emu::fig13::run()
        },
        sc_emu::fig13::render,
    );
}
