//! Regenerates Fig. 13 (failure inputs). Prints tables and writes
//! `results/fig13.json`.

fn main() {
    let r = sc_emu::fig13::run();
    println!("{}", sc_emu::fig13::render(&r));
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write(
        "results/fig13.json",
        serde_json::to_string_pretty(&r).expect("serialize"),
    )
    .expect("write json");
    eprintln!("wrote results/fig13.json");
}
