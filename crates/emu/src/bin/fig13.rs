//! Regenerates Fig. 13 (failure inputs). Prints tables and writes
//! `results/fig13.json`.

fn main() {
    let obs = sc_emu::obs::ObsSink::from_env("fig13");
    obs.recorder().inc("emu.fig13.runs", 1);
    let (r, timing) = sc_emu::report::timed("fig13", sc_emu::fig13::run);
    timing.eprint();
    println!("{}", sc_emu::fig13::render(&r));
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write(
        "results/fig13.json",
        serde_json::to_string_pretty(&r).expect("serialize"),
    )
    .expect("write json");
    eprintln!("wrote results/fig13.json");
    obs.write();
}
