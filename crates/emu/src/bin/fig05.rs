//! Regenerates fig05 of the paper. Prints the table and writes
//! `results/fig05.json` (plus a telemetry sidecar when `--obs-out` or
//! `SC_OBS=1` is given — see docs/TELEMETRY.md).

fn main() {
    sc_emu::obs::run_cli("fig05", sc_emu::fig05::run_obs, sc_emu::fig05::render);
}
