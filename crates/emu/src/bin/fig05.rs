//! Regenerates fig05 of the paper. Prints the table and writes
//! `results/fig05.json`.

fn main() {
    let (r, timing) = sc_emu::report::timed("fig05", sc_emu::fig05::run);
    timing.eprint();
    println!("{}", sc_emu::fig05::render(&r));
    std::fs::create_dir_all("results").expect("create results dir");
    let json = serde_json::to_string_pretty(&r).expect("serialize");
    std::fs::write("results/fig05.json", json).expect("write json");
    eprintln!("wrote results/fig05.json");
}
