//! Regenerates fig05 of the paper. Prints the table and writes
//! `results/fig05.json` (plus a telemetry sidecar when `--obs-out` or
//! `SC_OBS=1` is given — see docs/TELEMETRY.md).

fn main() {
    let obs = sc_emu::obs::ObsSink::from_env("fig05");
    let rec = obs.recorder();
    let (r, timing) = sc_emu::report::timed("fig05", || sc_emu::fig05::run_obs(&rec));
    timing.eprint();
    println!("{}", sc_emu::fig05::render(&r));
    std::fs::create_dir_all("results").expect("create results dir");
    let json = serde_json::to_string_pretty(&r).expect("serialize");
    std::fs::write("results/fig05.json", json).expect("write json");
    eprintln!("wrote results/fig05.json");
    obs.write();
}
