//! Regenerates fig17 of the paper. Prints the table and writes
//! `results/fig17.json` (plus a telemetry sidecar when `--obs-out` or
//! `SC_OBS=1` is given — see docs/TELEMETRY.md).

fn main() {
    sc_emu::obs::run_cli(
        "fig17",
        |rec| {
            rec.inc("emu.fig17.runs", 1);
            sc_emu::fig17::run()
        },
        sc_emu::fig17::render,
    );
}
