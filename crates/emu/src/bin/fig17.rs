//! Regenerates fig17 of the paper. Prints the table and writes
//! `results/fig17.json`.

fn main() {
    let obs = sc_emu::obs::ObsSink::from_env("fig17");
    obs.recorder().inc("emu.fig17.runs", 1);
    let (r, timing) = sc_emu::report::timed("fig17", sc_emu::fig17::run);
    timing.eprint();
    println!("{}", sc_emu::fig17::render(&r));
    std::fs::create_dir_all("results").expect("create results dir");
    let json = serde_json::to_string_pretty(&r).expect("serialize");
    std::fs::write("results/fig17.json", json).expect("write json");
    eprintln!("wrote results/fig17.json");
    obs.write();
}
