//! Regenerates fig17 of the paper. Prints the table and writes
//! `results/fig17.json`.

fn main() {
    let (r, timing) = sc_emu::report::timed("fig17", sc_emu::fig17::run);
    timing.eprint();
    println!("{}", sc_emu::fig17::render(&r));
    std::fs::create_dir_all("results").expect("create results dir");
    let json = serde_json::to_string_pretty(&r).expect("serialize");
    std::fs::write("results/fig17.json", json).expect("write json");
    eprintln!("wrote results/fig17.json");
}
