//! Regenerates fig21 of the paper. Prints the table and writes
//! `results/fig21.json`.

fn main() {
    let obs = sc_emu::obs::ObsSink::from_env("fig21");
    obs.recorder().inc("emu.fig21.runs", 1);
    let (r, timing) = sc_emu::report::timed("fig21", sc_emu::fig21::run);
    timing.eprint();
    println!("{}", sc_emu::fig21::render(&r));
    std::fs::create_dir_all("results").expect("create results dir");
    let json = serde_json::to_string_pretty(&r).expect("serialize");
    std::fs::write("results/fig21.json", json).expect("write json");
    eprintln!("wrote results/fig21.json");
    obs.write();
}
