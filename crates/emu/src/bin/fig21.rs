//! Regenerates fig21 of the paper. Prints the table and writes
//! `results/fig21.json` (plus a telemetry sidecar when `--obs-out` or
//! `SC_OBS=1` is given — see docs/TELEMETRY.md).

fn main() {
    sc_emu::obs::run_cli(
        "fig21",
        |rec| {
            rec.inc("emu.fig21.runs", 1);
            sc_emu::fig21::run()
        },
        sc_emu::fig21::render,
    );
}
