//! Regenerates fig19 of the paper. Prints the table and writes
//! `results/fig19.json`.

fn main() {
    let obs = sc_emu::obs::ObsSink::from_env("fig19");
    obs.recorder().inc("emu.fig19.runs", 1);
    let (r, timing) = sc_emu::report::timed("fig19", sc_emu::fig19::run);
    timing.eprint();
    println!("{}", sc_emu::fig19::render(&r));
    std::fs::create_dir_all("results").expect("create results dir");
    let json = serde_json::to_string_pretty(&r).expect("serialize");
    std::fs::write("results/fig19.json", json).expect("write json");
    eprintln!("wrote results/fig19.json");
    obs.write();
}
