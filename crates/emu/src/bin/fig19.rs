//! Regenerates fig19 of the paper. Prints the table and writes
//! `results/fig19.json` (plus a telemetry sidecar when `--obs-out` or
//! `SC_OBS=1` is given — see docs/TELEMETRY.md).

fn main() {
    sc_emu::obs::run_cli(
        "fig19",
        |rec| {
            rec.inc("emu.fig19.runs", 1);
            sc_emu::fig19::run()
        },
        sc_emu::fig19::render,
    );
}
