//! Regenerates fig10 of the paper. Prints the table and writes
//! `results/fig10.json`.

fn main() {
    let (r, timing) = sc_emu::report::timed("fig10", sc_emu::fig10::run);
    timing.eprint();
    println!("{}", sc_emu::fig10::render(&r));
    std::fs::create_dir_all("results").expect("create results dir");
    let json = serde_json::to_string_pretty(&r).expect("serialize");
    std::fs::write("results/fig10.json", json).expect("write json");
    eprintln!("wrote results/fig10.json");
}
