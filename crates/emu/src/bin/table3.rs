//! Regenerates table3 of the paper. Prints the table and writes
//! `results/table3.json`.

fn main() {
    let obs = sc_emu::obs::ObsSink::from_env("table3");
    obs.recorder().inc("emu.table3.runs", 1);
    let (r, timing) = sc_emu::report::timed("table3", sc_emu::table3::run);
    timing.eprint();
    println!("{}", sc_emu::table3::render(&r));
    std::fs::create_dir_all("results").expect("create results dir");
    let json = serde_json::to_string_pretty(&r).expect("serialize");
    std::fs::write("results/table3.json", json).expect("write json");
    eprintln!("wrote results/table3.json");
    obs.write();
}
