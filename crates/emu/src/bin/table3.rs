//! Regenerates table3 of the paper. Prints the table and writes
//! `results/table3.json` (plus a telemetry sidecar when `--obs-out` or
//! `SC_OBS=1` is given — see docs/TELEMETRY.md).

fn main() {
    sc_emu::obs::run_cli(
        "table3",
        |rec| {
            rec.inc("emu.table3.runs", 1);
            sc_emu::table3::run()
        },
        sc_emu::table3::render,
    );
}
