//! Extension experiment: advantage vs. constellation scale.

fn main() {
    sc_emu::obs::run_cli(
        "ext_scaling",
        |rec| {
            rec.inc("emu.ext_scaling.runs", 1);
            sc_emu::ext_scaling::run()
        },
        sc_emu::ext_scaling::render,
    );
}
