//! Extension experiment: advantage vs. constellation scale.

fn main() {
    let (r, timing) = sc_emu::report::timed("ext_scaling", sc_emu::ext_scaling::run);
    timing.eprint();
    println!("{}", sc_emu::ext_scaling::render(&r));
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write(
        "results/ext_scaling.json",
        serde_json::to_string_pretty(&r).expect("serialize"),
    )
    .expect("write json");
    eprintln!("wrote results/ext_scaling.json");
}
