//! Extension experiment: advantage vs. constellation scale.

fn main() {
    let obs = sc_emu::obs::ObsSink::from_env("ext_scaling");
    obs.recorder().inc("emu.ext_scaling.runs", 1);
    let (r, timing) = sc_emu::report::timed("ext_scaling", sc_emu::ext_scaling::run);
    timing.eprint();
    println!("{}", sc_emu::ext_scaling::render(&r));
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write(
        "results/ext_scaling.json",
        serde_json::to_string_pretty(&r).expect("serialize"),
    )
    .expect("write json");
    eprintln!("wrote results/ext_scaling.json");
    obs.write();
}
