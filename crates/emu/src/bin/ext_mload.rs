//! Extension experiment: million-UE sharded sustained-load engine
//! (`--smoke` runs the bounded tier-1 variant).

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        sc_emu::obs::run_cli("ext_mload", sc_emu::ext_mload::run_smoke_obs, sc_emu::ext_mload::render);
    } else {
        sc_emu::obs::run_cli("ext_mload", sc_emu::ext_mload::run_obs, sc_emu::ext_mload::render);
    }
}
