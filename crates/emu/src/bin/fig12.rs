//! Regenerates fig12 of the paper. Prints the table and writes
//! `results/fig12.json` (plus a telemetry sidecar when `--obs-out` or
//! `SC_OBS=1` is given — see docs/TELEMETRY.md).

fn main() {
    sc_emu::obs::run_cli(
        "fig12",
        |rec| {
            rec.inc("emu.fig12.runs", 1);
            sc_emu::fig12::run()
        },
        sc_emu::fig12::render,
    );
}
