//! Regenerates fig12 of the paper. Prints the table and writes
//! `results/fig12.json`.

fn main() {
    let obs = sc_emu::obs::ObsSink::from_env("fig12");
    obs.recorder().inc("emu.fig12.runs", 1);
    let (r, timing) = sc_emu::report::timed("fig12", sc_emu::fig12::run);
    timing.eprint();
    println!("{}", sc_emu::fig12::render(&r));
    std::fs::create_dir_all("results").expect("create results dir");
    let json = serde_json::to_string_pretty(&r).expect("serialize");
    std::fs::write("results/fig12.json", json).expect("write json");
    eprintln!("wrote results/fig12.json");
    obs.write();
}
