//! Small text-table renderer and wall-clock timing shared by the
//! experiment binaries.

use std::time::Instant;

/// Wall-clock timing of one experiment run. Binaries print this to
/// stderr, keeping stdout tables and `results/*.json` byte-identical
/// whatever the thread count.
#[derive(Debug, Clone)]
pub struct RunTiming {
    pub experiment: String,
    pub wall_s: f64,
    pub threads: usize,
}

impl RunTiming {
    pub fn line(&self) -> String {
        format!(
            "[timing] {}: {:.3} s wall, {} thread{}",
            self.experiment,
            self.wall_s,
            self.threads,
            if self.threads == 1 { "" } else { "s" }
        )
    }

    pub fn eprint(&self) {
        eprintln!("{}", self.line());
    }
}

/// Time `f`, labeling the result with the experiment name and the
/// engine's worker count.
pub fn timed<R>(experiment: &str, f: impl FnOnce() -> R) -> (R, RunTiming) {
    let start = Instant::now();
    let r = f();
    (
        r,
        RunTiming {
            experiment: experiment.to_string(),
            wall_s: start.elapsed().as_secs_f64(),
            threads: crate::engine::thread_count(),
        },
    )
}

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with per-column widths.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                s.push_str(&format!(" {:<w$} |", c, w = w));
            }
            s.push('\n');
            s
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<w$}|", "", w = w + 2));
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
        }
        out
    }
}

/// Format a float compactly: integers without decimals, small values
/// with 2-3 significant decimals.
pub fn fmt_num(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{:.0}", v)
    } else if v.abs() >= 10.0 {
        format!("{:.1}", v)
    } else {
        format!("{:.3}", v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("| name      | value |"), "{s}");
        assert!(s.lines().count() == 4);
        // All lines equal width.
        let lens: Vec<_> = s.lines().map(|l| l.len()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{lens:?}");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        TextTable::new(&["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn fmt_num_ranges() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(12345.6), "12346");
        assert_eq!(fmt_num(42.34), "42.3");
        assert_eq!(fmt_num(1.2345), "1.234");
    }
}
