//! Telemetry sidecar plumbing for the experiment binaries.
//!
//! Every binary builds an [`ObsSink`] first thing in `main`. Telemetry
//! is **off by default** — the sink hands out a disabled
//! [`sc_obs::Recorder`] and [`ObsSink::write`] is a no-op, so the
//! regenerated `results/*.json` stay byte-identical to untelemetered
//! runs. It turns on in two ways:
//!
//! * `--obs-out <path>` (or `--obs-out=<path>`) on the command line
//!   names the sidecar file explicitly;
//! * the `SC_OBS` environment variable set to any non-empty value other
//!   than `"0"` selects the default sidecar path
//!   `results/<experiment>.telemetry.json` (the `SC_OBS=1` mode of
//!   `scripts/tier1.sh`).
//!
//! The sidecar schema is documented in `docs/TELEMETRY.md`. Emission is
//! byte-stable: same seed ⇒ same bytes, independent of `SC_EMU_THREADS`
//! (see [`crate::engine::parallel_map_obs_with`]).

use sc_obs::Recorder;
use std::path::PathBuf;

/// Where (and whether) one experiment binary writes its telemetry.
#[derive(Debug, Clone)]
pub struct ObsSink {
    experiment: &'static str,
    recorder: Recorder,
    out: Option<PathBuf>,
}

impl ObsSink {
    /// Resolve from the process arguments and environment (see the
    /// module docs for the precedence rules).
    pub fn from_env(experiment: &'static str) -> Self {
        Self::from_args(
            experiment,
            std::env::args().skip(1),
            std::env::var("SC_OBS").ok(),
        )
    }

    /// Testable core of [`Self::from_env`]: `args` are the process
    /// arguments (binary name already stripped), `sc_obs` the `SC_OBS`
    /// environment value, if any.
    pub fn from_args(
        experiment: &'static str,
        args: impl Iterator<Item = String>,
        sc_obs: Option<String>,
    ) -> Self {
        let mut out: Option<PathBuf> = None;
        let mut args = args;
        while let Some(a) = args.next() {
            if a == "--obs-out" {
                out = args.next().map(PathBuf::from);
            } else if let Some(p) = a.strip_prefix("--obs-out=") {
                out = Some(PathBuf::from(p));
            }
        }
        if out.is_none() && sc_obs.is_some_and(|v| !v.is_empty() && v != "0") {
            out = Some(PathBuf::from(format!(
                "results/{experiment}.telemetry.json"
            )));
        }
        let recorder = if out.is_some() {
            Recorder::new()
        } else {
            Recorder::disabled()
        };
        Self {
            experiment,
            recorder,
            out,
        }
    }

    /// The recorder to thread into the experiment (disabled when no
    /// sidecar was requested — recording through it is a no-op).
    pub fn recorder(&self) -> Recorder {
        self.recorder.clone()
    }

    /// Is a sidecar going to be written?
    pub fn enabled(&self) -> bool {
        self.out.is_some()
    }

    /// Write the sidecar. No-op when telemetry is disabled; I/O errors
    /// are reported on stderr, never panicked on (telemetry must not
    /// take an experiment down).
    pub fn write(&self) {
        let Some(path) = &self.out else { return };
        let json = self.recorder.snapshot().to_json(self.experiment);
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("obs: cannot create {}: {e}", dir.display());
                    return;
                }
            }
        }
        match std::fs::write(path, json) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("obs: cannot write {}: {e}", path.display()),
        }
    }
}

/// Map a Figure 9 procedure onto the 3-node replay topology the
/// telemetry miniatures use — UE = node 0, satellite radio = node 1,
/// ground segment = node 2 — keeping only the messages that actually
/// cross nodes (core-internal legs collapse onto the ground node).
pub fn replay_steps(p: &sc_fiveg::messages::Procedure) -> Vec<sc_netsim::sim::SimStep> {
    fn node(e: sc_fiveg::messages::Entity) -> usize {
        use sc_fiveg::messages::Entity;
        match e {
            Entity::Ue => 0,
            Entity::Ran | Entity::RanTarget => 1,
            _ => 2,
        }
    }
    p.steps
        .iter()
        .filter(|s| node(s.from) != node(s.to))
        .map(|s| sc_netsim::sim::SimStep {
            label: s.label.to_string(),
            from: node(s.from),
            to: node(s.to),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> std::vec::IntoIter<String> {
        v.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn disabled_by_default() {
        let s = ObsSink::from_args("figxx", args(&[]), None);
        assert!(!s.enabled());
        assert!(!s.recorder().enabled());
        s.write(); // no-op, no panic
    }

    #[test]
    fn obs_out_flag_enables() {
        let s = ObsSink::from_args("figxx", args(&["--obs-out", "/tmp/t.json"]), None);
        assert!(s.enabled());
        assert!(s.recorder().enabled());
        let s2 = ObsSink::from_args("figxx", args(&["--obs-out=/tmp/t.json"]), None);
        assert!(s2.enabled());
    }

    #[test]
    fn sc_obs_env_selects_default_path() {
        let s = ObsSink::from_args("fig05", args(&[]), Some("1".into()));
        assert!(s.enabled());
        assert_eq!(
            s.out.as_deref(),
            Some(std::path::Path::new("results/fig05.telemetry.json"))
        );
        assert!(!ObsSink::from_args("fig05", args(&[]), Some("0".into())).enabled());
        assert!(!ObsSink::from_args("fig05", args(&[]), Some(String::new())).enabled());
    }

    #[test]
    fn replay_steps_drop_core_internal_legs() {
        let c1 = sc_fiveg::messages::Procedure::build(
            sc_fiveg::messages::ProcedureKind::InitialRegistration,
        );
        let steps = replay_steps(&c1);
        assert!(!steps.is_empty());
        assert!(steps.len() < c1.message_count());
        for s in &steps {
            assert_ne!(s.from, s.to);
            assert!(s.from <= 2 && s.to <= 2);
        }
    }
}
