//! Telemetry sidecar plumbing for the experiment binaries.
//!
//! Every binary builds an [`ObsSink`] first thing in `main`. Telemetry
//! is **off by default** — the sink hands out a disabled
//! [`sc_obs::Recorder`] and [`ObsSink::write`] is a no-op, so the
//! regenerated `results/*.json` stay byte-identical to untelemetered
//! runs. It turns on in two ways:
//!
//! * `--obs-out <path>` (or `--obs-out=<path>`) on the command line
//!   names the sidecar file explicitly;
//! * the `SC_OBS` environment variable set to any non-empty value other
//!   than `"0"` selects the default sidecar path
//!   `results/<experiment>.telemetry.json` (the `SC_OBS=1` mode of
//!   `scripts/tier1.sh`).
//!
//! The sidecar schema is documented in `docs/TELEMETRY.md`. Emission is
//! byte-stable: same seed ⇒ same bytes, independent of `SC_EMU_THREADS`
//! (see [`crate::engine::parallel_map_obs_with`]).

use sc_obs::Recorder;
use std::path::PathBuf;

/// The whole `main` of an experiment binary: resolve the telemetry
/// sink, time the run, print the rendered table, write
/// `results/<experiment>.json`, and flush the sidecar. Every
/// `crates/emu/src/bin/*.rs` delegates here so the sidecar plumbing and
/// result-file layout live in exactly one place.
///
/// `run` receives the sink's recorder (disabled unless `--obs-out` /
/// `SC_OBS` asked for a sidecar), so plain experiments can ignore it
/// and telemetered ones thread it through.
pub fn run_cli<R: serde::Serialize>(
    experiment: &'static str,
    run: impl FnOnce(&Recorder) -> R,
    render: impl FnOnce(&R) -> String,
) {
    let sink = ObsSink::from_env(experiment);
    let rec = sink.recorder();
    let (r, timing) = crate::report::timed(experiment, || run(&rec));
    timing.eprint();
    println!("{}", render(&r));
    std::fs::create_dir_all("results").expect("create results dir");
    let json = serde_json::to_string_pretty(&r).expect("serialize");
    let path = format!("results/{experiment}.json");
    std::fs::write(&path, json).expect("write json");
    eprintln!("wrote {path}");
    sink.write();
}

/// Where (and whether) one experiment binary writes its telemetry.
#[derive(Debug, Clone)]
pub struct ObsSink {
    experiment: &'static str,
    recorder: Recorder,
    out: Option<PathBuf>,
}

impl ObsSink {
    /// Resolve from the process arguments and environment (see the
    /// module docs for the precedence rules).
    pub fn from_env(experiment: &'static str) -> Self {
        Self::from_args(
            experiment,
            std::env::args().skip(1),
            std::env::var("SC_OBS").ok(),
        )
    }

    /// Testable core of [`Self::from_env`]: `args` are the process
    /// arguments (binary name already stripped), `sc_obs` the `SC_OBS`
    /// environment value, if any.
    pub fn from_args(
        experiment: &'static str,
        args: impl Iterator<Item = String>,
        sc_obs: Option<String>,
    ) -> Self {
        let mut out: Option<PathBuf> = None;
        let mut args = args;
        while let Some(a) = args.next() {
            if a == "--obs-out" {
                out = args.next().map(PathBuf::from);
            } else if let Some(p) = a.strip_prefix("--obs-out=") {
                out = Some(PathBuf::from(p));
            }
        }
        if out.is_none() && sc_obs.is_some_and(|v| !v.is_empty() && v != "0") {
            out = Some(PathBuf::from(format!(
                "results/{experiment}.telemetry.json"
            )));
        }
        let recorder = if out.is_some() {
            Recorder::new()
        } else {
            Recorder::disabled()
        };
        Self {
            experiment,
            recorder,
            out,
        }
    }

    /// The recorder to thread into the experiment (disabled when no
    /// sidecar was requested — recording through it is a no-op).
    pub fn recorder(&self) -> Recorder {
        self.recorder.clone()
    }

    /// Is a sidecar going to be written?
    pub fn enabled(&self) -> bool {
        self.out.is_some()
    }

    /// Write the sidecar. No-op when telemetry is disabled; I/O errors
    /// are reported on stderr, never panicked on (telemetry must not
    /// take an experiment down).
    pub fn write(&self) {
        let Some(path) = &self.out else { return };
        let json = self.recorder.snapshot().to_json(self.experiment);
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("obs: cannot create {}: {e}", dir.display());
                    return;
                }
            }
        }
        match std::fs::write(path, json) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("obs: cannot write {}: {e}", path.display()),
        }
    }
}

/// Map a Figure 9 procedure onto the 3-node replay topology the
/// telemetry miniatures use — UE = node 0, satellite radio = node 1,
/// ground segment = node 2 — keeping only the messages that actually
/// cross nodes (core-internal legs collapse onto the ground node).
pub fn replay_steps(p: &sc_fiveg::messages::Procedure) -> Vec<sc_netsim::sim::SimStep> {
    fn node(e: sc_fiveg::messages::Entity) -> usize {
        use sc_fiveg::messages::Entity;
        match e {
            Entity::Ue => 0,
            Entity::Ran | Entity::RanTarget => 1,
            _ => 2,
        }
    }
    p.steps
        .iter()
        .filter(|s| node(s.from) != node(s.to))
        .map(|s| sc_netsim::sim::SimStep {
            label: s.label,
            from: node(s.from),
            to: node(s.to),
        })
        .collect()
}

/// Map a procedure onto the 2-node *satellite-local* replay topology —
/// UE = node 0, everything else (radio and core, co-located on the
/// serving satellite) = node 1. The stateless contrast to
/// [`replay_steps`]: no leg ever touches the ground segment, so the
/// only hop spans a traced replay emits are UE↔satellite.
pub fn replay_steps_local(p: &sc_fiveg::messages::Procedure) -> Vec<sc_netsim::sim::SimStep> {
    fn node(e: sc_fiveg::messages::Entity) -> usize {
        match e {
            sc_fiveg::messages::Entity::Ue => 0,
            _ => 1,
        }
    }
    p.steps
        .iter()
        .filter(|s| node(s.from) != node(s.to))
        .map(|s| sc_netsim::sim::SimStep {
            label: s.label,
            from: node(s.from),
            to: node(s.to),
        })
        .collect()
}

/// Replay `steps` of `proc` through `sim` under one causal root span:
/// opens the procedure's `fiveg.proc.*` span (tagged with the `route`
/// it takes — e.g. `"ground"` vs `"local"` vs `"geo-pipe"`), threads it
/// as the parent of the `netsim.sim.procedure` span
/// ([`sc_netsim::sim::ProcedureSim::run_traced`]), and closes it at the
/// outcome latency. With telemetry disabled this is exactly
/// `sim.run(steps, loss)`.
pub fn replay_traced(
    obs: &Recorder,
    sim: &sc_netsim::sim::ProcedureSim,
    proc: &sc_fiveg::messages::Procedure,
    steps: &[sc_netsim::sim::SimStep],
    route: &'static str,
    loss: &mut sc_netsim::failure::LossProcess,
) -> sc_netsim::sim::SimOutcome {
    let root = proc.open_span(obs, 0.0, vec![("route", sc_obs::FieldValue::from(route))]);
    let outcome = sim.run_traced(steps, loss, Some(root));
    obs.span_close(root, outcome.latency_ms);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> std::vec::IntoIter<String> {
        v.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn disabled_by_default() {
        let s = ObsSink::from_args("figxx", args(&[]), None);
        assert!(!s.enabled());
        assert!(!s.recorder().enabled());
        s.write(); // no-op, no panic
    }

    #[test]
    fn obs_out_flag_enables() {
        let s = ObsSink::from_args("figxx", args(&["--obs-out", "/tmp/t.json"]), None);
        assert!(s.enabled());
        assert!(s.recorder().enabled());
        let s2 = ObsSink::from_args("figxx", args(&["--obs-out=/tmp/t.json"]), None);
        assert!(s2.enabled());
    }

    #[test]
    fn sc_obs_env_selects_default_path() {
        let s = ObsSink::from_args("fig05", args(&[]), Some("1".into()));
        assert!(s.enabled());
        assert_eq!(
            s.out.as_deref(),
            Some(std::path::Path::new("results/fig05.telemetry.json"))
        );
        assert!(!ObsSink::from_args("fig05", args(&[]), Some("0".into())).enabled());
        assert!(!ObsSink::from_args("fig05", args(&[]), Some(String::new())).enabled());
    }

    #[test]
    fn local_replay_never_leaves_the_satellite() {
        let c2 = sc_fiveg::messages::Procedure::build(
            sc_fiveg::messages::ProcedureKind::SessionEstablishment,
        );
        let local = replay_steps_local(&c2);
        assert!(!local.is_empty());
        for s in &local {
            assert!(s.from <= 1 && s.to <= 1, "{s:?}");
            assert_ne!(s.from, s.to);
        }
        // Strictly fewer cross-node legs than the ground-routed replay:
        // the RAN↔core messages collapse onto the satellite node.
        assert!(local.len() < replay_steps(&c2).len());
    }

    #[test]
    fn replay_traced_roots_the_whole_exchange() -> Result<(), String> {
        let obs = Recorder::new();
        let c2 = sc_fiveg::messages::Procedure::build(
            sc_fiveg::messages::ProcedureKind::SessionEstablishment,
        );
        let steps = replay_steps_local(&c2);
        let mut g = sc_netsim::topo::Graph::new(2);
        g.add_bidirectional(0, 1, 2.0);
        let nf = sc_netsim::failure::NodeFailures::none();
        let sim =
            sc_netsim::sim::ProcedureSim::new(&g, &nf, sc_netsim::sim::SimConfig::default())
                .with_recorder(obs.clone());
        let mut loss = sc_netsim::failure::LossProcess::new(0.0, 1);
        let outcome = replay_traced(&obs, &sim, &c2, &steps, "local", &mut loss);
        assert!(outcome.completed);

        let snap = obs.snapshot();
        let root = snap
            .spans
            .iter()
            .find(|s| s.kind == "fiveg.proc.c2_session_establishment")
            .ok_or("missing fiveg root span")?;
        assert_eq!(root.parent, None);
        assert_eq!(root.end, Some(outcome.latency_ms));
        assert!(root
            .fields
            .iter()
            .any(|(k, v)| *k == "route" && *v == sc_obs::FieldValue::from("local")));
        let proc = snap
            .spans
            .iter()
            .find(|s| s.kind == "netsim.sim.procedure")
            .ok_or("missing netsim procedure span")?;
        assert_eq!(proc.parent, Some(root.id), "sim tree hangs off the 5G root");

        // Disabled recorder: same outcome, zero telemetry.
        let off = Recorder::disabled();
        let sim_off =
            sc_netsim::sim::ProcedureSim::new(&g, &nf, sc_netsim::sim::SimConfig::default());
        let mut loss2 = sc_netsim::failure::LossProcess::new(0.0, 1);
        let plain = replay_traced(&off, &sim_off, &c2, &steps, "local", &mut loss2);
        assert_eq!(plain.latency_ms, outcome.latency_ms);
        assert!(off.snapshot().is_empty());
        Ok(())
    }

    #[test]
    fn replay_steps_drop_core_internal_legs() {
        let c1 = sc_fiveg::messages::Procedure::build(
            sc_fiveg::messages::ProcedureKind::InitialRegistration,
        );
        let steps = replay_steps(&c1);
        assert!(!steps.is_empty());
        assert!(steps.len() < c1.message_count());
        for s in &steps {
            assert_ne!(s.from, s.to);
            assert!(s.from <= 2 && s.to <= 2);
        }
    }
}
