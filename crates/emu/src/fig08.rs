//! Figure 8 — signaling latency vs. load on satellite hardware.
//!
//! Two panels: (a) initial/mobility registrations, (b) session
//! establishments, each on the two hardware profiles, sweeping 10–500
//! events/s. The shape to reproduce: flat below the CPU knee, then
//! rapid (near-linear) growth to tens of seconds once the satellite
//! saturates — the queueing signature of Fig. 8.

use sc_fiveg::cpu::{HardwareProfile, NfCostTable};
use sc_fiveg::messages::{Procedure, ProcedureKind};
use sc_fiveg::nf::SplitOption;
use serde::Serialize;

/// The load sweep of Figure 8.
pub const RATES: [f64; 7] = [10.0, 50.0, 100.0, 200.0, 300.0, 400.0, 500.0];

#[derive(Debug, Clone, Serialize)]
pub struct Fig08 {
    pub registration: Vec<LatencySeries>,
    pub session: Vec<LatencySeries>,
}

#[derive(Debug, Clone, Serialize)]
pub struct LatencySeries {
    pub hardware: String,
    /// (rate/s, latency seconds).
    pub points: Vec<(f64, f64)>,
}

fn sweep(kind: ProcedureKind) -> Vec<LatencySeries> {
    let split = SplitOption::AllFunctions.split();
    let p = Procedure::build(kind);
    HardwareProfile::ALL
        .iter()
        .map(|hw| {
            let model = NfCostTable::new(*hw)
                .latency_model(&p, &split)
                .expect("all functions in space");
            LatencySeries {
                hardware: hw.name().to_string(),
                points: RATES.iter().map(|r| (*r, model.sojourn_s(*r))).collect(),
            }
        })
        .collect()
}

/// Run the experiment.
pub fn run() -> Fig08 {
    Fig08 {
        registration: sweep(ProcedureKind::InitialRegistration),
        session: sweep(ProcedureKind::SessionEstablishment),
    }
}

/// Text rendering.
pub fn render(r: &Fig08) -> String {
    let mut out = String::from("Fig. 8 — signaling latency vs. load on satellite hardware\n");
    for (title, series) in [
        ("(a) initial/mobility registration", &r.registration),
        ("(b) session establishment", &r.session),
    ] {
        out.push_str(&format!("\n{title}\n"));
        let mut header = vec!["rate/s".to_string()];
        header.extend(series.iter().map(|s| s.hardware.clone()));
        let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut t = crate::report::TextTable::new(&hdr);
        for (i, rate) in RATES.iter().enumerate() {
            let mut row = vec![crate::report::fmt_num(*rate)];
            for s in series {
                row.push(format!("{:.3} s", s.points[i].1));
            }
            t.row(row);
        }
        out.push_str(&t.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_orders_of_magnitude_on_pi() {
        let r = run();
        let pi = &r.registration[0];
        let low = pi.points.first().unwrap().1;
        let high = pi.points.last().unwrap().1;
        // Fig. 8a: from milliseconds to many seconds.
        assert!(low < 0.1, "{low}");
        assert!(high > 1.0, "{high}");
        assert!(high / low > 50.0);
    }

    #[test]
    fn xeon_outperforms_pi_at_every_load() {
        let r = run();
        for panel in [&r.registration, &r.session] {
            for (a, b) in panel[0].points.iter().zip(&panel[1].points) {
                assert!(b.1 <= a.1, "xeon {b:?} vs pi {a:?}");
            }
        }
    }

    #[test]
    fn registration_heavier_than_session() {
        // C1 touches more NFs than C2 → saturates earlier on the Pi.
        let r = run();
        let reg500 = r.registration[0].points.last().unwrap().1;
        let sess500 = r.session[0].points.last().unwrap().1;
        assert!(reg500 > sess500, "{reg500} vs {sess500}");
    }

    #[test]
    fn monotone_in_load() {
        for panel in [run().registration, run().session] {
            for s in panel {
                for w in s.points.windows(2) {
                    assert!(w[1].1 >= w[0].1 - 1e-12);
                }
            }
        }
    }
}
