//! Extension experiment (beyond the paper's figures): message-level
//! procedure resilience over the real constellation.
//!
//! §3.3 argues qualitatively that "all procedures in Figure 9 are prone
//! to these failures since any signaling loss/error can block the entire
//! procedure". This experiment quantifies it with the discrete-event
//! simulator: the legacy home-routed session establishment (13 messages
//! crossing the ISL fabric to a gateway) versus SpaceCore's 4-message
//! local establishment, swept across per-transmission loss rates and
//! satellite decay fractions, measuring completion probability and
//! latency.

use sc_netsim::failure::{LossProcess, NodeFailures};
use sc_netsim::isl::{IslConfig, IslNetwork};
use sc_netsim::sim::{ProcedureSim, SimConfig, SimStep};
use sc_orbit::{ConstellationConfig, GroundStationSet, IdealPropagator, SatId};
use serde::Serialize;

/// Loss rates swept.
pub const LOSS_RATES: [f64; 4] = [0.0, 0.02, 0.05, 0.10];
/// Satellite decay fractions swept.
pub const DECAY_FRACTIONS: [f64; 3] = [0.0, 0.025, 0.10];
/// Runs per configuration.
pub const RUNS: u64 = 60;

#[derive(Debug, Clone, Serialize)]
pub struct ExtResilience {
    pub points: Vec<ResiliencePoint>,
}

#[derive(Debug, Clone, Serialize)]
pub struct ResiliencePoint {
    pub procedure: String,
    pub loss_rate: f64,
    pub decay_fraction: f64,
    /// Fraction of runs that completed within the retry budget.
    pub completion_rate: f64,
    /// Mean latency over completed runs, ms; `None` (JSON `null`) when
    /// no run completed.
    pub mean_latency_ms: Option<f64>,
    /// Mean transmissions per run (retries included).
    pub mean_transmissions: f64,
}

/// Build the legacy C2 step list over the network: UE messages terminate
/// at the serving satellite; core messages cross to the nearest gateway.
fn legacy_steps(serving: usize, gateway: usize) -> Vec<SimStep> {
    let pairs: Vec<(&str, usize, usize)> = vec![
        ("rrc request", serving, serving),
        ("rrc setup", serving, serving),
        ("rrc complete", serving, serving),
        ("service request", serving, gateway),
        ("session context create", gateway, gateway),
        ("policy", gateway, gateway),
        ("policy response", gateway, gateway),
        ("forwarding rules", gateway, serving),
        ("forwarding ack", serving, gateway),
        ("session accept (amf)", gateway, gateway),
        ("session accept (ue)", gateway, serving),
        ("ctx update", gateway, gateway),
        ("ctx update ack", gateway, gateway),
    ];
    sc_netsim::sim::steps_from_pairs(&pairs)
}

/// SpaceCore's local establishment: everything on the serving satellite.
fn spacecore_steps(serving: usize) -> Vec<SimStep> {
    let pairs: Vec<(&str, usize, usize)> = vec![
        ("rrc request", serving, serving),
        ("rrc setup", serving, serving),
        ("rrc complete + replica", serving, serving),
        ("session accept", serving, serving),
    ];
    sc_netsim::sim::steps_from_pairs(&pairs)
}

/// Run the experiment.
pub fn run() -> ExtResilience {
    let cfg = ConstellationConfig::starlink();
    let prop = IdealPropagator::new(cfg.clone());
    let stations = GroundStationSet::starlink_like();
    let net = IslNetwork::build(&prop, &stations, 0.0, IslConfig::default());
    let serving = net.sat_node(SatId::new(10, 5));
    // Use gateway 0 (North America) as the home-facing gateway.
    let gateway = net.ground_node(0);

    let mut points = Vec::new();
    for (name, steps) in [
        ("legacy C2 via home", legacy_steps(serving, gateway)),
        ("SpaceCore local", spacecore_steps(serving)),
    ] {
        for loss_rate in LOSS_RATES {
            for decay in DECAY_FRACTIONS {
                let failures = if decay == 0.0 {
                    NodeFailures::none()
                } else {
                    // Never fail the serving satellite itself (the UE
                    // would simply camp elsewhere); fail the relay fabric.
                    let mut f = NodeFailures::random(net.num_sats(), decay, 0xFA11);
                    f.recover(serving);
                    f
                };
                let sim = ProcedureSim::new(net.graph(), &failures, SimConfig::default());
                let mut completed = 0u64;
                let mut lat_sum = 0.0;
                let mut tx_sum = 0u64;
                for run in 0..RUNS {
                    let mut loss = LossProcess::new(loss_rate, 0xC0DE + run);
                    let o = sim.run(&steps, &mut loss);
                    if o.completed {
                        completed += 1;
                        lat_sum += o.latency_ms;
                    }
                    tx_sum += o.transmissions as u64;
                }
                points.push(ResiliencePoint {
                    procedure: name.to_string(),
                    loss_rate,
                    decay_fraction: decay,
                    completion_rate: completed as f64 / RUNS as f64,
                    mean_latency_ms: if completed > 0 {
                        Some(lat_sum / completed as f64)
                    } else {
                        None
                    },
                    mean_transmissions: tx_sum as f64 / RUNS as f64,
                });
            }
        }
    }
    ExtResilience { points }
}

/// Text rendering.
pub fn render(r: &ExtResilience) -> String {
    let mut t = crate::report::TextTable::new(&[
        "procedure",
        "loss",
        "decay",
        "completion",
        "mean latency (ms)",
        "mean tx",
    ]);
    for p in &r.points {
        t.row(vec![
            p.procedure.clone(),
            format!("{:.0}%", p.loss_rate * 100.0),
            format!("{:.1}%", p.decay_fraction * 100.0),
            format!("{:.0}%", p.completion_rate * 100.0),
            match p.mean_latency_ms {
                Some(ms) => crate::report::fmt_num(ms),
                None => "-".into(),
            },
            crate::report::fmt_num(p.mean_transmissions),
        ]);
    }
    format!(
        "Extension — message-level procedure resilience (DES over Starlink)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The experiment is deterministic; run it once for all tests.
    fn cached() -> &'static ExtResilience {
        static CACHE: OnceLock<ExtResilience> = OnceLock::new();
        CACHE.get_or_init(run)
    }

    fn point<'a>(r: &'a ExtResilience, proc_: &str, loss: f64, decay: f64) -> &'a ResiliencePoint {
        r.points
            .iter()
            .find(|p| p.procedure.contains(proc_) && p.loss_rate == loss && p.decay_fraction == decay)
            .expect("point exists")
    }

    #[test]
    fn lossless_completes_always() {
        let r = cached();
        assert_eq!(point(r, "legacy", 0.0, 0.0).completion_rate, 1.0);
        assert_eq!(point(r, "SpaceCore", 0.0, 0.0).completion_rate, 1.0);
    }

    #[test]
    fn spacecore_faster_and_tougher() {
        let r = cached();
        for loss in LOSS_RATES {
            let sc = point(r, "SpaceCore", loss, 0.0);
            let legacy = point(r, "legacy", loss, 0.0);
            assert!(sc.completion_rate >= legacy.completion_rate, "loss {loss}");
            if let (Some(sc_ms), Some(legacy_ms)) = (sc.mean_latency_ms, legacy.mean_latency_ms) {
                assert!(sc_ms < legacy_ms, "loss {loss}");
            }
        }
    }

    #[test]
    fn loss_increases_retransmissions() {
        let r = cached();
        let clean = point(r, "legacy", 0.0, 0.0).mean_transmissions;
        let lossy = point(r, "legacy", 0.10, 0.0).mean_transmissions;
        assert!(lossy > clean, "{lossy} vs {clean}");
    }

    #[test]
    fn decay_does_not_break_local_path() {
        // SpaceCore's local establishment does not traverse the fabric:
        // relay decay cannot hurt it.
        let r = cached();
        for decay in DECAY_FRACTIONS {
            assert_eq!(point(r, "SpaceCore", 0.0, decay).completion_rate, 1.0);
        }
    }

    #[test]
    fn empty_mean_latency_serializes_as_null_never_nan() {
        // A fully-blocked cell must serialize `mean_latency_ms` as JSON
        // `null`, never the (invalid-JSON) bare `NaN` the old f64::NAN
        // sentinel produced.
        let r = ExtResilience {
            points: vec![ResiliencePoint {
                procedure: "blocked".into(),
                loss_rate: 1.0,
                decay_fraction: 0.0,
                completion_rate: 0.0,
                mean_latency_ms: None,
                mean_transmissions: 4.0,
            }],
        };
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"mean_latency_ms\":null"), "{json}");
        assert!(!json.contains("NaN"), "{json}");
        // And the real run never emits NaN either.
        let json = serde_json::to_string(cached()).unwrap();
        assert!(!json.contains("NaN"), "real results must be valid JSON");
        // Rendering shows a dash for the empty cell.
        assert!(render(&r).contains('-'));
    }

    #[test]
    fn deterministic() {
        // `run()` is seeded throughout; spot-check one fresh re-run
        // against the cached result.
        let fresh = run();
        assert_eq!(
            serde_json::to_string(&fresh).unwrap(),
            serde_json::to_string(cached()).unwrap()
        );
    }
}
