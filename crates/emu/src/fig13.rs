//! Figure 13 — intermittent failures in mobile satellites.
//!
//! * **(a)** satellite failures: monthly decay additions and the
//!   cumulative count, shaped like the Celestrak Starlink series the
//!   paper plots (≈1 in 40 satellites failed overall).
//! * **(b)** radio link failures: a frame-error-rate time series from
//!   the Gilbert–Elliott process calibrated to the Tiantong capture —
//!   long quiet stretches punctuated by bursts reaching tens of percent.

use sc_netsim::failure::{GilbertElliott, Xorshift64};
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct Fig13 {
    pub decay: Vec<DecayPoint>,
    pub frame_errors: Vec<FerPoint>,
}

/// One month of satellite decay.
#[derive(Debug, Clone, Serialize)]
pub struct DecayPoint {
    pub month: u32,
    pub additions: u32,
    pub cumulative: u32,
}

/// One window of the frame-error series.
#[derive(Debug, Clone, Serialize)]
pub struct FerPoint {
    pub t_s: f64,
    /// Frame error rate (%) over the window.
    pub fer_percent: f64,
}

/// Fleet size for the decay model (Starlink shell 1).
pub const FLEET: u32 = 1584;
/// Months simulated.
pub const MONTHS: u32 = 24;

/// Run the experiment.
pub fn run() -> Fig13 {
    // (a) Decay: per-satellite monthly hazard calibrated so the
    // cumulative failures approach 1/40 of the fleet over the window.
    let target_fraction = 1.0 / 40.0;
    let hazard = target_fraction / MONTHS as f64;
    let mut rng = Xorshift64::new(0xDECA7);
    let mut alive = FLEET;
    let mut cumulative = 0u32;
    let mut decay = Vec::new();
    for month in 1..=MONTHS {
        let mut additions = 0;
        for _ in 0..alive {
            if rng.chance(hazard) {
                additions += 1;
            }
        }
        alive -= additions;
        cumulative += additions;
        decay.push(DecayPoint {
            month,
            additions,
            cumulative,
        });
    }

    // (b) Frame errors: 1200 s of 100-frame windows.
    let mut ge = GilbertElliott::tiantong_profile(0xF3A);
    let mut frame_errors = Vec::new();
    let frames_per_window = 100;
    for w in 0..120 {
        let errs = (0..frames_per_window).filter(|_| ge.lost()).count();
        frame_errors.push(FerPoint {
            t_s: w as f64 * 10.0,
            fer_percent: errs as f64 / frames_per_window as f64 * 100.0,
        });
    }
    Fig13 {
        decay,
        frame_errors,
    }
}

/// Text rendering.
pub fn render(r: &Fig13) -> String {
    let mut out = String::from("Fig. 13a — satellite decay (synthetic Celestrak-like series)\n");
    let mut t = crate::report::TextTable::new(&["month", "additions", "cumulative"]);
    for p in r.decay.iter().step_by(3) {
        t.row(vec![
            p.month.to_string(),
            p.additions.to_string(),
            p.cumulative.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\nFig. 13b — radio frame error bursts (Tiantong-calibrated)\n");
    let mut t2 = crate::report::TextTable::new(&["t (s)", "FER (%)"]);
    for p in r.frame_errors.iter().step_by(10) {
        t2.row(vec![
            crate::report::fmt_num(p.t_s),
            crate::report::fmt_num(p.fer_percent),
        ]);
    }
    out.push_str(&t2.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cumulative_decay_near_one_in_forty() {
        let r = run();
        let last = r.decay.last().unwrap();
        let frac = last.cumulative as f64 / FLEET as f64;
        assert!((frac - 1.0 / 40.0).abs() < 0.015, "{frac}");
    }

    #[test]
    fn cumulative_is_monotone_sum_of_additions() {
        let r = run();
        let mut sum = 0;
        for p in &r.decay {
            sum += p.additions;
            assert_eq!(p.cumulative, sum);
        }
    }

    #[test]
    fn frame_errors_are_bursty() {
        let r = run();
        let quiet = r
            .frame_errors
            .iter()
            .filter(|p| p.fer_percent <= 2.0)
            .count();
        let bursty = r
            .frame_errors
            .iter()
            .filter(|p| p.fer_percent >= 10.0)
            .count();
        // Mostly quiet…
        assert!(quiet > r.frame_errors.len() / 2, "{quiet}");
        // …with real bursts (Fig. 13b peaks at 3-5%+ per window; our
        // bad-state loss is 35% so windows inside bursts go high).
        assert!(bursty >= 1, "no bursts in {} windows", r.frame_errors.len());
    }

    #[test]
    fn deterministic() {
        let a = run();
        let b = run();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }
}
