//! Figure 10 — signaling migration overhead of satellites and ground
//! stations, four stateful options × four constellations × capacities.
//!
//! Rows reproduced: per-satellite session-establishment signaling,
//! per-satellite mobility signaling, and per-ground-station load, for
//! satellite capacities {2K, 10K, 20K, 30K} — with the paper's
//! qualitative facts: 10³–10⁵ msg/s per satellite, about an order of
//! magnitude more per ground station, and "None" GS mobility load for
//! options 3-4 (mobility handled in space).

use sc_dataset::workload::{RateModel, WorkloadParams};
use sc_fiveg::messages::{Procedure, ProcedureKind};
use sc_fiveg::nf::SplitOption;
use sc_orbit::ConstellationConfig;
use serde::Serialize;

/// Satellite capacities swept by the paper.
pub const CAPACITIES: [u32; 4] = [2_000, 10_000, 20_000, 30_000];

/// Number of gateways serving each constellation.
pub const GROUND_STATIONS: usize = 30;

#[derive(Debug, Clone, Serialize)]
pub struct Fig10 {
    pub cells: Vec<Cell>,
}

/// One (constellation, option, capacity) cell of the figure.
#[derive(Debug, Clone, Serialize)]
pub struct Cell {
    pub constellation: String,
    pub option: String,
    pub capacity: u32,
    /// Session-establishment signaling at the satellite, msg/s.
    pub sat_session_msgs: f64,
    /// Mobility signaling at the satellite, msg/s.
    pub sat_mobility_msgs: f64,
    /// Total ground-station load, msg/s (0 = the paper's "None").
    pub gs_msgs: f64,
}

/// Run the experiment.
pub fn run() -> Fig10 {
    run_with(crate::engine::thread_count())
}

/// Run with an explicit worker count. Output is identical for every
/// `threads` value; tests diff the JSON against `threads = 1`.
pub fn run_with(threads: usize) -> Fig10 {
    run_obs_with(threads, &sc_obs::Recorder::disabled())
}

/// [`run`] with telemetry (engine worker count).
pub fn run_obs(obs: &sc_obs::Recorder) -> Fig10 {
    run_obs_with(crate::engine::thread_count(), obs)
}

/// [`run_with`] with telemetry. Cells fan out over per-unit child
/// recorders merged in input order
/// ([`crate::engine::parallel_map_obs_with`]), so the merged snapshot is
/// byte-identical for every `threads` value. When the recorder is
/// enabled, a signaling-storm miniature additionally exercises the
/// stateful AMF/SMF paths, the SUCI concealments, the stateless
/// satellite-local contrast, and one message-level C2 replay.
pub fn run_obs_with(threads: usize, obs: &sc_obs::Recorder) -> Fig10 {
    if obs.enabled() {
        storm_miniature(obs);
    }
    let units: Vec<(ConstellationConfig, SplitOption)> = ConstellationConfig::all_presets()
        .iter()
        .flat_map(|cfg| SplitOption::STATEFUL.iter().map(|&o| (cfg.clone(), o)))
        .collect();
    let groups = crate::engine::parallel_map_obs_with(threads, obs, units, |(cfg, option), rec| {
        rec.inc("emu.fig10.units", 1);
        let params = WorkloadParams::for_constellation(&cfg);
        let model = RateModel::new(params);
        let mut cells = Vec::new();
        for capacity in CAPACITIES {
            let split = option.split();
            let sessions = model.session_rate(capacity);
            let handovers = model.handover_rate(capacity);
            let mob_regs = if matches!(
                option,
                SplitOption::SessionMobility | SplitOption::AllFunctions
            ) {
                model.mobility_reg_rate(capacity)
            } else {
                0.0
            };

            let c2 = Procedure::build_obs(ProcedureKind::SessionEstablishment, rec);
            let paging = Procedure::build_obs(ProcedureKind::Paging, rec);
            let c3 = Procedure::build_obs(ProcedureKind::Handover, rec);
            let c4 = Procedure::build_obs(ProcedureKind::MobilityRegistration, rec);

            let sat_session = sessions
                * (c2.satellite_messages(&split) as f64 * model.radio_overhead
                    + params.downlink_fraction * paging.satellite_messages(&split) as f64);
            let sat_mobility = handovers * c3.satellite_messages(&split) as f64
                + mob_regs * c4.satellite_messages(&split) as f64;

            let per_sat_gs = sessions * c2.ground_messages(&split) as f64
                + handovers * c3.ground_messages(&split) as f64
                + mob_regs * c4.ground_messages(&split) as f64;
            let gs = per_sat_gs * cfg.total_sats() as f64 / GROUND_STATIONS as f64;

            rec.inc("emu.fig10.cells", 1);
            rec.observe("emu.fig10.sat_session_msgs", sat_session);
            rec.observe("emu.fig10.sat_mobility_msgs", sat_mobility);
            rec.observe("emu.fig10.gs_msgs", gs);

            cells.push(Cell {
                constellation: cfg.name.to_string(),
                option: option.name().to_string(),
                capacity,
                sat_session_msgs: sat_session,
                sat_mobility_msgs: sat_mobility,
                gs_msgs: gs,
            });
        }
        cells
    });
    Fig10 {
        cells: groups.into_iter().flatten().collect(),
    }
}

/// The Fig. 10 storm in miniature: a handful of UEs run the stateful
/// satellite-sweep cycle (SUCI-concealed registration at one AMF, PDU
/// session at the SMF, context transfer to the next AMF) that the
/// figure's rates aggregate; one UE takes the stateless satellite-local
/// path (Algorithm 2) for contrast; and one C2 is replayed
/// message-by-message over both a ground-routed UE—satellite—ground
/// topology and a satellite-local UE—satellite one, each traced under a
/// route-tagged `fiveg.proc.*` root span (the `sctrace critical-path`
/// contrast in docs/TELEMETRY.md).
fn storm_miniature(obs: &sc_obs::Recorder) {
    use sc_fiveg::amf::Amf;
    use sc_fiveg::ids::{PlmnId, SessionId};
    use sc_fiveg::smf::Smf;
    use sc_fiveg::state::SessionState;

    let plmn = PlmnId::new(460, 1);
    let mut old_amf = Amf::new(1, plmn);
    let mut new_amf = Amf::new(2, plmn);
    old_amf.attach_recorder(obs.clone());
    new_amf.attach_recorder(obs.clone());
    let mut smf = Smf::new(vec![100], 0xFD00_0000_0000_0001);
    smf.attach_recorder(obs.clone());
    let suci_home = sc_crypto::suci::SuciHomeKey::generate(0x0A10);

    for i in 0..8u64 {
        let s = SessionState::sample(i);
        // One UE cycle per 1.0 ms series window: registration (C1) and
        // session (C2) open the window, the satellite sweep's handover
        // (C3) and AMF relocation (C4) land inside it — so the merged
        // sidecar carries all four `fiveg.msgs_per_window.*` series
        // with a real time axis.
        let t = i as f64;
        Procedure::build_obs_at(ProcedureKind::InitialRegistration, obs, t);
        Procedure::build_obs_at(ProcedureKind::SessionEstablishment, obs, t);
        Procedure::build_obs_at(ProcedureKind::Handover, obs, t + 0.25);
        Procedure::build_obs_at(ProcedureKind::MobilityRegistration, obs, t + 0.5);
        let _ = sc_crypto::suci::conceal_obs(
            obs,
            suci_home.public,
            suci_home.params,
            0x4600_0100_0000 + i,
            500 + i,
        );
        old_amf.register(&s, 0);
        let _ = smf.establish(s.id.supi, SessionId(1), 0);
        if let Ok(ctx) = old_amf.transfer_out(s.id.supi) {
            new_amf.transfer_in(ctx, 1);
        }
    }

    // Stateless contrast: Algorithm 2's satellite-local establishment
    // (feeds `spacecore.satellite.*` and `crypto.statecrypt.*`/ABE).
    let home = spacecore::home::HomeNetwork::new(spacecore::home::HomeConfig::default());
    let mut sat = spacecore::satellite::SpaceCoreSatellite::provision(
        &home,
        sc_orbit::SatId::new(0, 0),
    );
    sat.attach_recorder(obs.clone());
    let mut ue = home.register_ue(1, &sc_geo::sphere::GeoPoint::from_degrees(39.9, 116.4));
    sat.establish_session(&home, &mut ue, 1.0);

    // One C2 at message level over each architecture, traced under a
    // `fiveg.proc.c2_session_establishment` root span tagged with its
    // route — the pair `sctrace critical-path` contrasts. Ground-routed:
    // UE(0) — satellite(1) — ground(2), with the 30 ms feeder link
    // dominating every core-bound leg.
    let mut g = sc_netsim::topo::Graph::new(3);
    g.add_bidirectional(0, 1, 2.0);
    g.add_bidirectional(1, 2, 30.0);
    let nf = sc_netsim::failure::NodeFailures::none();
    let sim = sc_netsim::sim::ProcedureSim::new(&g, &nf, sc_netsim::sim::SimConfig::default())
        .with_recorder(obs.clone());
    let c2 = Procedure::build_obs_at(ProcedureKind::SessionEstablishment, obs, 0.0);
    let steps = crate::obs::replay_steps(&c2);
    crate::obs::replay_traced(
        obs,
        &sim,
        &c2,
        &steps,
        "ground",
        &mut sc_netsim::failure::LossProcess::new(0.0, 1),
    );

    // Satellite-local contrast: the same C2 with the core on the
    // serving satellite — UE(0) — satellite(1), radio leg only. Its
    // critical path is all 2 ms UE↔satellite hops.
    let mut g_local = sc_netsim::topo::Graph::new(2);
    g_local.add_bidirectional(0, 1, 2.0);
    let sim_local =
        sc_netsim::sim::ProcedureSim::new(&g_local, &nf, sc_netsim::sim::SimConfig::default())
            .with_recorder(obs.clone());
    let local_steps = crate::obs::replay_steps_local(&c2);
    crate::obs::replay_traced(
        obs,
        &sim_local,
        &c2,
        &local_steps,
        "local",
        &mut sc_netsim::failure::LossProcess::new(0.0, 1),
    );
}

/// Text rendering.
pub fn render(r: &Fig10) -> String {
    let mut t = crate::report::TextTable::new(&[
        "constellation",
        "option",
        "capacity",
        "sat session msg/s",
        "sat mobility msg/s",
        "ground station msg/s",
    ]);
    for c in &r.cells {
        t.row(vec![
            c.constellation.clone(),
            c.option.clone(),
            c.capacity.to_string(),
            crate::report::fmt_num(c.sat_session_msgs),
            crate::report::fmt_num(c.sat_mobility_msgs),
            if c.gs_msgs == 0.0 {
                "None".into()
            } else {
                crate::report::fmt_num(c.gs_msgs)
            },
        ]);
    }
    format!(
        "Fig. 10 — signaling overhead: 4 options × 4 constellations\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell<'a>(r: &'a Fig10, cons: &str, opt: &str, cap: u32) -> &'a Cell {
        r.cells
            .iter()
            .find(|c| c.constellation == cons && c.option == opt && c.capacity == cap)
            .expect("cell exists")
    }

    #[test]
    fn has_all_cells() {
        let r = run();
        assert_eq!(r.cells.len(), 4 * 4 * 4);
    }

    #[test]
    fn parallel_json_bit_identical_to_serial() {
        let serial = serde_json::to_string_pretty(&run_with(1)).unwrap();
        for threads in [2, 8] {
            let parallel = serde_json::to_string_pretty(&run_with(threads)).unwrap();
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn run_obs_telemetry_thread_invariant_and_output_unchanged(
    ) -> Result<(), serde_json::Error> {
        let plain = serde_json::to_string(&run_with(1))?;
        let rec1 = sc_obs::Recorder::new();
        let r1 = run_obs_with(1, &rec1);
        assert_eq!(serde_json::to_string(&r1)?, plain, "telemetry must not perturb results");
        let rec4 = sc_obs::Recorder::new();
        run_obs_with(4, &rec4);
        assert_eq!(
            rec1.snapshot().to_json("fig10"),
            rec4.snapshot().to_json("fig10"),
            "telemetry must be byte-identical across thread counts"
        );
        let snap = rec1.snapshot();
        assert_eq!(snap.counter("emu.fig10.units"), 16);
        assert_eq!(snap.counter("emu.fig10.cells"), 64);
        assert_eq!(snap.counter("spacecore.satellite.local_establishments"), 1);
        assert_eq!(snap.counter("fiveg.amf.registrations"), 8);
        assert_eq!(snap.counter("fiveg.smf.establishments"), 8);
        assert_eq!(snap.counter("crypto.suci.concealments"), 8);
        assert_eq!(snap.counter("netsim.sim.procedures"), 2);
        assert!(snap.metric_names().len() >= 10, "{:?}", snap.metric_names());

        // The storm's traced C2 replays: one ground-routed root, one
        // satellite-local, and the ground route's longest hop chain runs
        // through the 30 ms satellite↔ground feeder legs while the local
        // one never exceeds the 2 ms radio leg.
        let routes: Vec<&str> = snap
            .spans
            .iter()
            .filter(|s| s.kind == "fiveg.proc.c2_session_establishment")
            .filter_map(|s| {
                s.fields.iter().find_map(|(k, v)| match (k, v) {
                    (&"route", sc_obs::FieldValue::Str(r)) => Some(r.as_str()),
                    _ => None,
                })
            })
            .collect();
        assert_eq!(routes, vec!["ground", "local"]);
        Ok(())
    }

    #[test]
    fn session_storm_magnitudes_starlink() {
        // Paper: "each satellite suffers from 1,035-41,559 signalings/s
        // from session establishments, depending on … capacity".
        let r = run();
        let low = cell(&r, "Starlink", "Radio only", 2_000).sat_session_msgs;
        let high = cell(&r, "Starlink", "Data session", 30_000).sat_session_msgs;
        assert!(low > 200.0 && low < 5_000.0, "{low}");
        assert!(high > 4_000.0 && high < 60_000.0, "{high}");
    }

    #[test]
    fn ground_station_order_of_magnitude_worse() {
        // §3: "This cost is worsened at the ground stations by one order
        // of magnitude due to space-terrestrial asymmetry (except for
        // Option 4)."
        let r = run();
        for cons in ["Starlink", "Kuiper"] {
            let c = cell(&r, cons, "Radio only", 20_000);
            assert!(
                c.gs_msgs > 5.0 * (c.sat_session_msgs + c.sat_mobility_msgs) / 10.0,
                "{cons}: gs {} sat {}",
                c.gs_msgs,
                c.sat_session_msgs
            );
            assert!(c.gs_msgs > c.sat_session_msgs, "{cons}");
        }
    }

    #[test]
    fn option4_has_no_ground_load() {
        let r = run();
        for cons in ["Starlink", "OneWeb", "Kuiper", "Iridium"] {
            for cap in CAPACITIES {
                assert_eq!(cell(&r, cons, "All functions", cap).gs_msgs, 0.0, "{cons}");
            }
        }
    }

    #[test]
    fn mobility_registrations_only_for_options_3_4() {
        let r = run();
        // Options 1-2: mobility = handovers only; options 3-4 add C4
        // storms on top.
        let ho_only = cell(&r, "Starlink", "Radio only", 30_000).sat_mobility_msgs;
        let with_regs = cell(&r, "Starlink", "Session & mobility", 30_000).sat_mobility_msgs;
        assert!(with_regs > ho_only, "{with_regs} vs {ho_only}");
    }

    #[test]
    fn load_scales_with_capacity() {
        let r = run();
        let a = cell(&r, "Kuiper", "Data session", 2_000).sat_session_msgs;
        let b = cell(&r, "Kuiper", "Data session", 20_000).sat_session_msgs;
        assert!((b / a - 10.0).abs() < 1e-6);
    }

    #[test]
    fn render_marks_none() {
        let txt = render(&run());
        assert!(txt.contains("None"));
    }
}
