//! Figure 17 — prototype results: signaling delay and satellite CPU for
//! the five solutions across the three procedures, on hardware 1.
//!
//! Panels: (a) initial registration, (b) session establishment,
//! (c) mobility registration by LEO mobility — each sweeping 100–500
//! events/s. Headline shapes: SkyCore wins initial registration,
//! SpaceCore wins session establishment (≈7.3× vs 5G NTN, ≈11.1× vs
//! Baoyun), and SpaceCore's mobility-registration line is identically
//! zero (the procedure does not occur).

use sc_fiveg::cpu::HardwareProfile;
use sc_fiveg::messages::ProcedureKind;
use sc_orbit::ConstellationConfig;
use serde::Serialize;
use spacecore::solutions::{Solution, SolutionKind};

/// The event-rate sweep of Figure 17.
pub const RATES: [f64; 5] = [100.0, 200.0, 300.0, 400.0, 500.0];

/// The three paneled procedures.
pub const PROCEDURES: [ProcedureKind; 3] = [
    ProcedureKind::InitialRegistration,
    ProcedureKind::SessionEstablishment,
    ProcedureKind::MobilityRegistration,
];

#[derive(Debug, Clone, Serialize)]
pub struct Fig17 {
    pub panels: Vec<Panel>,
}

#[derive(Debug, Clone, Serialize)]
pub struct Panel {
    pub procedure: String,
    pub series: Vec<SolutionSeries>,
}

#[derive(Debug, Clone, Serialize)]
pub struct SolutionSeries {
    pub solution: String,
    /// (rate/s, delay seconds, satellite CPU %).
    pub points: Vec<(f64, f64, f64)>,
}

/// Run the experiment on hardware 1 (Raspberry Pi 4), as in the figure.
pub fn run() -> Fig17 {
    run_on(HardwareProfile::RaspberryPi4)
}

/// Run on a chosen hardware profile.
pub fn run_on(hw: HardwareProfile) -> Fig17 {
    let cfg = ConstellationConfig::starlink();
    let panels = PROCEDURES
        .iter()
        .map(|kind| Panel {
            procedure: kind.name().to_string(),
            series: SolutionKind::ALL
                .iter()
                .map(|k| {
                    let s = Solution::new(*k, cfg.clone());
                    SolutionSeries {
                        solution: k.name().to_string(),
                        points: RATES
                            .iter()
                            .map(|r| {
                                (
                                    *r,
                                    s.signaling_delay_s(*kind, *r, hw),
                                    s.satellite_cpu_percent(*kind, *r, hw),
                                )
                            })
                            .collect(),
                    }
                })
                .collect(),
        })
        .collect();
    Fig17 { panels }
}

/// Text rendering.
pub fn render(r: &Fig17) -> String {
    let mut out = String::from("Fig. 17 — prototype: delay & satellite CPU, hardware 1\n");
    for p in &r.panels {
        out.push_str(&format!("\n{}\n", p.procedure));
        let mut header = vec!["rate/s".to_string()];
        for s in &p.series {
            header.push(format!("{} delay(s)", s.solution));
            header.push(format!("{} cpu%", s.solution));
        }
        let hdr: Vec<&str> = header.iter().map(|x| x.as_str()).collect();
        let mut t = crate::report::TextTable::new(&hdr);
        for (i, rate) in RATES.iter().enumerate() {
            let mut row = vec![crate::report::fmt_num(*rate)];
            for s in &p.series {
                row.push(format!("{:.3}", s.points[i].1));
                row.push(crate::report::fmt_num(s.points[i].2));
            }
            t.row(row);
        }
        out.push_str(&t.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series<'a>(r: &'a Fig17, proc_: &str, sol: &str) -> &'a SolutionSeries {
        r.panels
            .iter()
            .find(|p| p.procedure.contains(proc_))
            .unwrap()
            .series
            .iter()
            .find(|s| s.solution == sol)
            .unwrap()
    }

    #[test]
    fn spacecore_wins_session_establishment() {
        let r = run();
        let sc = series(&r, "session", "SpaceCore").points[0].1;
        for other in ["5G NTN", "SkyCore", "DPCM", "Baoyun"] {
            let o = series(&r, "session", other).points[0].1;
            assert!(sc < o, "SpaceCore {sc} vs {other} {o}");
        }
        // Headline factors at low rate: ≳3× vs 5G NTN, ≳5× vs Baoyun.
        let ntn = series(&r, "session", "5G NTN").points[0].1;
        let baoyun = series(&r, "session", "Baoyun").points[0].1;
        assert!(ntn / sc > 3.0);
        assert!(baoyun / sc > 5.0);
    }

    #[test]
    fn skycore_wins_initial_registration() {
        let r = run();
        let sky = series(&r, "initial", "SkyCore").points[0].1;
        for other in ["SpaceCore", "5G NTN", "DPCM", "Baoyun"] {
            let o = series(&r, "initial", other).points[0].1;
            assert!(sky < o, "SkyCore {sky} vs {other} {o}");
        }
    }

    #[test]
    fn spacecore_mobility_registration_is_zero() {
        let r = run();
        let sc = series(&r, "mobility", "SpaceCore");
        for (_, d, cpu) in &sc.points {
            assert_eq!(*d, 0.0);
            assert_eq!(*cpu, 0.0);
        }
        // Baselines pay and their delay grows with rate.
        for other in ["5G NTN", "SkyCore", "DPCM", "Baoyun"] {
            let s = series(&r, "mobility", other);
            assert!(s.points[0].1 > 0.1, "{other}");
            assert!(s.points.last().unwrap().1 >= s.points[0].1, "{other}");
        }
    }

    #[test]
    fn baoyun_cpu_high_spacecore_cpu_low() {
        let r = run();
        let sc_cpu = series(&r, "session", "SpaceCore").points.last().unwrap().2;
        let baoyun_cpu = series(&r, "session", "Baoyun").points.last().unwrap().2;
        let sky_cpu = series(&r, "initial", "SkyCore").points.last().unwrap().2;
        assert!(baoyun_cpu > sc_cpu, "baoyun {baoyun_cpu} sc {sc_cpu}");
        assert!(sky_cpu > 50.0, "{sky_cpu}");
    }

    #[test]
    fn delays_monotone_in_rate() {
        for p in run().panels {
            for s in p.series {
                for w in s.points.windows(2) {
                    assert!(w[1].1 >= w[0].1 - 1e-9, "{}", s.solution);
                }
            }
        }
    }

    #[test]
    fn xeon_strictly_faster() {
        let pi = run_on(HardwareProfile::RaspberryPi4);
        let xeon = run_on(HardwareProfile::XeonWorkstation);
        // At the highest rate, each solution's session delay on Xeon ≤ Pi.
        for (p, x) in pi.panels.iter().zip(&xeon.panels) {
            for (sp, sx) in p.series.iter().zip(&x.series) {
                assert!(
                    sx.points.last().unwrap().1 <= sp.points.last().unwrap().1 + 1e-9,
                    "{}",
                    sp.solution
                );
            }
        }
    }
}
