//! Figure 19 — leaked sensitive states in satellite attacks
//! (Starlink, 30K capacity).
//!
//! * **(a)** satellite hijacking: cumulative leaked states over 100
//!   minutes. SpaceCore stays flat at the currently-active set; SkyCore
//!   leaks its entire pre-stored subscriber base; the stateful serving
//!   cores accumulate contexts as users transit.
//! * **(b)** man-in-the-middle passive listening on ISLs with no IPsec:
//!   states/s readable in flight. SpaceCore's migrations are local and
//!   ABE-protected → zero.

use sc_orbit::ConstellationConfig;
use serde::Serialize;
use spacecore::solutions::{Solution, SolutionKind};

/// The paper's Fig. 19 configuration.
pub const CAPACITY: u32 = 30_000;
/// Operator subscriber base pre-stored by SkyCore.
pub const SUBSCRIBERS: u64 = 10_000_000;

#[derive(Debug, Clone, Serialize)]
pub struct Fig19 {
    pub hijack: Vec<HijackSeries>,
    pub mitm: Vec<MitmBar>,
}

#[derive(Debug, Clone, Serialize)]
pub struct HijackSeries {
    pub solution: String,
    /// (minute, cumulative leaked states).
    pub points: Vec<(f64, f64)>,
}

#[derive(Debug, Clone, Serialize)]
pub struct MitmBar {
    pub solution: String,
    pub leaked_per_s: f64,
}

/// Run the experiment.
pub fn run() -> Fig19 {
    let cfg = ConstellationConfig::starlink();
    let minutes: Vec<f64> = (0..=100).step_by(5).map(|m| m as f64).collect();
    let hijack = SolutionKind::ALL
        .iter()
        .map(|k| {
            let s = Solution::new(*k, cfg.clone());
            HijackSeries {
                solution: k.name().to_string(),
                points: minutes
                    .iter()
                    .map(|m| (*m, s.hijack_leakage(*m, CAPACITY, SUBSCRIBERS)))
                    .collect(),
            }
        })
        .collect();
    let mitm = SolutionKind::ALL
        .iter()
        .map(|k| {
            let s = Solution::new(*k, cfg.clone());
            MitmBar {
                solution: k.name().to_string(),
                leaked_per_s: s.mitm_leakage_per_s(CAPACITY),
            }
        })
        .collect();
    Fig19 { hijack, mitm }
}

/// Text rendering.
pub fn render(r: &Fig19) -> String {
    let mut out = String::from("Fig. 19a — cumulative leaked states under satellite hijack\n");
    let mut header = vec!["minute".to_string()];
    header.extend(r.hijack.iter().map(|s| s.solution.clone()));
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = crate::report::TextTable::new(&hdr);
    for i in (0..r.hijack[0].points.len()).step_by(4) {
        let mut row = vec![crate::report::fmt_num(r.hijack[0].points[i].0)];
        for s in &r.hijack {
            row.push(crate::report::fmt_num(s.points[i].1));
        }
        t.row(row);
    }
    out.push_str(&t.render());
    out.push_str("\nFig. 19b — man-in-the-middle leakage (no IPsec)\n");
    let mut t2 = crate::report::TextTable::new(&["solution", "states leaked /s"]);
    for b in &r.mitm {
        t2.row(vec![b.solution.clone(), crate::report::fmt_num(b.leaked_per_s)]);
    }
    out.push_str(&t2.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hijack_at(r: &Fig19, sol: &str, minute: f64) -> f64 {
        r.hijack
            .iter()
            .find(|s| s.solution == sol)
            .unwrap()
            .points
            .iter()
            .find(|(m, _)| *m == minute)
            .unwrap()
            .1
    }

    #[test]
    fn spacecore_flat_and_bounded() {
        let r = run();
        let at0 = hijack_at(&r, "SpaceCore", 0.0);
        let at100 = hijack_at(&r, "SpaceCore", 100.0);
        assert_eq!(at0, at100, "stateless: leakage must not grow");
        assert!(at100 < CAPACITY as f64, "bounded by the active set");
    }

    #[test]
    fn skycore_leaks_whole_base_immediately() {
        let r = run();
        assert!(hijack_at(&r, "SkyCore", 0.0) >= SUBSCRIBERS as f64);
    }

    #[test]
    fn stateful_cores_accumulate() {
        let r = run();
        for sol in ["Baoyun", "DPCM", "5G NTN"] {
            let early = hijack_at(&r, sol, 5.0);
            let late = hijack_at(&r, sol, 100.0);
            assert!(late > 5.0 * early, "{sol}: {early} -> {late}");
        }
    }

    #[test]
    fn spacecore_always_least_leaky() {
        let r = run();
        for m in [5.0, 50.0, 100.0] {
            let sc = hijack_at(&r, "SpaceCore", m);
            for sol in ["SkyCore", "Baoyun", "DPCM", "5G NTN"] {
                assert!(hijack_at(&r, sol, m) > sc, "{sol} at {m}");
            }
        }
    }

    #[test]
    fn mitm_zero_only_for_spacecore() {
        let r = run();
        for b in &r.mitm {
            if b.solution == "SpaceCore" {
                assert_eq!(b.leaked_per_s, 0.0);
            } else {
                assert!(b.leaked_per_s > 0.0, "{}", b.solution);
            }
        }
    }

    #[test]
    fn render_mentions_all_solutions() {
        let txt = render(&run());
        for s in ["SpaceCore", "5G NTN", "SkyCore", "DPCM", "Baoyun"] {
            assert!(txt.contains(s), "{s}");
        }
    }
}
