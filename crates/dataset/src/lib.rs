//! Workload substrate: signaling datasets and global UE distribution.
//!
//! The paper drives its emulation with (a) over-the-air signaling traces
//! from operational satellite terminals and terrestrial 5G (Table 2),
//! (b) the World Bank's global mobile-subscription distribution, and
//! (c) measured behavioural constants (sessions every 106.9 s, RRC
//! release after 10–15 s, 165.8 s satellite transit). We cannot ship the
//! proprietary traces, so this crate reproduces them synthetically
//! (DESIGN.md §3 substitution table):
//!
//! * [`table2`] — the Table 2 dataset descriptors (exact published
//!   per-protocol message counts) and a generator that emits synthetic
//!   traces with the same mix,
//! * [`population`] — a coarse global population-density model (mixture
//!   of regional hotspots) with deterministic UE placement sampling and
//!   the region classification used by Figure 12,
//! * [`workload`] — event-rate models: per-UE session arrivals,
//!   satellite-transit-driven handover/mobility-registration rates, and
//!   the per-satellite aggregate rates behind Figures 10/12/20,
//! * [`traffic`] — device-class profiles (consumer broadband,
//!   massive IoT, …) that scale those workload parameters into the
//!   mixed-population bills of the `ext_iot` extension,
//! * [`trace`] — Trace 1-style timestamped session event logs,
//!   regenerated synthetically for any latency profile so examples can
//!   show *what a session looks like*, not just its aggregate cost.
//!
//! Everything is seeded and deterministic: [`population::PopulationModel::sample_ues`]
//! is the placement source for Figure 12's per-region breakdown and for
//! the million-UE sustained-load engine (`sc_emu::ext_mload`), which
//! shards its UEs by the geospatial cell each sampled point falls in.

pub mod population;
pub mod table2;
pub mod trace;
pub mod traffic;
pub mod workload;

pub use population::{PopulationModel, Region};
pub use table2::{DatasetSource, ProtocolLayer, Table2};
pub use traffic::{TrafficClass, TrafficMix};
pub use trace::{geo_pipe_session, spacecore_session, SessionTrace, TraceEvent};
pub use workload::{RateModel, WorkloadParams};
