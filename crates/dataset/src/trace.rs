//! Trace 1-style session event logs.
//!
//! The paper prints an Inmarsat session-establishment capture (Trace 1):
//! timestamped protocol events from the service request through RAU,
//! authentication, QoS negotiation, to PDP activation — spanning ~10 s
//! over the GEO pipe. This module generates such logs synthetically for
//! any latency profile, so tests, examples, and docs can show *what a
//! session looks like* under each architecture, not just its aggregate
//! cost.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One timestamped protocol event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Seconds from the start of the session attempt.
    pub t_s: f64,
    /// Protocol family tag (as in Trace 1: UMTS-GMM / UMTS-MM /
    /// UMTS-SM / 5G-NAS / 5G-RRC).
    pub protocol: &'static str,
    /// Event description.
    pub event: &'static str,
}

/// A generated session-establishment log.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionTrace {
    pub events: Vec<TraceEvent>,
}

impl SessionTrace {
    /// Total duration (time of the last event).
    pub fn duration_s(&self) -> f64 {
        self.events.last().map_or(0.0, |e| e.t_s)
    }

    /// Render in the paper's Trace 1 style.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!("{:9.3} {}:{}\n", e.t_s, e.protocol, e.event));
        }
        out
    }
}

/// The Trace 1 event skeleton (Inmarsat/UMTS names), with nominal
/// fractional positions of each event within the session.
const GEO_SKELETON: &[(&str, &str, f64)] = &[
    ("UMTS-GMM", "Initiating service request", 0.0),
    ("UMTS-GMM", "Signalling connection secured", 0.06),
    ("UMTS-GMM", "Initiating RAU procedure", 0.42),
    ("UMTS-MM", "MM_LOCUPDPEND", 0.42),
    ("UMTS-MM", "MM_WAITRRLOCUPD", 0.43),
    ("UMTS-MM", "MM_LOCUPDINIT", 0.43),
    ("UMTS-SM", "AL State:DATA_CONN_ACTIVE", 0.49),
    ("UMTS-GMM", "Authentication request received", 0.58),
    ("UMTS-SM", "Qos: transferdelay:22, maxSDU:1500", 0.60),
    ("UMTS-SM", "Qos:bitRateUp:512/896, Down:512/896", 0.60),
    ("UMTS-SM-GW", "pdp new state Active", 0.61),
];

/// The SpaceCore local-establishment skeleton (Fig. 16a): four events,
/// no home round-trips.
const SPACECORE_SKELETON: &[(&str, &str, f64)] = &[
    ("5G-RRC", "rrc connection setup", 0.0),
    ("5G-RRC", "rrc setup complete (state replica piggybacked)", 0.3),
    ("SC-PROXY", "replica decrypted, session key agreed", 0.7),
    ("5G-SM", "session accept, data active", 1.0),
];

/// Generate a GEO-pipe session trace with total duration drawn around
/// `mean_duration_s` (Trace 1's Inmarsat session took ~10.1 s).
pub fn geo_pipe_session(mean_duration_s: f64, seed: u64) -> SessionTrace {
    skeleton_trace(GEO_SKELETON, mean_duration_s, 0.25, seed)
}

/// Generate a SpaceCore local-establishment trace (duration ~0.15 s at
/// low load, per Fig. 17b).
pub fn spacecore_session(mean_duration_s: f64, seed: u64) -> SessionTrace {
    skeleton_trace(SPACECORE_SKELETON, mean_duration_s, 0.15, seed)
}

fn skeleton_trace(
    skeleton: &[(&'static str, &'static str, f64)],
    mean_duration_s: f64,
    jitter: f64,
    seed: u64,
) -> SessionTrace {
    assert!(mean_duration_s > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let duration = mean_duration_s * (1.0 + jitter * (rng.gen::<f64>() * 2.0 - 1.0));
    let mut t_prev = 0.0f64;
    let events = skeleton
        .iter()
        .map(|(proto, ev, frac)| {
            let noise = 1.0 + 0.05 * (rng.gen::<f64>() * 2.0 - 1.0);
            let t = (frac * duration * noise).max(t_prev);
            t_prev = t;
            TraceEvent {
                t_s: t,
                protocol: proto,
                event: ev,
            }
        })
        .collect();
    SessionTrace { events }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_trace_matches_trace1_shape() {
        let t = geo_pipe_session(10.1, 42);
        assert_eq!(t.events.len(), GEO_SKELETON.len());
        // Monotone timestamps.
        for w in t.events.windows(2) {
            assert!(w[1].t_s >= w[0].t_s);
        }
        // First event is the service request at t≈0; PDP activation last.
        assert_eq!(t.events[0].event, "Initiating service request");
        assert!(t.events.last().unwrap().event.contains("Active"));
        // Duration in the seconds range like Trace 1.
        assert!((3.0..20.0).contains(&t.duration_s()), "{}", t.duration_s());
    }

    #[test]
    fn spacecore_trace_is_subsecond() {
        let t = spacecore_session(0.15, 1);
        assert!(t.duration_s() < 0.5, "{}", t.duration_s());
        assert!(t.events.iter().any(|e| e.protocol == "SC-PROXY"));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(geo_pipe_session(10.0, 7), geo_pipe_session(10.0, 7));
        assert_ne!(geo_pipe_session(10.0, 7), geo_pipe_session(10.0, 8));
    }

    #[test]
    fn render_is_trace1_style() {
        let s = geo_pipe_session(10.1, 3).render();
        assert!(s.contains("UMTS-GMM:Initiating service request"), "{s}");
        assert!(s.lines().count() == GEO_SKELETON.len());
    }

    #[test]
    fn ordering_preserved_under_extreme_jitter() {
        for seed in 0..50 {
            let t = geo_pipe_session(5.0, seed);
            for w in t.events.windows(2) {
                assert!(w[1].t_s >= w[0].t_s, "seed {seed}");
            }
        }
    }
}
