//! Traffic-class profiles: how different device classes load the core.
//!
//! §2.2 motivates SpaceCore with "massive connectivities to
//! delay-tolerant, low-energy Internet-of-Things" alongside consumer
//! broadband. Device classes differ in exactly the parameters the storm
//! arithmetic consumes: session inter-arrival, session length, payload
//! volume, and paging (downlink-initiated) share. This module defines
//! the profiles and mixes them into effective workload parameters.

use crate::workload::WorkloadParams;

/// A device/traffic class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Sensor-style IoT: rare, tiny, uplink-dominated reports.
    IotSensor,
    /// Tracker-style IoT: periodic reports plus occasional downlink
    /// commands (paging-heavy relative to its volume).
    IotTracker,
    /// Consumer smartphone traffic.
    Consumer,
    /// Enterprise / backhaul-style always-on.
    Enterprise,
}

/// The per-class behavioural profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassProfile {
    /// Mean session inter-arrival, seconds.
    pub session_interarrival_s: f64,
    /// Mean session (active radio) duration, seconds.
    pub session_duration_s: f64,
    /// Fraction of sessions that are downlink-initiated (need paging).
    pub downlink_fraction: f64,
    /// Mean bytes per session.
    pub bytes_per_session: u64,
}

impl TrafficClass {
    pub const ALL: [TrafficClass; 4] = [
        TrafficClass::IotSensor,
        TrafficClass::IotTracker,
        TrafficClass::Consumer,
        TrafficClass::Enterprise,
    ];

    pub fn name(self) -> &'static str {
        match self {
            TrafficClass::IotSensor => "IoT sensor",
            TrafficClass::IotTracker => "IoT tracker",
            TrafficClass::Consumer => "consumer",
            TrafficClass::Enterprise => "enterprise",
        }
    }

    /// The behavioural profile.
    pub fn profile(self) -> ClassProfile {
        match self {
            TrafficClass::IotSensor => ClassProfile {
                session_interarrival_s: 3600.0, // hourly report
                session_duration_s: 2.0,
                downlink_fraction: 0.02,
                bytes_per_session: 512,
            },
            TrafficClass::IotTracker => ClassProfile {
                session_interarrival_s: 600.0,
                session_duration_s: 3.0,
                downlink_fraction: 0.4,
                bytes_per_session: 2_048,
            },
            TrafficClass::Consumer => ClassProfile {
                session_interarrival_s: 106.9, // the paper's measured value
                session_duration_s: 12.5,
                downlink_fraction: 0.3,
                bytes_per_session: 4 << 20,
            },
            TrafficClass::Enterprise => ClassProfile {
                session_interarrival_s: 60.0,
                session_duration_s: 45.0,
                downlink_fraction: 0.5,
                bytes_per_session: 64 << 20,
            },
        }
    }
}

/// A population mix over classes (fractions must sum to 1).
#[derive(Debug, Clone)]
pub struct TrafficMix {
    entries: Vec<(TrafficClass, f64)>,
}

impl TrafficMix {
    /// Build a mix; fractions are validated.
    pub fn new(entries: Vec<(TrafficClass, f64)>) -> Self {
        let sum: f64 = entries.iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9, "fractions must sum to 1, got {sum}");
        assert!(entries.iter().all(|(_, f)| *f >= 0.0));
        Self { entries }
    }

    /// The paper's implicit consumer-dominated mix.
    pub fn consumer_dominated() -> Self {
        Self::new(vec![
            (TrafficClass::Consumer, 0.85),
            (TrafficClass::IotTracker, 0.08),
            (TrafficClass::IotSensor, 0.05),
            (TrafficClass::Enterprise, 0.02),
        ])
    }

    /// The massive-IoT future the paper motivates (§2.2 value 2).
    pub fn iot_dominated() -> Self {
        Self::new(vec![
            (TrafficClass::IotSensor, 0.60),
            (TrafficClass::IotTracker, 0.30),
            (TrafficClass::Consumer, 0.09),
            (TrafficClass::Enterprise, 0.01),
        ])
    }

    /// Mix fractions.
    pub fn entries(&self) -> &[(TrafficClass, f64)] {
        &self.entries
    }

    /// Effective aggregate session rate per device, sessions/s.
    pub fn sessions_per_device_s(&self) -> f64 {
        self.entries
            .iter()
            .map(|(c, f)| f / c.profile().session_interarrival_s)
            .sum()
    }

    /// Effective paging share (downlink-initiated fraction, weighted by
    /// each class's session rate).
    pub fn downlink_fraction(&self) -> f64 {
        let total = self.sessions_per_device_s();
        self.entries
            .iter()
            .map(|(c, f)| {
                let p = c.profile();
                f / p.session_interarrival_s * p.downlink_fraction
            })
            .sum::<f64>()
            / total
    }

    /// Effective active fraction (time with a live radio connection).
    pub fn active_fraction(&self) -> f64 {
        self.entries
            .iter()
            .map(|(c, f)| {
                let p = c.profile();
                f * (p.session_duration_s / p.session_interarrival_s).min(1.0)
            })
            .sum()
    }

    /// Fold the mix into [`WorkloadParams`] (keeping the base transit).
    pub fn workload_params(&self, base: &WorkloadParams) -> WorkloadParams {
        WorkloadParams {
            session_interarrival_s: 1.0 / self.sessions_per_device_s(),
            inactivity_release_s: base.inactivity_release_s,
            transit_s: base.transit_s,
            active_fraction: self.active_fraction(),
            downlink_fraction: self.downlink_fraction(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consumer_profile_matches_paper_constants() {
        let p = TrafficClass::Consumer.profile();
        assert!((p.session_interarrival_s - 106.9).abs() < 1e-9);
        assert!((p.session_duration_s - 12.5).abs() < 1e-9);
    }

    #[test]
    fn mixes_validate() {
        let _ = TrafficMix::consumer_dominated();
        let _ = TrafficMix::iot_dominated();
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_mix_rejected() {
        TrafficMix::new(vec![(TrafficClass::Consumer, 0.5)]);
    }

    #[test]
    fn iot_mix_fewer_sessions_per_device() {
        // Massive IoT: each device signals far less often…
        let consumer = TrafficMix::consumer_dominated();
        let iot = TrafficMix::iot_dominated();
        assert!(iot.sessions_per_device_s() < consumer.sessions_per_device_s() / 3.0);
    }

    #[test]
    fn iot_mix_is_paging_heavier_per_session() {
        // …but a larger share of its (tracker) sessions are
        // network-triggered.
        let consumer = TrafficMix::consumer_dominated();
        let iot = TrafficMix::iot_dominated();
        assert!(iot.downlink_fraction() > 0.5 * consumer.downlink_fraction());
    }

    #[test]
    fn active_fraction_bounded() {
        for mix in [TrafficMix::consumer_dominated(), TrafficMix::iot_dominated()] {
            let a = mix.active_fraction();
            assert!(a > 0.0 && a < 1.0, "{a}");
        }
    }

    #[test]
    fn workload_params_fold() {
        let base = WorkloadParams::paper_defaults();
        let p = TrafficMix::iot_dominated().workload_params(&base);
        assert!(p.session_interarrival_s > base.session_interarrival_s);
        assert_eq!(p.transit_s, base.transit_s);
        // More devices per satellite are sustainable: at equal capacity,
        // the session rate drops.
        assert!(1.0 / p.session_interarrival_s < 1.0 / base.session_interarrival_s);
    }
}
