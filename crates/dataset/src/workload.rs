//! Event-rate models: the workload arithmetic behind the storm figures.
//!
//! The paper's measured behavioural constants:
//!
//! * session establishment every **106.9 s** per UE (§3.1, citing \[44\]),
//! * RRC inactivity release after **10–15 s** (§3.1),
//! * per-satellite coverage transit of **165.8 s** in Starlink (§3.2),
//!
//! combined with a satellite's user capacity (the 2K/10K/20K/30K sweep of
//! Figures 10/20) yield per-satellite procedure rates; multiplying by the
//! per-procedure message counts of Figure 9 yields signaling msg/s.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sc_fiveg::messages::{Procedure, ProcedureKind};
use sc_fiveg::nf::SplitOption;
use sc_orbit::ConstellationConfig;

/// Behavioural workload parameters (paper defaults).
#[derive(Debug, Clone, Copy)]
pub struct WorkloadParams {
    /// Mean per-UE session inter-arrival, seconds (paper: 106.9).
    pub session_interarrival_s: f64,
    /// RRC inactivity release, seconds (paper: 10–15; default midpoint).
    pub inactivity_release_s: f64,
    /// Mean per-satellite coverage transit, seconds (paper: 165.8 for
    /// Starlink; scaled by footprint/speed for other shells).
    pub transit_s: f64,
    /// Fraction of a UE's time spent with an active radio connection
    /// (release window / inter-arrival).
    pub active_fraction: f64,
    /// Fraction of downlink-initiated sessions (require paging).
    pub downlink_fraction: f64,
}

impl WorkloadParams {
    /// Paper defaults for Starlink.
    pub fn paper_defaults() -> Self {
        let session_interarrival_s = 106.9;
        let inactivity_release_s = 12.5;
        Self {
            session_interarrival_s,
            inactivity_release_s,
            transit_s: 165.8,
            active_fraction: inactivity_release_s / session_interarrival_s,
            downlink_fraction: 0.3,
        }
    }

    /// Defaults with the transit time recomputed for a shell's geometry.
    pub fn for_constellation(cfg: &ConstellationConfig) -> Self {
        let mut p = Self::paper_defaults();
        // Transit scales with footprint diameter / ground speed.
        let half = sc_geo::sphere::coverage_half_angle(cfg.altitude_km, cfg.min_elevation_rad);
        let footprint_km = 2.0 * half * sc_geo::EARTH_RADIUS_KM;
        let vg = cfg.mean_motion_rad_s() * sc_geo::EARTH_RADIUS_KM;
        p.transit_s = std::f64::consts::FRAC_PI_4 * footprint_km / vg;
        p
    }
}

/// Per-satellite event and signaling rates for one split option.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SatelliteRates {
    /// Session establishments per second.
    pub sessions_per_s: f64,
    /// Handover events per second (satellite-mobility induced).
    pub handovers_per_s: f64,
    /// Mobility registration updates per second (satellite-mobility
    /// induced; zero unless mobility functions move with satellites).
    pub mobility_regs_per_s: f64,
    /// Signaling messages per second processed by the satellite.
    pub sat_msgs_per_s: f64,
    /// Signaling messages per second crossing to ground stations.
    pub ground_msgs_per_s: f64,
    /// Session-state items per second shipped across the boundary.
    pub state_tx_per_s: f64,
}

/// The per-satellite rate model.
#[derive(Debug, Clone)]
pub struct RateModel {
    pub params: WorkloadParams,
    /// Lower-layer signaling expansion factor applied to UE-facing radio
    /// messages (from the Table 2 captures; see
    /// [`crate::table2::Table2::satellite_lower_layer_factor`]). The
    /// emulation uses a conservative compressed factor since only part of
    /// L1/L2 is per-procedure.
    pub radio_overhead: f64,
}

impl RateModel {
    pub fn new(params: WorkloadParams) -> Self {
        Self {
            params,
            radio_overhead: 3.0,
        }
    }

    /// Session-establishment rate for `capacity` served UEs.
    pub fn session_rate(&self, capacity: u32) -> f64 {
        capacity as f64 / self.params.session_interarrival_s
    }

    /// Satellite-mobility handover rate: every served UE must be handed
    /// to the incoming satellite once per coverage transit (§3.2: static
    /// users "have to initiate procedures in Figure 9c-d" as satellites
    /// sweep past).
    pub fn handover_rate(&self, capacity: u32) -> f64 {
        capacity as f64 / self.params.transit_s
    }

    /// Satellite-mobility registration rate: with satellite-bound
    /// tracking areas, *every* UE (idle included) re-registers once per
    /// transit.
    pub fn mobility_reg_rate(&self, capacity: u32) -> f64 {
        capacity as f64 / self.params.transit_s
    }

    /// Full per-satellite rates for one stateful split option
    /// (Figure 10's per-satellite and per-ground-station message rates).
    ///
    /// Satellite-side message counts use sent+received accounting (each
    /// inter-node message loads both endpoints' radios/CPUs), matching
    /// the per-satellite magnitudes the paper reports.
    pub fn satellite_rates(&self, option: SplitOption, capacity: u32) -> SatelliteRates {
        let split = option.split();
        let c2 = Procedure::build(ProcedureKind::SessionEstablishment);
        let paging = Procedure::build(ProcedureKind::Paging);
        let c3 = Procedure::build(ProcedureKind::Handover);
        let c4 = Procedure::build(ProcedureKind::MobilityRegistration);

        let sessions = self.session_rate(capacity);
        let handovers = self.handover_rate(capacity);
        // Mobility registrations only fire when the tracking area moves
        // with the satellite: options with AMF in space (3, 4). SpaceCore
        // eliminates them by geospatial tracking areas (§4.3).
        let mobility_regs = if matches!(
            option,
            SplitOption::SessionMobility | SplitOption::AllFunctions
        ) {
            self.mobility_reg_rate(capacity)
        } else {
            0.0
        };

        let sat_per_c2 = c2.satellite_messages(&split) as f64 * self.radio_overhead
            + self.params.downlink_fraction * paging.satellite_messages(&split) as f64;
        let sat_per_c3 = c3.satellite_messages(&split) as f64;
        let sat_per_c4 = c4.satellite_messages(&split) as f64;

        let gs_per_c2 = c2.ground_messages(&split) as f64
            + self.params.downlink_fraction * paging.ground_messages(&split) as f64;
        let gs_per_c3 = c3.ground_messages(&split) as f64;
        let gs_per_c4 = c4.ground_messages(&split) as f64;

        let state_per_c2 = c2.state_tx_crossing(&split) as f64;
        let state_per_c3 = c3.state_tx_crossing(&split) as f64;
        let state_per_c4 = c4.state_tx_crossing(&split) as f64;

        SatelliteRates {
            sessions_per_s: sessions,
            handovers_per_s: handovers,
            mobility_regs_per_s: mobility_regs,
            sat_msgs_per_s: sessions * sat_per_c2
                + handovers * sat_per_c3
                + mobility_regs * sat_per_c4,
            ground_msgs_per_s: sessions * gs_per_c2
                + handovers * gs_per_c3
                + mobility_regs * gs_per_c4,
            state_tx_per_s: sessions * state_per_c2
                + handovers * state_per_c3
                + mobility_regs * state_per_c4,
        }
    }

    /// Ground-station aggregate rate: ground stations are far fewer than
    /// satellites, so each one aggregates the boundary-crossing load of
    /// `sats_per_station` satellites (§3.1's order-of-magnitude blow-up).
    pub fn ground_station_rate(
        &self,
        option: SplitOption,
        capacity: u32,
        total_sats: usize,
        total_stations: usize,
    ) -> f64 {
        let per_sat = self.satellite_rates(option, capacity).ground_msgs_per_s;
        per_sat * total_sats as f64 / total_stations.max(1) as f64
    }

    /// Sample Poisson-process session arrival offsets for one UE over
    /// `horizon_s` (deterministic in `seed`).
    pub fn sample_session_arrivals(&self, horizon_s: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0;
        let mut out = Vec::new();
        loop {
            let u: f64 = rng.gen::<f64>().max(1e-12);
            t += -self.params.session_interarrival_s * u.ln();
            if t > horizon_s {
                break;
            }
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> RateModel {
        RateModel::new(WorkloadParams::paper_defaults())
    }

    #[test]
    fn session_rate_matches_interarrival() {
        let m = model();
        // 30K users / 106.9 s ≈ 280 sessions/s.
        assert!((m.session_rate(30_000) - 280.6).abs() < 1.0);
    }

    #[test]
    fn figure10_session_storm_magnitudes() {
        // Paper: "each satellite suffers from 1,035-41,559 signalings/s
        // from session establishments" across 2K-30K capacities. Our
        // model must land in the same orders of magnitude.
        let m = model();
        let low = m.satellite_rates(SplitOption::RadioOnly, 2_000);
        let high = m.satellite_rates(SplitOption::DataSession, 30_000);
        assert!(
            low.sat_msgs_per_s > 300.0 && low.sat_msgs_per_s < 5_000.0,
            "{}",
            low.sat_msgs_per_s
        );
        assert!(
            high.sat_msgs_per_s > 5_000.0 && high.sat_msgs_per_s < 60_000.0,
            "{}",
            high.sat_msgs_per_s
        );
    }

    #[test]
    fn figure10_handover_storm_magnitudes() {
        // Paper: 248-7,169 handover messages/s per satellite in Starlink
        // for options 1-2 — our C3 satellite-message rate must be the
        // same scale.
        let m = model();
        let split = SplitOption::RadioOnly.split();
        let c3 = Procedure::build(ProcedureKind::Handover);
        let low = m.handover_rate(2_000) * c3.satellite_messages(&split) as f64;
        let high = m.handover_rate(30_000) * c3.satellite_messages(&split) as f64;
        assert!(low > 50.0 && low < 1_500.0, "{low}");
        assert!(high > 800.0 && high < 20_000.0, "{high}");
    }

    #[test]
    fn mobility_regs_only_for_options_3_4() {
        let m = model();
        assert_eq!(
            m.satellite_rates(SplitOption::RadioOnly, 10_000).mobility_regs_per_s,
            0.0
        );
        assert_eq!(
            m.satellite_rates(SplitOption::DataSession, 10_000).mobility_regs_per_s,
            0.0
        );
        assert!(
            m.satellite_rates(SplitOption::SessionMobility, 10_000)
                .mobility_regs_per_s
                > 50.0
        );
        assert!(
            m.satellite_rates(SplitOption::AllFunctions, 10_000)
                .mobility_regs_per_s
                > 50.0
        );
    }

    #[test]
    fn ground_station_aggregation_blowup() {
        // §3.1: ground-station load is an order of magnitude above
        // per-satellite load (1584 satellites / 30 stations ≈ 53×).
        let m = model();
        let per_sat = m
            .satellite_rates(SplitOption::RadioOnly, 10_000)
            .ground_msgs_per_s;
        let per_gs = m.ground_station_rate(SplitOption::RadioOnly, 10_000, 1584, 30);
        assert!(per_gs > 10.0 * per_sat, "gs {per_gs} sat {per_sat}");
    }

    #[test]
    fn option4_no_ground_load() {
        let m = model();
        let r = m.satellite_rates(SplitOption::AllFunctions, 10_000);
        assert_eq!(r.ground_msgs_per_s, 0.0);
        assert_eq!(r.state_tx_per_s, 0.0);
    }

    #[test]
    fn transit_time_scales_with_altitude() {
        let starlink = WorkloadParams::for_constellation(&ConstellationConfig::starlink());
        let oneweb = WorkloadParams::for_constellation(&ConstellationConfig::oneweb());
        // Paper's Starlink transit ≈ 165.8 s; our geometric estimate must
        // be the same scale, and OneWeb (higher altitude) longer.
        assert!(
            starlink.transit_s > 100.0 && starlink.transit_s < 260.0,
            "{}",
            starlink.transit_s
        );
        assert!(oneweb.transit_s > starlink.transit_s);
    }

    #[test]
    fn poisson_arrivals_mean_matches() {
        let m = model();
        let mut count = 0usize;
        let horizon = 10_000.0;
        for seed in 0..50 {
            count += m.sample_session_arrivals(horizon, seed).len();
        }
        let mean_rate = count as f64 / 50.0 / horizon;
        let expect = 1.0 / 106.9;
        assert!((mean_rate - expect).abs() < 0.1 * expect, "{mean_rate} vs {expect}");
    }

    #[test]
    fn arrivals_sorted_and_within_horizon() {
        let m = model();
        let a = m.sample_session_arrivals(1000.0, 3);
        for w in a.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(a.iter().all(|t| *t <= 1000.0));
    }
}
