//! Global UE population model (World-Bank-style subscription density).
//!
//! The paper distributes emulated UEs "assuming the global distributions
//! of UEs from the World Bank". We model the distribution as a mixture of
//! regional hotspots (population-weighted Gaussian blobs over major
//! population centres) — coarse, but it preserves exactly what the
//! experiments consume: *how many users a satellite sees as it traverses
//! each region* (the Fig. 12 temporal dynamics) and *where sessions are
//! generated globally* (Figs. 10/20 aggregates).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sc_geo::sphere::GeoPoint;

/// Continental region labels used by Figure 12's annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    NorthAmerica,
    SouthCentralAmerica,
    EuropeAsia,
    Africa,
    Oceania,
    Ocean,
}

impl Region {
    pub fn name(self) -> &'static str {
        match self {
            Region::NorthAmerica => "North America",
            Region::SouthCentralAmerica => "South & Central America",
            Region::EuropeAsia => "Europe & Asia",
            Region::Africa => "Africa",
            Region::Oceania => "Oceania",
            Region::Ocean => "Ocean",
        }
    }
}

/// One population hotspot.
#[derive(Debug, Clone, Copy)]
struct Hotspot {
    center: GeoPoint,
    /// Relative subscription weight (≈ millions of subscribers).
    weight: f64,
    /// Spatial spread, radians of central angle.
    sigma: f64,
    region: Region,
}

/// The global population/subscription model.
#[derive(Debug, Clone)]
pub struct PopulationModel {
    hotspots: Vec<Hotspot>,
    total_weight: f64,
}

impl Default for PopulationModel {
    fn default() -> Self {
        Self::world_bank_like()
    }
}

impl PopulationModel {
    /// The default world model: ~20 hotspots weighted like the World
    /// Bank 2019 mobile-subscription distribution.
    pub fn world_bank_like() -> Self {
        use Region::*;
        let h = |lat: f64, lon: f64, weight: f64, sigma_deg: f64, region: Region| Hotspot {
            center: GeoPoint::from_degrees(lat, lon),
            weight,
            sigma: sigma_deg.to_radians(),
            region,
        };
        let hotspots = vec![
            // Europe & Asia (the dominant mass).
            h(31.0, 112.0, 1700.0, 10.0, EuropeAsia), // eastern China
            h(23.0, 80.0, 1200.0, 9.0, EuropeAsia),   // India
            h(36.0, 138.0, 190.0, 4.0, EuropeAsia),   // Japan
            h(-2.0, 110.0, 350.0, 8.0, EuropeAsia),   // Indonesia / SE Asia
            h(16.0, 102.0, 220.0, 6.0, EuropeAsia),   // Indochina
            h(50.0, 10.0, 480.0, 8.0, EuropeAsia),    // western/central Europe
            h(55.0, 45.0, 250.0, 10.0, EuropeAsia),   // Russia / eastern Europe
            h(33.0, 48.0, 280.0, 8.0, EuropeAsia),    // Middle East
            h(40.0, 68.0, 120.0, 7.0, EuropeAsia),    // central Asia
            // North America.
            h(40.0, -95.0, 360.0, 10.0, NorthAmerica),
            h(19.5, -99.0, 120.0, 5.0, NorthAmerica), // Mexico
            // South & Central America.
            h(-15.0, -52.0, 210.0, 9.0, SouthCentralAmerica), // Brazil
            h(-34.0, -61.0, 70.0, 6.0, SouthCentralAmerica),  // Argentina
            h(5.0, -74.0, 90.0, 6.0, SouthCentralAmerica),    // Andes north
            // Africa.
            h(9.0, 8.0, 190.0, 7.0, Africa),    // Nigeria / west Africa
            h(0.5, 36.0, 130.0, 7.0, Africa),   // east Africa
            h(-28.0, 25.0, 90.0, 6.0, Africa),  // southern Africa
            h(30.0, 30.0, 110.0, 5.0, Africa),  // Egypt / north Africa
            // Oceania.
            h(-31.0, 140.0, 35.0, 8.0, Oceania), // Australia
            h(-40.0, 175.0, 6.0, 3.0, Oceania),  // New Zealand
        ];
        let total_weight = hotspots.iter().map(|h| h.weight).sum();
        Self {
            hotspots,
            total_weight,
        }
    }

    /// Relative subscription density at a point (arbitrary units;
    /// integrates to ≈ total weight).
    pub fn density(&self, p: &GeoPoint) -> f64 {
        self.hotspots
            .iter()
            .map(|h| {
                let d = h.center.central_angle(p);
                h.weight * (-0.5 * (d / h.sigma).powi(2)).exp() / (h.sigma * h.sigma)
            })
            .sum()
    }

    /// Region classification of a point: the region of the nearest
    /// hotspot if within 3σ, else [`Region::Ocean`].
    pub fn region_of(&self, p: &GeoPoint) -> Region {
        let mut best: Option<(f64, Region)> = None;
        for h in &self.hotspots {
            let d = h.center.central_angle(p) / h.sigma;
            if d <= 3.0 && best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, h.region));
            }
        }
        best.map_or(Region::Ocean, |(_, r)| r)
    }

    /// Fraction of global users a satellite footprint centred at `p`
    /// with half-angle `half_angle` (radians) covers. Approximated by
    /// the density at the centre times the footprint solid angle,
    /// normalized by the mixture's total integral (each Gaussian blob
    /// integrates to `2π · weight` under the `weight/σ²` scaling).
    pub fn coverage_fraction(&self, p: &GeoPoint, half_angle: f64) -> f64 {
        let footprint_sr = std::f64::consts::PI * half_angle * half_angle;
        (self.density(p) * footprint_sr / (std::f64::consts::TAU * self.total_weight)).min(1.0)
    }

    /// Sample `n` UE positions from the mixture (deterministic in seed).
    pub fn sample_ues(&self, n: usize, seed: u64) -> Vec<GeoPoint> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                // Pick a hotspot by weight.
                let mut x: f64 = rng.gen::<f64>() * self.total_weight;
                let mut chosen = self.hotspots.last().expect("non-empty");
                for h in &self.hotspots {
                    if x < h.weight {
                        chosen = h;
                        break;
                    }
                    x -= h.weight;
                }
                // Gaussian offset (Box-Muller) around the centre.
                let (u1, u2): (f64, f64) = (rng.gen::<f64>().max(1e-12), rng.gen());
                let r = chosen.sigma * (-2.0 * u1.ln()).sqrt();
                let theta = std::f64::consts::TAU * u2;
                let dlat = r * theta.sin();
                let dlon = r * theta.cos() / chosen.center.lat.cos().max(0.2);
                let lat = (chosen.center.lat + dlat).clamp(-1.55, 1.55);
                GeoPoint::new(lat, chosen.center.lon + dlon)
            })
            .collect()
    }

    /// Total model weight (≈ global subscriptions, millions).
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_in_china_sparse_in_pacific() {
        let m = PopulationModel::world_bank_like();
        let shanghai = GeoPoint::from_degrees(31.2, 121.5);
        let pacific = GeoPoint::from_degrees(-30.0, -140.0);
        assert!(m.density(&shanghai) > 100.0 * m.density(&pacific));
    }

    #[test]
    fn region_classification() {
        let m = PopulationModel::world_bank_like();
        assert_eq!(
            m.region_of(&GeoPoint::from_degrees(39.9, 116.4)),
            Region::EuropeAsia
        );
        assert_eq!(
            m.region_of(&GeoPoint::from_degrees(40.7, -74.0)),
            Region::NorthAmerica
        );
        assert_eq!(
            m.region_of(&GeoPoint::from_degrees(-23.5, -46.6)),
            Region::SouthCentralAmerica
        );
        assert_eq!(m.region_of(&GeoPoint::from_degrees(6.5, 3.4)), Region::Africa);
        assert_eq!(
            m.region_of(&GeoPoint::from_degrees(-33.9, 151.2)),
            Region::Oceania
        );
        assert_eq!(
            m.region_of(&GeoPoint::from_degrees(-35.0, -140.0)),
            Region::Ocean
        );
    }

    #[test]
    fn sampling_respects_weights() {
        let m = PopulationModel::world_bank_like();
        let ues = m.sample_ues(20_000, 1);
        assert_eq!(ues.len(), 20_000);
        let eurasia = ues
            .iter()
            .filter(|p| m.region_of(p) == Region::EuropeAsia)
            .count() as f64
            / 20_000.0;
        // Europe & Asia holds the clear majority of subscriptions.
        assert!(eurasia > 0.5, "{eurasia}");
        let oceania = ues
            .iter()
            .filter(|p| m.region_of(p) == Region::Oceania)
            .count() as f64
            / 20_000.0;
        assert!(oceania < 0.05, "{oceania}");
    }

    #[test]
    fn sampling_deterministic() {
        let m = PopulationModel::world_bank_like();
        assert_eq!(m.sample_ues(100, 9), m.sample_ues(100, 9));
        assert_ne!(m.sample_ues(100, 9), m.sample_ues(100, 10));
    }

    #[test]
    fn coverage_fraction_bounded() {
        let m = PopulationModel::world_bank_like();
        let f = m.coverage_fraction(&GeoPoint::from_degrees(31.0, 112.0), 0.15);
        assert!(f > 0.0 && f <= 1.0, "{f}");
        let ocean = m.coverage_fraction(&GeoPoint::from_degrees(-40.0, -140.0), 0.15);
        assert!(ocean < f / 50.0, "ocean {ocean} vs china {f}");
    }

    #[test]
    fn all_samples_have_valid_latitudes() {
        let m = PopulationModel::world_bank_like();
        for p in m.sample_ues(5000, 3) {
            assert!(p.lat.abs() <= 1.56);
            assert!(p.lon.abs() <= std::f64::consts::PI + 1e-9);
        }
    }
}
