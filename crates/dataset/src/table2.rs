//! The Table 2 signaling datasets, reproduced synthetically.
//!
//! Table 2 of the paper reports per-protocol message counts collected
//! from three satellite terminals (Inmarsat Explorer 710, Tiantong SC310,
//! Tiantong T900) and three terrestrial 5G operators (China Telecom,
//! China Unicom, China Mobile). The exact published counts are embedded
//! here; [`Table2::synthesize`] emits a message stream with the same
//! per-layer mix, which the emulation replays exactly as the paper
//! replays its captures.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Protocol layer of a captured message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolLayer {
    /// Physical/link-layer control (dominates all captures).
    L1L2,
    /// Radio resource control.
    Rrc,
    /// Mobility management (NAS-MM).
    Mm,
    /// Session management (NAS-SM).
    Sm,
    /// Everything else (vendor diagnostics etc.; N/A for terrestrial).
    Others,
}

impl ProtocolLayer {
    pub const ALL: [ProtocolLayer; 5] = [
        ProtocolLayer::L1L2,
        ProtocolLayer::Rrc,
        ProtocolLayer::Mm,
        ProtocolLayer::Sm,
        ProtocolLayer::Others,
    ];

    pub fn name(self) -> &'static str {
        match self {
            ProtocolLayer::L1L2 => "L1/L2",
            ProtocolLayer::Rrc => "RRC",
            ProtocolLayer::Mm => "MM",
            ProtocolLayer::Sm => "SM",
            ProtocolLayer::Others => "Others",
        }
    }
}

/// One column of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetSource {
    InmarsatExplorer710,
    TiantongSc310,
    TiantongT900,
    ChinaTelecom5g,
    ChinaUnicom5g,
    ChinaMobile5g,
}

impl DatasetSource {
    pub const ALL: [DatasetSource; 6] = [
        DatasetSource::InmarsatExplorer710,
        DatasetSource::TiantongSc310,
        DatasetSource::TiantongT900,
        DatasetSource::ChinaTelecom5g,
        DatasetSource::ChinaUnicom5g,
        DatasetSource::ChinaMobile5g,
    ];

    pub fn name(self) -> &'static str {
        match self {
            DatasetSource::InmarsatExplorer710 => "Inmarsat Explorer 710",
            DatasetSource::TiantongSc310 => "Tiantong SC310",
            DatasetSource::TiantongT900 => "Tiantong T900",
            DatasetSource::ChinaTelecom5g => "China Telecom",
            DatasetSource::ChinaUnicom5g => "China Unicom",
            DatasetSource::ChinaMobile5g => "China Mobile",
        }
    }

    /// Is this a (geostationary) satellite capture?
    pub fn is_satellite(self) -> bool {
        matches!(
            self,
            DatasetSource::InmarsatExplorer710
                | DatasetSource::TiantongSc310
                | DatasetSource::TiantongT900
        )
    }

    /// Mean registration signaling latency observed in the capture,
    /// seconds (Fig. 5b: "9.5 s and 13.5 s average registration delays in
    /// Inmarsat and Tiantong"). Terrestrial 5G registers in well under a
    /// second.
    pub fn mean_registration_delay_s(self) -> f64 {
        match self {
            DatasetSource::InmarsatExplorer710 => 9.5,
            DatasetSource::TiantongSc310 | DatasetSource::TiantongT900 => 13.5,
            _ => 0.35,
        }
    }
}

/// The Table 2 message-count matrix.
#[derive(Debug, Clone)]
pub struct Table2;

impl Table2 {
    /// The published count for `(source, layer)`. `None` where the paper
    /// reports N/A (the Others row for terrestrial operators).
    pub fn count(source: DatasetSource, layer: ProtocolLayer) -> Option<u64> {
        use DatasetSource::*;
        use ProtocolLayer::*;
        let v: i64 = match (source, layer) {
            (InmarsatExplorer710, L1L2) => 56_231,
            (InmarsatExplorer710, Rrc) => 40_800,
            (InmarsatExplorer710, Mm) => 57_264,
            (InmarsatExplorer710, Sm) => 53_868,
            (InmarsatExplorer710, Others) => 762_957,
            (TiantongSc310, L1L2) => 1_744_094,
            (TiantongSc310, Rrc) => 4_226,
            (TiantongSc310, Mm) => 43_555,
            (TiantongSc310, Sm) => 4_586,
            (TiantongSc310, Others) => 310_455,
            (TiantongT900, L1L2) => 3_887_429,
            (TiantongT900, Rrc) => 1_340,
            (TiantongT900, Mm) => 12_626,
            (TiantongT900, Sm) => 1_670,
            (TiantongT900, Others) => 376_671,
            (ChinaTelecom5g, L1L2) => 3_828_083,
            (ChinaTelecom5g, Rrc) => 28_841,
            (ChinaTelecom5g, Mm) => 605,
            (ChinaTelecom5g, Sm) => 203,
            (ChinaTelecom5g, Others) => -1,
            (ChinaUnicom5g, L1L2) => 1_475_393,
            (ChinaUnicom5g, Rrc) => 14_833,
            (ChinaUnicom5g, Mm) => 970,
            (ChinaUnicom5g, Sm) => 338,
            (ChinaUnicom5g, Others) => -1,
            (ChinaMobile5g, L1L2) => 8_405_587,
            (ChinaMobile5g, Rrc) => 69_782,
            (ChinaMobile5g, Mm) => 4_194,
            (ChinaMobile5g, Sm) => 925,
            (ChinaMobile5g, Others) => -1,
        };
        (v >= 0).then_some(v as u64)
    }

    /// Total messages for a source (the Table 2 "Total" row).
    pub fn total(source: DatasetSource) -> u64 {
        ProtocolLayer::ALL
            .iter()
            .filter_map(|l| Self::count(source, *l))
            .sum()
    }

    /// Fraction of the capture in each layer.
    pub fn layer_mix(source: DatasetSource) -> Vec<(ProtocolLayer, f64)> {
        let total = Self::total(source) as f64;
        ProtocolLayer::ALL
            .iter()
            .filter_map(|l| Self::count(source, *l).map(|c| (*l, c as f64 / total)))
            .collect()
    }

    /// The ratio of lower-layer (L1/L2 + Others) to NAS/RRC control
    /// messages, averaged over the satellite captures. The emulation uses
    /// it to scale procedure-level message counts up to over-the-air
    /// signaling volumes.
    pub fn satellite_lower_layer_factor() -> f64 {
        let sats = [
            DatasetSource::InmarsatExplorer710,
            DatasetSource::TiantongSc310,
            DatasetSource::TiantongT900,
        ];
        let mut ratios = 0.0;
        for s in sats {
            let lower = Self::count(s, ProtocolLayer::L1L2).unwrap_or(0)
                + Self::count(s, ProtocolLayer::Others).unwrap_or(0);
            let control = Self::count(s, ProtocolLayer::Rrc).unwrap_or(0)
                + Self::count(s, ProtocolLayer::Mm).unwrap_or(0)
                + Self::count(s, ProtocolLayer::Sm).unwrap_or(0);
            ratios += lower as f64 / control as f64;
        }
        ratios / sats.len() as f64
    }

    /// Synthesize a trace of `n` messages with the source's layer mix
    /// (deterministic in `seed`).
    pub fn synthesize(source: DatasetSource, n: usize, seed: u64) -> Vec<ProtocolLayer> {
        let mix = Self::layer_mix(source);
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut x: f64 = rng.gen();
                for (layer, frac) in &mix {
                    if x < *frac {
                        return *layer;
                    }
                    x -= frac;
                }
                mix.last().expect("non-empty mix").0
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_published_table() {
        // Table 2 "Total" row.
        assert_eq!(Table2::total(DatasetSource::InmarsatExplorer710), 971_120);
        assert_eq!(Table2::total(DatasetSource::TiantongSc310), 2_106_916);
        assert_eq!(Table2::total(DatasetSource::TiantongT900), 4_279_736);
        assert_eq!(Table2::total(DatasetSource::ChinaTelecom5g), 3_857_732);
        assert_eq!(Table2::total(DatasetSource::ChinaUnicom5g), 1_491_534);
        assert_eq!(Table2::total(DatasetSource::ChinaMobile5g), 8_480_488);
    }

    #[test]
    fn terrestrial_others_is_na() {
        assert!(Table2::count(DatasetSource::ChinaMobile5g, ProtocolLayer::Others).is_none());
        assert!(Table2::count(DatasetSource::TiantongSc310, ProtocolLayer::Others).is_some());
    }

    #[test]
    fn mix_sums_to_one() {
        for s in DatasetSource::ALL {
            let sum: f64 = Table2::layer_mix(s).iter().map(|(_, f)| f).sum();
            assert!((sum - 1.0).abs() < 1e-12, "{s:?}: {sum}");
        }
    }

    #[test]
    fn satellite_mm_heavier_than_terrestrial() {
        // The paper's point: satellite terminals see orders of magnitude
        // more MM signaling than terrestrial 5G (repeated registrations).
        let sat_mm = Table2::count(DatasetSource::InmarsatExplorer710, ProtocolLayer::Mm).unwrap();
        let ter_mm = Table2::count(DatasetSource::ChinaTelecom5g, ProtocolLayer::Mm).unwrap();
        assert!(sat_mm > 50 * ter_mm, "{sat_mm} vs {ter_mm}");
    }

    #[test]
    fn synthesized_mix_converges() {
        let n = 200_000;
        let trace = Table2::synthesize(DatasetSource::TiantongSc310, n, 7);
        assert_eq!(trace.len(), n);
        let mm = trace.iter().filter(|l| **l == ProtocolLayer::Mm).count() as f64 / n as f64;
        let expect = 43_555.0 / 2_106_916.0;
        assert!((mm - expect).abs() < 0.005, "mm {mm} expect {expect}");
        let l1 = trace.iter().filter(|l| **l == ProtocolLayer::L1L2).count() as f64 / n as f64;
        assert!((l1 - 0.8278).abs() < 0.01, "{l1}");
    }

    #[test]
    fn synthesis_deterministic() {
        let a = Table2::synthesize(DatasetSource::ChinaMobile5g, 1000, 42);
        let b = Table2::synthesize(DatasetSource::ChinaMobile5g, 1000, 42);
        assert_eq!(a, b);
        let c = Table2::synthesize(DatasetSource::ChinaMobile5g, 1000, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn lower_layer_factor_in_expected_range() {
        let f = Table2::satellite_lower_layer_factor();
        // Inmarsat ~5.4, SC310 ~39, T900 ~273 → mean ≈ 106.
        assert!(f > 50.0 && f < 200.0, "{f}");
    }

    #[test]
    fn geo_pipe_registration_delays() {
        // Fig. 5b / Trace 1 headline numbers.
        assert!(
            (DatasetSource::InmarsatExplorer710.mean_registration_delay_s() - 9.5).abs() < 1e-9
        );
        assert!((DatasetSource::TiantongSc310.mean_registration_delay_s() - 13.5).abs() < 1e-9);
        assert!(DatasetSource::ChinaMobile5g.mean_registration_delay_s() < 1.0);
    }
}
