//! Geospatial mobility management (§4.3).
//!
//! SpaceCore's core mobility claim, as a decision table:
//!
//! | event | legacy stateful core | SpaceCore |
//! |---|---|---|
//! | satellite sweeps past an **idle** UE | C4 mobility registration (tracking area moved) | **nothing** — geospatial TA is earth-fixed |
//! | satellite sweeps past an **active** UE | C3 handover with multi-hop state migration | local handover via the UE replica (3 msgs) |
//! | beam handover (same satellite) | PHY-only | PHY-only |
//! | UE crosses a geospatial cell | C4 | C4 through the home (rare: Table 3 cell sizes) |
//!
//! [`MobilityManager`] encodes that table and returns the signaling bill
//! for each event under either design — the engine behind the mobility
//! rows of Figures 10/20 and the zero line of Figure 17c.

use sc_fiveg::conn::ConnState;
use sc_fiveg::messages::{Procedure, ProcedureKind};

/// Mobility events in a LEO mobile network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MobilityEvent {
    /// The serving satellite moved on; an incoming satellite now covers
    /// the (static) UE. Carries the UE's connection state.
    SatelliteSweep(ConnState),
    /// Beam change within one satellite.
    BeamHandover,
    /// The UE physically moved across a geospatial cell / tracking area.
    UeCellCrossing(ConnState),
}

/// The signaling bill of one mobility event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MobilityOutcome {
    /// Signaling messages exchanged.
    pub signaling_messages: u32,
    /// Session-state items migrated between infrastructure nodes.
    pub state_migrations: u32,
    /// Whether the event needs the remote home.
    pub requires_home: bool,
    /// The legacy procedure this corresponds to, if any.
    pub procedure: Option<ProcedureKind>,
}

impl MobilityOutcome {
    const NOTHING: MobilityOutcome = MobilityOutcome {
        signaling_messages: 0,
        state_migrations: 0,
        requires_home: false,
        procedure: None,
    };
}

/// Which mobility design is in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MobilityDesign {
    /// Legacy logical service areas bound to (moving) satellites.
    LegacyLogical,
    /// SpaceCore's earth-fixed geospatial service areas.
    Geospatial,
}

/// The mobility decision engine.
#[derive(Debug, Clone)]
pub struct MobilityManager {
    design: MobilityDesign,
}

impl MobilityManager {
    pub fn new(design: MobilityDesign) -> Self {
        Self { design }
    }

    pub fn spacecore() -> Self {
        Self::new(MobilityDesign::Geospatial)
    }

    pub fn legacy() -> Self {
        Self::new(MobilityDesign::LegacyLogical)
    }

    pub fn design(&self) -> MobilityDesign {
        self.design
    }

    /// The signaling bill for an event.
    pub fn handle(&self, ev: MobilityEvent) -> MobilityOutcome {
        match (self.design, ev) {
            // Beam handovers are PHY-only in both designs.
            (_, MobilityEvent::BeamHandover) => MobilityOutcome::NOTHING,

            // ---- Legacy: moving satellites drag their service areas ----
            (MobilityDesign::LegacyLogical, MobilityEvent::SatelliteSweep(ConnState::Idle)) => {
                // The tracking area moved away: C4 for a static, idle UE.
                let c4 = Procedure::build(ProcedureKind::MobilityRegistration);
                MobilityOutcome {
                    signaling_messages: c4.message_count() as u32,
                    state_migrations: c4.state_op_count() as u32,
                    requires_home: true,
                    procedure: Some(ProcedureKind::MobilityRegistration),
                }
            }
            (MobilityDesign::LegacyLogical, MobilityEvent::SatelliteSweep(ConnState::Connected)) => {
                // Handover with inter-satellite state migration (and, on
                // tracking-area change, a C4 as well; we bill the C3 here
                // and the sweep generator bills the C4 separately).
                let c3 = Procedure::build(ProcedureKind::Handover);
                MobilityOutcome {
                    signaling_messages: c3.message_count() as u32,
                    state_migrations: c3.state_op_count() as u32,
                    requires_home: false,
                    procedure: Some(ProcedureKind::Handover),
                }
            }
            (MobilityDesign::LegacyLogical, MobilityEvent::UeCellCrossing(_)) => {
                let c4 = Procedure::build(ProcedureKind::MobilityRegistration);
                MobilityOutcome {
                    signaling_messages: c4.message_count() as u32,
                    state_migrations: c4.state_op_count() as u32,
                    requires_home: true,
                    procedure: Some(ProcedureKind::MobilityRegistration),
                }
            }

            // ---- SpaceCore: service areas are earth-fixed ----
            (MobilityDesign::Geospatial, MobilityEvent::SatelliteSweep(ConnState::Idle)) => {
                // "A static UE in the idle mode does not run handovers as
                // satellites move … no state updates are needed."
                MobilityOutcome::NOTHING
            }
            (MobilityDesign::Geospatial, MobilityEvent::SatelliteSweep(ConnState::Connected)) => {
                // Local handover: replica piggybacked in the HO ack.
                MobilityOutcome {
                    signaling_messages: 3,
                    state_migrations: 0, // no infrastructure-side migration
                    requires_home: false,
                    procedure: Some(ProcedureKind::Handover),
                }
            }
            (MobilityDesign::Geospatial, MobilityEvent::UeCellCrossing(_)) => {
                // Rare: standard C4 through the home (§4.3).
                let c4 = Procedure::build(ProcedureKind::MobilityRegistration);
                MobilityOutcome {
                    signaling_messages: c4.message_count() as u32,
                    state_migrations: c4.state_op_count() as u32,
                    requires_home: true,
                    procedure: Some(ProcedureKind::MobilityRegistration),
                }
            }
        }
    }

    /// Aggregate signaling rate (msg/s) from satellite sweeps for a
    /// satellite serving `capacity` UEs with `active_fraction` of them
    /// connected, at one sweep per `transit_s`.
    pub fn sweep_rate_msgs_per_s(
        &self,
        capacity: u32,
        active_fraction: f64,
        transit_s: f64,
    ) -> f64 {
        let sweeps_per_s = capacity as f64 / transit_s;
        let active = self
            .handle(MobilityEvent::SatelliteSweep(ConnState::Connected))
            .signaling_messages as f64;
        let idle = self
            .handle(MobilityEvent::SatelliteSweep(ConnState::Idle))
            .signaling_messages as f64;
        sweeps_per_s * (active_fraction * active + (1.0 - active_fraction) * idle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spacecore_idle_sweep_is_free() {
        let m = MobilityManager::spacecore();
        let o = m.handle(MobilityEvent::SatelliteSweep(ConnState::Idle));
        assert_eq!(o, MobilityOutcome::NOTHING);
    }

    #[test]
    fn legacy_idle_sweep_costs_a_full_c4() {
        let m = MobilityManager::legacy();
        let o = m.handle(MobilityEvent::SatelliteSweep(ConnState::Idle));
        assert_eq!(o.signaling_messages, 12);
        assert!(o.requires_home);
        assert!(o.state_migrations > 5);
    }

    #[test]
    fn spacecore_active_sweep_is_cheap_and_local() {
        let sc = MobilityManager::spacecore();
        let legacy = MobilityManager::legacy();
        let a = sc.handle(MobilityEvent::SatelliteSweep(ConnState::Connected));
        let b = legacy.handle(MobilityEvent::SatelliteSweep(ConnState::Connected));
        assert!(a.signaling_messages < b.signaling_messages);
        assert_eq!(a.state_migrations, 0);
        assert!(b.state_migrations > 0);
        assert!(!a.requires_home);
    }

    #[test]
    fn beam_handover_free_everywhere() {
        for m in [MobilityManager::spacecore(), MobilityManager::legacy()] {
            assert_eq!(m.handle(MobilityEvent::BeamHandover), MobilityOutcome::NOTHING);
        }
    }

    #[test]
    fn cell_crossing_same_in_both_designs() {
        let sc = MobilityManager::spacecore();
        let legacy = MobilityManager::legacy();
        let a = sc.handle(MobilityEvent::UeCellCrossing(ConnState::Idle));
        let b = legacy.handle(MobilityEvent::UeCellCrossing(ConnState::Idle));
        assert_eq!(a, b);
        assert!(a.requires_home);
    }

    #[test]
    fn sweep_rate_ratio_matches_headline() {
        // The storm reduction from geospatial mobility: legacy bills ~12
        // messages per *every* user per transit; SpaceCore bills 3 for
        // the ~12% active users only → ≳ 30× reduction.
        let capacity = 30_000;
        let active = 0.117;
        let transit = 165.8;
        let legacy = MobilityManager::legacy().sweep_rate_msgs_per_s(capacity, active, transit);
        let sc = MobilityManager::spacecore().sweep_rate_msgs_per_s(capacity, active, transit);
        assert!(legacy / sc > 20.0, "legacy {legacy} sc {sc}");
        assert!(sc > 0.0);
    }
}
