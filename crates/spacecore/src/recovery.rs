//! Crash-recovery semantics per solution (§3.3, Fig. 13).
//!
//! The failure the paper's §3.3 demonstrates: the *serving* satellite
//! dies mid-session (decay, Fig. 13a, or destruction). What happens next
//! depends entirely on where the session state lives:
//!
//! * **SpaceCore** — the state is self-carried by the UE (encrypted,
//!   home-signed replica), so the next visible satellite re-establishes
//!   the session *locally* with the 4-message exchange of Fig. 16a. The
//!   geospatial IP address survives because it was never bound to the
//!   dead satellite.
//! * **5G NTN** — the radio context dies with the satellite, but the
//!   core state is home-anchored: the UE redoes the full home-routed
//!   session establishment (13 messages, multiple home round-trips)
//!   across the fragile ISL fabric. The IP survives *if* that long
//!   exchange completes within the service deadline.
//! * **SkyCore** — states are pre-replicated to neighbors, so the new
//!   satellite re-installs locally — but the UE's logical IP was bound
//!   to the dead satellite's in-orbit core (Fig. 21): connections break
//!   regardless of how fast re-installation is.
//! * **Baoyun / DPCM** — serving-core state is satellite-resident and
//!   gone; the UE must redo the home-routed registration *and* its IP
//!   changes (logical service areas). Sessions never survive.
//!
//! [`RecoveryPlan`] exposes these per-solution semantics for the
//! `ext_chaos` experiment, which replays the recovery exchange over the
//! chaos-injected constellation and scores session survival. For the
//! million-UE chaos soak (`ext_chaosload`), [`RecoveryCosts`] condenses
//! the plans into the per-re-establishment signaling bill and
//! [`RetryBudget`] paces the correlated re-registration storm a
//! satellite crash triggers.

use crate::solutions::SolutionKind;

/// How a solution recovers a session after its serving satellite crashes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPlan {
    /// Can the UE's IP address (and hence its transport sessions)
    /// survive at all, assuming the recovery exchange completes?
    /// False when the address was bound to the dead satellite (Fig. 21).
    pub ip_survives: bool,
    /// Recovery is served locally at the new satellite (no home
    /// round-trip on the critical path).
    pub local: bool,
    /// Signaling messages of the recovery exchange.
    pub messages: u32,
    /// Round-trips to the terrestrial home on the critical path.
    pub home_round_trips: u32,
    /// Time for the UE/network to detect the serving-satellite loss and
    /// start recovery, ms. Stateless re-establishment begins as soon as
    /// the UE syncs to the next visible satellite; stateful designs wait
    /// out radio-link-failure timers and core-side context teardown.
    pub detection_delay_ms: f64,
}

impl RecoveryPlan {
    /// The recovery semantics of `kind` (see module docs for rationale).
    pub fn for_solution(kind: SolutionKind) -> Self {
        match kind {
            SolutionKind::SpaceCore => Self {
                ip_survives: true,
                local: true,
                messages: 4, // Fig. 16a localized establishment
                home_round_trips: 0,
                detection_delay_ms: 200.0,
            },
            SolutionKind::FiveGNtn => Self {
                ip_survives: true, // home-anchored address (Fig. 21)
                local: false,
                messages: 13, // full Fig. 9b C2 re-run
                home_round_trips: 3,
                detection_delay_ms: 1_000.0,
            },
            SolutionKind::SkyCore => Self {
                ip_survives: false, // address died with the in-orbit core
                local: true,        // pre-replicated contexts
                messages: 6,
                home_round_trips: 0,
                detection_delay_ms: 1_000.0,
            },
            SolutionKind::Baoyun => Self {
                ip_survives: false,
                local: false,
                messages: 13,
                home_round_trips: 5,
                detection_delay_ms: 1_000.0,
            },
            SolutionKind::Dpcm => Self {
                ip_survives: false, // logical service areas (Fig. 21)
                local: false,
                messages: 10, // device replica shortens, home still decides
                home_round_trips: 2,
                detection_delay_ms: 600.0,
            },
        }
    }

    /// Can a session survive this crash at all? The recovery exchange
    /// still has to complete in time; this is the necessary condition.
    pub fn can_survive(&self) -> bool {
        self.ip_survives
    }
}

/// The per-re-establishment signaling bill of a serving-satellite
/// crash, both designs — [`RecoveryPlan`] condensed for hot-path
/// accounting the way `ProcedureCosts` condenses the mobility decision
/// table. A failed attempt (replacement not yet visible, burst loss)
/// bills the probe the UE wasted reaching for a satellite.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryCosts {
    /// SpaceCore stateless local re-establishment (Fig. 16a): the UE
    /// presents its self-carried replica to the replacement satellite.
    pub local_messages: u32,
    /// Legacy home-routed re-registration: the full C2 re-run.
    pub legacy_messages: u32,
    /// Messages a failed attempt wastes (one unanswered probe).
    pub probe_messages: u32,
}

impl RecoveryCosts {
    /// Derive from the per-solution recovery plans.
    pub fn paper() -> Self {
        Self {
            local_messages: RecoveryPlan::for_solution(SolutionKind::SpaceCore).messages,
            legacy_messages: RecoveryPlan::for_solution(SolutionKind::FiveGNtn).messages,
            probe_messages: 1,
        }
    }
}

/// Retry-budget policy for the correlated re-registration storm after a
/// satellite crash: a per-cell token bucket plus jittered exponential
/// backoff, expressed so that admission decisions are **stateless** —
/// a pure function of the crash instant, the UE's hash, and the attempt
/// number.
///
/// A classic first-come-first-served bucket would make admission order
/// (and therefore results) depend on how cells are split across shards
/// and threads; instead each affected UE hashes into one of `tokens`
/// refill slots, so the bucket drains at `1/token_interval_s` tokens
/// per second per cell without any shard observing its neighbors. The
/// dense per-cell bucket clocks live in `shard::CellStorm`.
#[derive(Debug, Clone, Copy)]
pub struct RetryBudget {
    /// Loss-detection delay before the first token is claimable, s.
    /// Kept at one batch window (≥ the engines' `MIN_DELAY_S`) so the
    /// paced retries honor the drain-batching contract; the plan-level
    /// 200 ms detection is quantized up to it.
    pub detect_s: f64,
    /// Bucket refill: one token per interval per cell, s.
    pub token_interval_s: f64,
    /// Bucket depth: hash-slots a cell's storm spreads over.
    pub tokens: u32,
    /// Attempts before the budget is exhausted and the session is
    /// declared lost.
    pub max_attempts: u32,
    /// First backoff step, s (grows by `backoff_factor` per retry).
    pub backoff_base_s: f64,
    pub backoff_factor: f64,
    /// Backoff ceiling, s.
    pub backoff_cap_s: f64,
}

impl RetryBudget {
    /// The defaults the chaos soak runs with: 10 admissions/s/cell
    /// spread over 128 slots, six attempts, 1.5 s → 6 s backoff.
    pub fn paper_defaults() -> Self {
        Self {
            detect_s: 1.0,
            token_interval_s: 0.1,
            tokens: 128,
            max_attempts: 6,
            backoff_base_s: 1.5,
            backoff_factor: 2.0,
            backoff_cap_s: 6.0,
        }
    }

    /// The refill slot a UE hash claims — stateless admission.
    pub fn slot(&self, hash: u64) -> u32 {
        (hash % self.tokens.max(1) as u64) as u32
    }

    /// Offset from the crash instant to the UE's first paced attempt:
    /// detection, then the claimed slot's refill time, jittered within
    /// the slot (`jitter` ∈ [0, 1)) so attempts do not align on slot
    /// boundaries.
    pub fn first_attempt_s(&self, slot: u32, jitter: f64) -> f64 {
        self.detect_s + (slot as f64 + jitter) * self.token_interval_s
    }

    /// Paced delay for a *barred* fresh admission: while a cell is
    /// overloaded the satellite broadcasts access-class barring, and
    /// new-session requests re-enter the bucket on a half-rate lane —
    /// recovery traffic keeps priority for the full token rate.
    pub fn admission_attempt_s(&self, slot: u32, jitter: f64) -> f64 {
        self.detect_s + (slot as f64 + jitter) * self.token_interval_s * 2.0
    }

    /// Jittered exponential backoff before retry `retry` (1-based):
    /// `base · factor^(retry−1)` capped, scaled by ±25% jitter.
    pub fn backoff_s(&self, retry: u32, jitter: f64) -> f64 {
        let exp = self.backoff_factor.powi(retry.saturating_sub(1).min(16) as i32);
        (self.backoff_base_s * exp).min(self.backoff_cap_s) * (0.75 + 0.5 * jitter)
    }

    /// Worst-case pacing spread: time for the bucket to admit every
    /// slot once.
    pub fn spread_s(&self) -> f64 {
        self.detect_s + self.tokens as f64 * self.token_interval_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_spacecore_recovers_locally_with_a_stable_ip() {
        let sc = RecoveryPlan::for_solution(SolutionKind::SpaceCore);
        assert!(sc.ip_survives && sc.local);
        assert_eq!(sc.home_round_trips, 0);
        for k in SolutionKind::BASELINES {
            let p = RecoveryPlan::for_solution(k);
            assert!(
                !(p.ip_survives && p.local),
                "{k:?} must not match SpaceCore's local+stable recovery"
            );
        }
    }

    #[test]
    fn survival_matches_fig21_ip_stability() {
        // A session can only survive a serving-satellite crash if the
        // address survives a serving-satellite *change* — same Fig. 21
        // property the handover experiment checks.
        for k in SolutionKind::ALL {
            assert_eq!(
                RecoveryPlan::for_solution(k).can_survive(),
                k.ip_stable_under_satellite_handover(),
                "{k:?}"
            );
        }
    }

    #[test]
    fn spacecore_recovery_is_cheapest_and_fastest_to_start() {
        let sc = RecoveryPlan::for_solution(SolutionKind::SpaceCore);
        assert_eq!(sc.messages, 4, "Fig. 16a message count");
        for k in SolutionKind::BASELINES {
            let p = RecoveryPlan::for_solution(k);
            assert!(sc.messages < p.messages, "{k:?}");
            assert!(sc.detection_delay_ms < p.detection_delay_ms, "{k:?}");
        }
    }

    #[test]
    fn recovery_costs_mirror_the_plans() {
        let c = RecoveryCosts::paper();
        assert_eq!(c.local_messages, 4, "Fig. 16a local re-establishment");
        assert_eq!(c.legacy_messages, 13, "full C2 re-run");
        assert!(c.probe_messages < c.local_messages);
    }

    #[test]
    fn retry_budget_slots_pace_and_backoff_grows() {
        let b = RetryBudget::paper_defaults();
        // Slots cover [0, tokens) and pace at one per interval.
        for h in [0u64, 1, 127, 128, 12_345_678, u64::MAX] {
            assert!(b.slot(h) < b.tokens);
        }
        assert!(b.first_attempt_s(0, 0.0) >= b.detect_s);
        let gap = b.first_attempt_s(1, 0.5) - b.first_attempt_s(0, 0.5);
        assert!((gap - b.token_interval_s).abs() < 1e-12);
        assert!(b.first_attempt_s(b.tokens - 1, 0.999) <= b.spread_s());
        // Backoff: monotone up to the cap, jitter within ±25%.
        let mut prev = 0.0;
        for retry in 1..=b.max_attempts {
            let s = b.backoff_s(retry, 0.5);
            assert!(s >= prev);
            assert!(s <= b.backoff_cap_s * 1.25 + 1e-12);
            prev = s;
        }
        assert!(b.backoff_s(1, 0.0) >= 0.75 * b.backoff_base_s);
        // Huge retry counts saturate instead of overflowing the exponent.
        assert_eq!(b.backoff_s(1_000, 0.5), b.backoff_s(17, 0.5));
    }

    #[test]
    fn home_routed_plans_pay_round_trips() {
        // sc-audit: allow(unordered, reason = "per-plan assertions are independent of iteration order")
        for k in SolutionKind::ALL {
            let p = RecoveryPlan::for_solution(k);
            if p.local {
                assert_eq!(p.home_round_trips, 0, "{k:?}");
            } else {
                assert!(p.home_round_trips >= 2, "{k:?}");
            }
        }
    }
}
