//! Crash-recovery semantics per solution (§3.3, Fig. 13).
//!
//! The failure the paper's §3.3 demonstrates: the *serving* satellite
//! dies mid-session (decay, Fig. 13a, or destruction). What happens next
//! depends entirely on where the session state lives:
//!
//! * **SpaceCore** — the state is self-carried by the UE (encrypted,
//!   home-signed replica), so the next visible satellite re-establishes
//!   the session *locally* with the 4-message exchange of Fig. 16a. The
//!   geospatial IP address survives because it was never bound to the
//!   dead satellite.
//! * **5G NTN** — the radio context dies with the satellite, but the
//!   core state is home-anchored: the UE redoes the full home-routed
//!   session establishment (13 messages, multiple home round-trips)
//!   across the fragile ISL fabric. The IP survives *if* that long
//!   exchange completes within the service deadline.
//! * **SkyCore** — states are pre-replicated to neighbors, so the new
//!   satellite re-installs locally — but the UE's logical IP was bound
//!   to the dead satellite's in-orbit core (Fig. 21): connections break
//!   regardless of how fast re-installation is.
//! * **Baoyun / DPCM** — serving-core state is satellite-resident and
//!   gone; the UE must redo the home-routed registration *and* its IP
//!   changes (logical service areas). Sessions never survive.
//!
//! [`RecoveryPlan`] exposes these per-solution semantics for the
//! `ext_chaos` experiment, which replays the recovery exchange over the
//! chaos-injected constellation and scores session survival.

use crate::solutions::SolutionKind;

/// How a solution recovers a session after its serving satellite crashes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPlan {
    /// Can the UE's IP address (and hence its transport sessions)
    /// survive at all, assuming the recovery exchange completes?
    /// False when the address was bound to the dead satellite (Fig. 21).
    pub ip_survives: bool,
    /// Recovery is served locally at the new satellite (no home
    /// round-trip on the critical path).
    pub local: bool,
    /// Signaling messages of the recovery exchange.
    pub messages: u32,
    /// Round-trips to the terrestrial home on the critical path.
    pub home_round_trips: u32,
    /// Time for the UE/network to detect the serving-satellite loss and
    /// start recovery, ms. Stateless re-establishment begins as soon as
    /// the UE syncs to the next visible satellite; stateful designs wait
    /// out radio-link-failure timers and core-side context teardown.
    pub detection_delay_ms: f64,
}

impl RecoveryPlan {
    /// The recovery semantics of `kind` (see module docs for rationale).
    pub fn for_solution(kind: SolutionKind) -> Self {
        match kind {
            SolutionKind::SpaceCore => Self {
                ip_survives: true,
                local: true,
                messages: 4, // Fig. 16a localized establishment
                home_round_trips: 0,
                detection_delay_ms: 200.0,
            },
            SolutionKind::FiveGNtn => Self {
                ip_survives: true, // home-anchored address (Fig. 21)
                local: false,
                messages: 13, // full Fig. 9b C2 re-run
                home_round_trips: 3,
                detection_delay_ms: 1_000.0,
            },
            SolutionKind::SkyCore => Self {
                ip_survives: false, // address died with the in-orbit core
                local: true,        // pre-replicated contexts
                messages: 6,
                home_round_trips: 0,
                detection_delay_ms: 1_000.0,
            },
            SolutionKind::Baoyun => Self {
                ip_survives: false,
                local: false,
                messages: 13,
                home_round_trips: 5,
                detection_delay_ms: 1_000.0,
            },
            SolutionKind::Dpcm => Self {
                ip_survives: false, // logical service areas (Fig. 21)
                local: false,
                messages: 10, // device replica shortens, home still decides
                home_round_trips: 2,
                detection_delay_ms: 600.0,
            },
        }
    }

    /// Can a session survive this crash at all? The recovery exchange
    /// still has to complete in time; this is the necessary condition.
    pub fn can_survive(&self) -> bool {
        self.ip_survives
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_spacecore_recovers_locally_with_a_stable_ip() {
        let sc = RecoveryPlan::for_solution(SolutionKind::SpaceCore);
        assert!(sc.ip_survives && sc.local);
        assert_eq!(sc.home_round_trips, 0);
        for k in SolutionKind::BASELINES {
            let p = RecoveryPlan::for_solution(k);
            assert!(
                !(p.ip_survives && p.local),
                "{k:?} must not match SpaceCore's local+stable recovery"
            );
        }
    }

    #[test]
    fn survival_matches_fig21_ip_stability() {
        // A session can only survive a serving-satellite crash if the
        // address survives a serving-satellite *change* — same Fig. 21
        // property the handover experiment checks.
        for k in SolutionKind::ALL {
            assert_eq!(
                RecoveryPlan::for_solution(k).can_survive(),
                k.ip_stable_under_satellite_handover(),
                "{k:?}"
            );
        }
    }

    #[test]
    fn spacecore_recovery_is_cheapest_and_fastest_to_start() {
        let sc = RecoveryPlan::for_solution(SolutionKind::SpaceCore);
        assert_eq!(sc.messages, 4, "Fig. 16a message count");
        for k in SolutionKind::BASELINES {
            let p = RecoveryPlan::for_solution(k);
            assert!(sc.messages < p.messages, "{k:?}");
            assert!(sc.detection_delay_ms < p.detection_delay_ms, "{k:?}");
        }
    }

    #[test]
    fn home_routed_plans_pay_round_trips() {
        // sc-audit: allow(unordered, reason = "per-plan assertions are independent of iteration order")
        for k in SolutionKind::ALL {
            let p = RecoveryPlan::for_solution(k);
            if p.local {
                assert_eq!(p.home_round_trips, 0, "{k:?}");
            } else {
                assert!(p.home_round_trips >= 2, "{k:?}");
            }
        }
    }
}
