//! Device-as-the-repository: the UE-side state replica (§4.1 Step 3).
//!
//! After a successful initial registration the UE holds (a) its plaintext
//! session state — it always did, that is how 5G works — and (b) the
//! home-encrypted, home-signed replica (`msg_UE` in Algorithm 2) that it
//! piggybacks to serving satellites so they can serve it without any
//! home round-trip. The UE cannot usefully tamper with (b): it is signed
//! by the home and satellites verify the envelope after decryption.

use sc_crypto::dh::StationToStation;
use sc_crypto::statecrypt::{EncryptedUeState, UeCredentials};
use sc_fiveg::conn::UeConnection;
use sc_fiveg::ids::Supi;
use sc_fiveg::state::SessionState;
use sc_geo::addr::GeoAddress;
use sc_geo::sphere::GeoPoint;

/// A registered UE with its local state repository.
#[derive(Debug, Clone)]
pub struct UeDevice {
    /// Permanent subscriber identity.
    pub supi: Supi,
    /// Current terrestrial position.
    pub position: GeoPoint,
    /// Geospatial address allocated by the home (Fig. 15c).
    pub address: GeoAddress,
    /// Plaintext session state (the UE's own working copy).
    pub session: SessionState,
    /// The encrypted, signed replica delegated by the home.
    pub replica: EncryptedUeState,
    /// SIM credentials (ABE key bound to this UE's attributes).
    pub credentials: UeCredentials,
    /// RRC connection lifecycle.
    pub conn: UeConnection,
    /// Whether this UE runs the SpaceCore local-state proxy. Legacy UEs
    /// force the serving satellite onto the home-routed path (§5 "If
    /// unsuccessful (e.g. no UE-side support …) it rolls back").
    pub supports_spacecore: bool,
    /// Monotonic counter mixed into each session's ephemeral DH secret.
    dh_counter: u64,
}

impl UeDevice {
    /// Assemble a device (called by the home network at registration).
    pub fn new(
        supi: Supi,
        position: GeoPoint,
        address: GeoAddress,
        session: SessionState,
        replica: EncryptedUeState,
        credentials: UeCredentials,
    ) -> Self {
        Self {
            supi,
            position,
            address,
            session,
            replica,
            credentials,
            conn: UeConnection::with_default_release(),
            supports_spacecore: true,
            dh_counter: 0,
        }
    }

    /// Start a fresh station-to-station exchange for a session
    /// establishment (Algorithm 2 line 10). Each call uses a new
    /// ephemeral secret, so every session gets a fresh key.
    pub fn begin_key_exchange(&mut self, params: sc_crypto::dh::DhParams) -> StationToStation {
        self.dh_counter += 1;
        // Ephemeral secret: deterministic per (UE, counter) for replayable
        // experiments, unique per exchange.
        let secret = sc_crypto::field::keyed_hash(
            self.supi.0 ^ EPHEMERAL_SALT,
            &self.dh_counter.to_le_bytes(),
        );
        StationToStation::new(params, secret)
    }

    /// The piggyback payload a UE attaches to its RRC setup-complete /
    /// handover-ack messages: the encrypted replica (Fig. 16a).
    pub fn piggyback(&self) -> &EncryptedUeState {
        &self.replica
    }

    /// Install an updated replica pushed by the home (§4.4
    /// home-controlled state updates). Rejects version rollback.
    pub fn install_update(
        &mut self,
        new_session: SessionState,
        new_replica: EncryptedUeState,
    ) -> Result<(), StaleUpdate> {
        if new_replica.version <= self.replica.version {
            return Err(StaleUpdate {
                current: self.replica.version,
                offered: new_replica.version,
            });
        }
        self.session = new_session;
        self.replica = new_replica;
        Ok(())
    }

    /// Move the UE; returns `true` if it crossed into a new geospatial
    /// cell (which requires a home-routed mobility registration, §4.3).
    pub fn move_to(&mut self, grid: &sc_geo::cells::CellGrid, new_position: GeoPoint) -> bool {
        let old_cell = grid.cell_of_point(&self.position);
        let new_cell = grid.cell_of_point(&new_position);
        self.position = new_position;
        old_cell != new_cell
    }
}

/// Rejected state update (version rollback attempt).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleUpdate {
    pub current: u32,
    pub offered: u32,
}

impl std::fmt::Display for StaleUpdate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stale state update: offered v{} but device holds v{}",
            self.offered, self.current
        )
    }
}

impl std::error::Error for StaleUpdate {}

/// Fixed salt for the ephemeral-secret derivation.
const EPHEMERAL_SALT: u64 = 0x0005_FACE_C0DE_0000;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::home::{HomeConfig, HomeNetwork};

    fn registered_ue() -> (HomeNetwork, UeDevice) {
        let home = HomeNetwork::new(HomeConfig::default());
        let ue = home.register_ue(42, &GeoPoint::from_degrees(40.0, 116.0));
        (home, ue)
    }

    #[test]
    fn fresh_key_per_exchange() {
        let (home, mut ue) = registered_ue();
        let a = ue.begin_key_exchange(home.dh_params());
        let b = ue.begin_key_exchange(home.dh_params());
        assert_ne!(a.public_value(), b.public_value());
    }

    #[test]
    fn stale_update_rejected() {
        let (home, mut ue) = registered_ue();
        let v = ue.replica.version;
        let (s2, r2) = home.refresh_state(&ue, 1000.0);
        assert!(r2.version > v);
        ue.install_update(s2.clone(), r2.clone()).unwrap();
        // Replaying the same version is rejected.
        assert!(ue.install_update(s2, r2).is_err());
    }

    #[test]
    fn cell_crossing_detection() {
        let (home, mut ue) = registered_ue();
        let grid = home.cell_grid();
        // A few km movement stays in-cell (Table 3: cells are ≥ 10⁵ km²).
        assert!(!ue.move_to(&grid, GeoPoint::from_degrees(40.05, 116.05)));
        // A continental hop crosses cells.
        assert!(ue.move_to(&grid, GeoPoint::from_degrees(-30.0, 20.0)));
    }

    #[test]
    fn piggyback_is_the_replica() {
        let (_, ue) = registered_ue();
        assert_eq!(ue.piggyback(), &ue.replica);
    }
}
