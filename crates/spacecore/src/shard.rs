//! Cell-keyed shard substrate for the sustained-load engine.
//!
//! The paper's natural shard key is the **geospatial cell**: all
//! serving state for a UE lives in the cell the UE occupies, never in
//! the satellite passing overhead (§4.1). This module gives the
//! million-UE engine (`sc-emu`'s `ext_mload`) that model as data
//! structures:
//!
//! * [`ShardMap`] — partitions the row-major cell index space of a
//!   [`sc_geo::cells::CellGrid`] into contiguous, balanced shards, so
//!   each shard owns a band of orbital-plane columns and every cell has
//!   exactly one owner.
//! * [`CellLedger`] — per-shard active-session accounting, **dense by
//!   cell index** (a `Vec<u32>`, no per-UE keyed collections — the
//!   whole point of the stateless design is that satellites and shards
//!   hold no UE-keyed maps). It also integrates busy-time over a
//!   measurement window, so mean concurrent sessions come out as a
//!   shard-additive quantity (a sum of integrals), invariant to how
//!   many shards the cells are split across.
//! * [`ProcedureCosts`] / [`ShardStats`] — the signaling bill of the
//!   churn events, derived once from [`crate::mobility::MobilityManager`]
//!   and the Figure 9 procedure message counts, and tallied per shard
//!   in plain additive counters.
//!
//! Everything here is `u64`/`f64` sums over disjoint cell ranges:
//! merging shard results in any grouping reproduces the single-shard
//! numbers exactly, which is what lets `ext_mload` assert byte-identical
//! output across `SC_EMU_THREADS` and shard counts.

use crate::mobility::{MobilityEvent, MobilityManager};
use crate::recovery::RecoveryCosts;
use sc_fiveg::conn::ConnState;
use sc_fiveg::messages::{Procedure, ProcedureKind};
use sc_geo::cells::{CellGrid, CellId};

/// Row-major index of a cell in its grid: `col * slots + row`, matching
/// [`CellGrid::iter_cells`] order.
pub fn cell_index(grid: &CellGrid, id: CellId) -> usize {
    id.col as usize * grid.slots() as usize + id.row as usize
}

/// Inverse of [`cell_index`]: the [`CellId`] at a row-major index.
pub fn cell_at(grid: &CellGrid, index: usize) -> CellId {
    let slots = grid.slots() as usize;
    CellId::new((index / slots) as u16, (index % slots) as u16)
}

/// A contiguous, balanced partition of `cells` row-major cell indices
/// into `shards` shards. Shard `k` owns `[k·cells/shards ceil-rounded …)`
/// — every shard's size is within one cell of every other's, and shards
/// follow the grid's column order, so a shard is a band of orbital
/// planes.
#[derive(Debug, Clone, Copy)]
pub struct ShardMap {
    cells: usize,
    shards: usize,
}

impl ShardMap {
    /// Partition `cells` into at most `shards` shards (clamped to
    /// `[1, cells]` so no shard is ever empty).
    ///
    /// # Panics
    /// Panics if `cells` is zero.
    pub fn new(cells: usize, shards: usize) -> Self {
        assert!(cells > 0, "cannot shard an empty grid");
        Self {
            cells,
            shards: shards.clamp(1, cells),
        }
    }

    /// Number of shards after clamping.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of cells partitioned.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Owner shard of a row-major cell index.
    ///
    /// # Panics
    /// Panics if `cell` is out of range.
    pub fn shard_of(&self, cell: usize) -> usize {
        assert!(cell < self.cells, "cell {cell} out of range {}", self.cells);
        cell * self.shards / self.cells
    }

    /// The cell-index range shard `k` owns.
    pub fn range(&self, shard: usize) -> std::ops::Range<usize> {
        let start = (shard * self.cells).div_ceil(self.shards);
        let end = ((shard + 1) * self.cells).div_ceil(self.shards);
        start..end
    }
}

/// Active-session ledger over a dense cell-index space, with busy-time
/// integration over a `[window_start, window_end]` measurement window.
///
/// `connect`/`release`/`move_session` advance a running integral of
/// `active_total · dt`, clamped to the window — so
/// `busy_integral / (window_end − window_start)` is the exact
/// time-averaged concurrent session count over the measured interval,
/// regardless of how calls interleave with the window edges.
///
/// The integral accumulates in **integer microsecond ticks** (`u64`),
/// quantizing *timestamps* rather than durations: a constant-count
/// interval split at any intermediate event contributes
/// `n·(tick(b)−tick(m)) + n·(tick(m)−tick(a)) = n·(tick(b)−tick(a))`
/// exactly. Float accumulation would pick up last-ulp differences from
/// the grouping of events into shards; integer ticks make the summed
/// integral bit-identical under any shard layout.
#[derive(Debug, Clone)]
pub struct CellLedger {
    active: Vec<u32>,
    total_active: u64,
    start_us: u64,
    end_us: u64,
    last_us: u64,
    busy_us: u64,
}

/// Microsecond tick of a simulation timestamp.
fn tick_us(t: f64) -> u64 {
    (t * 1e6).round() as u64
}

impl CellLedger {
    pub fn new(cells: usize, window_start: f64, window_end: f64) -> Self {
        assert!(window_end >= window_start && window_start >= 0.0);
        Self {
            active: vec![0; cells],
            total_active: 0,
            start_us: tick_us(window_start),
            end_us: tick_us(window_end),
            last_us: 0,
            busy_us: 0,
        }
    }

    /// Accumulate `active_total · dt` over the part of
    /// `[last_t, now]` inside the window.
    fn advance(&mut self, now_us: u64) {
        let a = self.last_us.max(self.start_us);
        let b = now_us.min(self.end_us);
        if b > a {
            self.busy_us += self.total_active * (b - a);
        }
        self.last_us = self.last_us.max(now_us);
    }

    /// A session came up in `cell` at time `now`.
    pub fn connect(&mut self, cell: usize, now: f64) {
        self.advance(tick_us(now));
        self.active[cell] += 1;
        self.total_active += 1;
    }

    /// A session in `cell` ended at time `now`.
    pub fn release(&mut self, cell: usize, now: f64) {
        self.advance(tick_us(now));
        debug_assert!(self.active[cell] > 0, "release without a session");
        self.active[cell] -= 1;
        self.total_active -= 1;
    }

    /// An active session's UE crossed from cell `from` to cell `to`:
    /// the state record moves between cells, the total is unchanged (no
    /// integral advance needed).
    pub fn move_session(&mut self, from: usize, to: usize) {
        debug_assert!(self.active[from] > 0, "move without a session");
        self.active[from] -= 1;
        self.active[to] += 1;
    }

    /// Close the integral at the window end.
    pub fn finish(&mut self) {
        self.advance(self.end_us);
    }

    /// Sessions currently active across all cells.
    pub fn active_total(&self) -> u64 {
        self.total_active
    }

    /// `∫ active_total dt` over the window in microsecond ticks — the
    /// exact, shard-additive form. Sum these across shards *before*
    /// converting to seconds.
    pub fn busy_us(&self) -> u64 {
        self.busy_us
    }

    /// `∫ active_total dt` over the window, seconds (call
    /// [`Self::finish`] first for the full-window value).
    pub fn busy_integral(&self) -> f64 {
        self.busy_us as f64 * 1e-6
    }

    /// Per-cell active counts, dense by cell index.
    pub fn cell_active(&self) -> &[u32] {
        &self.active
    }
}

/// The per-event signaling bill of the churn model, both designs,
/// resolved once from the mobility decision table
/// ([`MobilityManager::handle`]) and the Figure 9 procedure builders so
/// hot-path accounting never rebuilds a [`Procedure`].
#[derive(Debug, Clone, Copy)]
pub struct ProcedureCosts {
    /// SpaceCore localized establishment: the RRC piggyback path of
    /// `satellite::SpaceCoreSatellite::try_local_establishment` — 4
    /// messages, no home round-trip.
    pub local_establishment: u32,
    /// Legacy C2 home-routed establishment.
    pub legacy_establishment: u32,
    /// SpaceCore active-UE satellite sweep: local handover via the UE
    /// replica (3 messages).
    pub local_handover: u32,
    /// Legacy active-UE satellite sweep: full C3 handover.
    pub legacy_handover: u32,
    /// Legacy idle-UE satellite sweep: C4 mobility registration
    /// (SpaceCore's is zero — asserted at construction).
    pub legacy_idle_sweep: u32,
    /// UE crossing a geospatial cell: C4 in both designs (§4.3).
    pub cell_crossing: u32,
    /// RRC release, both designs.
    pub release: u32,
}

impl ProcedureCosts {
    /// Build from the paper's decision table.
    pub fn paper() -> Self {
        let sc = MobilityManager::spacecore();
        let legacy = MobilityManager::legacy();
        let sc_idle = sc.handle(MobilityEvent::SatelliteSweep(ConnState::Idle));
        debug_assert_eq!(
            sc_idle.signaling_messages, 0,
            "geospatial idle sweeps must be free"
        );
        let c2 = Procedure::build(ProcedureKind::SessionEstablishment);
        Self {
            local_establishment: 4,
            legacy_establishment: c2.message_count() as u32,
            local_handover: sc
                .handle(MobilityEvent::SatelliteSweep(ConnState::Connected))
                .signaling_messages,
            legacy_handover: legacy
                .handle(MobilityEvent::SatelliteSweep(ConnState::Connected))
                .signaling_messages,
            legacy_idle_sweep: legacy
                .handle(MobilityEvent::SatelliteSweep(ConnState::Idle))
                .signaling_messages,
            cell_crossing: sc
                .handle(MobilityEvent::UeCellCrossing(ConnState::Idle))
                .signaling_messages,
            release: 2,
        }
    }
}

/// Additive churn tallies for one shard: event counts plus the running
/// signaling bill under both designs. Merging is plain `+=`, so any
/// shard grouping sums to the same totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    pub arrivals: u64,
    /// Arrivals that found the session already up (no establishment).
    pub piggybacked: u64,
    pub establishments: u64,
    pub releases: u64,
    /// Active-UE satellite sweeps (local handover under SpaceCore).
    pub local_handovers: u64,
    /// Idle-UE satellite sweeps (free under SpaceCore, C4 under legacy).
    pub idle_sweeps: u64,
    pub cell_crossings: u64,
    /// Signaling messages billed to the SpaceCore design.
    pub spacecore_msgs: u64,
    /// Signaling messages billed to the legacy stateful design.
    pub legacy_msgs: u64,
}

impl ShardStats {
    /// Merge another shard's tallies into this one.
    pub fn absorb(&mut self, o: &ShardStats) {
        self.arrivals += o.arrivals;
        self.piggybacked += o.piggybacked;
        self.establishments += o.establishments;
        self.releases += o.releases;
        self.local_handovers += o.local_handovers;
        self.idle_sweeps += o.idle_sweeps;
        self.cell_crossings += o.cell_crossings;
        self.spacecore_msgs += o.spacecore_msgs;
        self.legacy_msgs += o.legacy_msgs;
    }

    /// Bill a session arrival; returns the SpaceCore-side message count
    /// (zero when the session was already up and the data rides the
    /// existing bearer).
    pub fn bill_arrival(&mut self, costs: &ProcedureCosts, connected: bool) -> u32 {
        self.arrivals += 1;
        if connected {
            self.piggybacked += 1;
            0
        } else {
            self.establishments += 1;
            self.spacecore_msgs += costs.local_establishment as u64;
            self.legacy_msgs += costs.legacy_establishment as u64;
            costs.local_establishment
        }
    }

    /// Bill an RRC release; returns the SpaceCore-side message count.
    pub fn bill_release(&mut self, costs: &ProcedureCosts) -> u32 {
        self.releases += 1;
        self.spacecore_msgs += costs.release as u64;
        self.legacy_msgs += costs.release as u64;
        costs.release
    }

    /// Bill a satellite sweep past a UE; returns the SpaceCore-side
    /// message count (zero for idle UEs — earth-fixed tracking areas).
    pub fn bill_sweep(&mut self, costs: &ProcedureCosts, connected: bool) -> u32 {
        if connected {
            self.local_handovers += 1;
            self.spacecore_msgs += costs.local_handover as u64;
            self.legacy_msgs += costs.legacy_handover as u64;
            costs.local_handover
        } else {
            self.idle_sweeps += 1;
            self.legacy_msgs += costs.legacy_idle_sweep as u64;
            0
        }
    }

    /// Bill a UE crossing a geospatial cell; returns the SpaceCore-side
    /// message count (C4 in both designs).
    pub fn bill_crossing(&mut self, costs: &ProcedureCosts) -> u32 {
        self.cell_crossings += 1;
        self.spacecore_msgs += costs.cell_crossing as u64;
        self.legacy_msgs += costs.cell_crossing as u64;
        costs.cell_crossing
    }
}

/// Dense per-cell storm state for chaos injection: the retry-budget
/// bucket clock and the overload/admission-control window, both **by
/// cell index** (`Vec<u64>` of µs ticks — no per-UE keyed collections,
/// same statelessness rule `CellLedger` obeys).
///
/// When a serving satellite crashes, every cell in its footprint opens
/// a *storm*: `storm_start_us` anchors the cell's token-bucket refill
/// clock (retries are paced from the crash instant, see
/// `recovery::RetryBudget`), and `overload_until_us` marks the window
/// during which the replacement satellite sheds or defers low-priority
/// signaling. Both are derived purely from the failure timeline, so
/// every shard — under any shard layout — computes identical windows.
#[derive(Debug, Clone)]
pub struct CellStorm {
    storm_start_us: Vec<u64>,
    overload_until_us: Vec<u64>,
}

impl CellStorm {
    /// Quiet state over `cells` cells: no storms, no overload.
    pub fn new(cells: usize) -> Self {
        Self {
            storm_start_us: vec![0; cells],
            overload_until_us: vec![0; cells],
        }
    }

    /// Open a storm over a contiguous cell range (a crashed satellite's
    /// footprint): anchor the bucket clock at the crash tick and extend
    /// the overload window (overlapping storms keep the later close).
    pub fn open(&mut self, cells: std::ops::Range<usize>, start_us: u64, until_us: u64) {
        for c in cells {
            self.storm_start_us[c] = start_us;
            self.overload_until_us[c] = self.overload_until_us[c].max(until_us);
        }
    }

    /// The cell's current bucket-clock anchor (µs tick of the most
    /// recent crash affecting it; 0 = never stormed).
    pub fn storm_start_us(&self, cell: usize) -> u64 {
        self.storm_start_us[cell]
    }

    /// Is the cell's serving satellite inside an overload window at
    /// `now_us`?
    pub fn overloaded(&self, cell: usize, now_us: u64) -> bool {
        now_us < self.overload_until_us[cell]
    }

    /// Cells currently inside an overload window.
    pub fn overloaded_cells(&self, now_us: u64) -> usize {
        self.overload_until_us.iter().filter(|&&u| now_us < u).count()
    }
}

/// Additive robustness tallies for one shard of the chaos soak:
/// drop/re-establishment counts, the overload-shedding ledger, and the
/// recovery signaling bill under both designs. Merging is plain `+=`,
/// like [`ShardStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Sessions dropped by satellite crashes.
    pub dropped: u64,
    /// Re-establishment attempts (paced first tries plus retries).
    pub reattach_attempts: u64,
    /// Attempts that failed (satellite still down, link down, burst loss).
    pub reattach_failures: u64,
    /// Sessions successfully re-established locally.
    pub reattached: u64,
    /// Sessions that exhausted the retry budget and were declared lost.
    pub budget_exhausted: u64,
    /// Connected-UE sweeps whose handover signaling was deferred by the
    /// overload gate.
    pub deferred_handovers: u64,
    /// RRC releases deferred by the overload gate.
    pub deferred_releases: u64,
    /// Cell-crossing C4 updates shed (dropped outright) by the gate.
    pub shed_crossings: u64,
    /// Fresh establishments deferred because the serving satellite was
    /// down at arrival.
    pub deferred_establishments: u64,
    /// Attempts killed by a loss-burst window.
    pub burst_losses: u64,
    /// Recovery signaling billed to the SpaceCore design.
    pub spacecore_msgs: u64,
    /// Recovery signaling billed to the legacy stateful design.
    pub legacy_msgs: u64,
}

impl ChaosStats {
    /// Merge another shard's tallies into this one.
    pub fn absorb(&mut self, o: &ChaosStats) {
        self.dropped += o.dropped;
        self.reattach_attempts += o.reattach_attempts;
        self.reattach_failures += o.reattach_failures;
        self.reattached += o.reattached;
        self.budget_exhausted += o.budget_exhausted;
        self.deferred_handovers += o.deferred_handovers;
        self.deferred_releases += o.deferred_releases;
        self.shed_crossings += o.shed_crossings;
        self.deferred_establishments += o.deferred_establishments;
        self.burst_losses += o.burst_losses;
        self.spacecore_msgs += o.spacecore_msgs;
        self.legacy_msgs += o.legacy_msgs;
    }

    /// Bill a failed re-establishment attempt (one wasted probe each
    /// design); returns the SpaceCore-side message count.
    pub fn bill_attempt_failure(&mut self, costs: &RecoveryCosts) -> u32 {
        self.reattach_attempts += 1;
        self.reattach_failures += 1;
        self.spacecore_msgs += costs.probe_messages as u64;
        self.legacy_msgs += costs.probe_messages as u64;
        costs.probe_messages
    }

    /// Bill a successful local re-establishment (4 messages SpaceCore,
    /// the 13-message home-routed re-registration legacy); returns the
    /// SpaceCore-side message count.
    pub fn bill_reattach(&mut self, costs: &RecoveryCosts) -> u32 {
        self.reattach_attempts += 1;
        self.reattached += 1;
        self.spacecore_msgs += costs.local_messages as u64;
        self.legacy_msgs += costs.legacy_messages as u64;
        costs.local_messages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_map_covers_every_cell_contiguously() {
        for (cells, shards) in [(1584, 64), (1584, 7), (66, 8), (10, 10), (5, 64), (1, 1)] {
            let m = ShardMap::new(cells, shards);
            assert!(m.shards() >= 1 && m.shards() <= cells);
            let mut owner_by_range = vec![usize::MAX; cells];
            for s in 0..m.shards() {
                for c in m.range(s) {
                    assert_eq!(owner_by_range[c], usize::MAX, "cell {c} owned twice");
                    owner_by_range[c] = s;
                }
            }
            for (c, &owner) in owner_by_range.iter().enumerate() {
                assert_eq!(owner, m.shard_of(c), "cells={cells} shards={shards} cell={c}");
            }
        }
    }

    #[test]
    fn cell_index_roundtrips_in_iter_order() {
        let grid = CellGrid::new(53f64.to_radians(), 72, 22);
        for (i, id) in grid.iter_cells().enumerate() {
            assert_eq!(cell_index(&grid, id), i);
            assert_eq!(cell_at(&grid, i), id);
        }
    }

    #[test]
    fn shard_map_is_balanced_within_one_cell() {
        let m = ShardMap::new(1584, 64);
        let sizes: Vec<usize> = (0..m.shards()).map(|s| m.range(s).len()).collect();
        let (min, max) = (sizes.iter().min().copied(), sizes.iter().max().copied());
        assert!(max.zip(min).is_some_and(|(hi, lo)| hi - lo <= 1), "{sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 1584);
    }

    #[test]
    fn ledger_busy_integral_clamps_to_window() {
        // Window [10, 20]; one session from t=5 to t=15, another from
        // t=12 to t=30 → integral = 1·(15−10) + 1·(20−12) = 13.
        let mut l = CellLedger::new(4, 10.0, 20.0);
        l.connect(0, 5.0);
        l.connect(1, 12.0);
        l.release(0, 15.0);
        l.finish();
        assert!((l.busy_integral() - 13.0).abs() < 1e-9, "{}", l.busy_integral());
        assert_eq!(l.active_total(), 1);
        assert_eq!(l.cell_active(), &[0, 1, 0, 0]);
    }

    #[test]
    fn ledger_move_session_keeps_totals() {
        let mut l = CellLedger::new(3, 0.0, 10.0);
        l.connect(0, 1.0);
        l.move_session(0, 2);
        assert_eq!(l.active_total(), 1);
        assert_eq!(l.cell_active(), &[0, 0, 1]);
        l.release(2, 4.0);
        l.finish();
        assert!((l.busy_integral() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn costs_follow_the_decision_table() {
        let c = ProcedureCosts::paper();
        assert_eq!(c.local_establishment, 4);
        assert_eq!(c.legacy_establishment, 13);
        assert_eq!(c.local_handover, 3);
        assert!(c.legacy_handover > c.local_handover);
        assert_eq!(c.legacy_idle_sweep, 12);
        assert_eq!(c.cell_crossing, 12);
    }

    #[test]
    fn stats_absorb_matches_single_stream() {
        let costs = ProcedureCosts::paper();
        let mut whole = ShardStats::default();
        let mut a = ShardStats::default();
        let mut b = ShardStats::default();
        for i in 0..10u32 {
            let connected = i % 3 == 0;
            whole.bill_arrival(&costs, connected);
            whole.bill_sweep(&costs, connected);
            let part = if i % 2 == 0 { &mut a } else { &mut b };
            part.bill_arrival(&costs, connected);
            part.bill_sweep(&costs, connected);
        }
        whole.bill_release(&costs);
        whole.bill_crossing(&costs);
        a.bill_release(&costs);
        b.bill_crossing(&costs);
        a.absorb(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn cell_storm_windows_merge_by_latest_close() {
        let mut s = CellStorm::new(10);
        assert!(!s.overloaded(3, 0));
        assert_eq!(s.overloaded_cells(0), 0);
        s.open(2..5, 1_000_000, 5_000_000);
        assert_eq!(s.storm_start_us(3), 1_000_000);
        assert!(s.overloaded(3, 4_999_999) && !s.overloaded(3, 5_000_000));
        assert!(!s.overloaded(5, 2_000_000), "outside the footprint");
        // A second overlapping storm re-anchors the clock but never
        // shortens the overload window.
        s.open(3..6, 2_000_000, 4_000_000);
        assert_eq!(s.storm_start_us(3), 2_000_000);
        assert!(s.overloaded(3, 4_500_000), "earlier window still open");
        assert!(s.overloaded(5, 3_999_999));
        assert_eq!(s.overloaded_cells(3_000_000), 4);
    }

    #[test]
    fn chaos_stats_absorb_matches_single_stream() {
        let costs = RecoveryCosts::paper();
        let mut whole = ChaosStats::default();
        let mut a = ChaosStats::default();
        let mut b = ChaosStats::default();
        for i in 0..9u32 {
            let part = if i % 2 == 0 { &mut a } else { &mut b };
            if i % 3 == 0 {
                whole.bill_attempt_failure(&costs);
                part.bill_attempt_failure(&costs);
            } else {
                whole.bill_reattach(&costs);
                part.bill_reattach(&costs);
            }
        }
        whole.dropped += 4;
        a.dropped += 4;
        a.absorb(&b);
        assert_eq!(a, whole);
        assert_eq!(whole.reattach_attempts, whole.reattached + whole.reattach_failures);
        // The stateless recovery bill stays far below the home-routed one.
        assert!(whole.legacy_msgs > 2 * whole.spacecore_msgs);
    }

    #[test]
    fn spacecore_bill_is_far_below_legacy() {
        // The headline: under the paper's churn mix the idle-sweep C4s
        // dominate the legacy bill and vanish under SpaceCore.
        let costs = ProcedureCosts::paper();
        let mut s = ShardStats::default();
        for i in 0..1000u32 {
            s.bill_sweep(&costs, i % 9 == 0); // ~11% active
        }
        assert!(s.legacy_msgs > 5 * s.spacecore_msgs);
    }
}
