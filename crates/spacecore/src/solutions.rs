//! The five evaluated systems (§6.1): SpaceCore and its four baselines.
//!
//! * **5G NTN** — the legacy baseline: satellites are regenerative radio
//!   only (Fig. 6a); every core interaction crosses to the ground.
//! * **SkyCore** — proactive state replication: *all* users' security
//!   contexts and policies are pre-stored on the satellite and
//!   synchronized between satellites by broadcast (originally for UAVs).
//! * **Baoyun** — the first real 5G core in LEO (Fig. 6c): AMF + SMF +
//!   UPF on the satellite, AUSF/UDM/PCF at the home.
//! * **DPCM** — device-side state replicas accelerate the legacy
//!   procedures, but service areas stay logical (satellite-bound).
//! * **SpaceCore** — this paper.
//!
//! Every quantity the evaluation figures need is exposed per solution:
//! per-satellite and per-ground-station signaling rates (Fig. 20,
//! Table 4), signaling latency and satellite CPU vs. load (Fig. 17),
//! state leakage under hijack and man-in-the-middle (Fig. 19), and IP
//! stability under satellite handover (Fig. 21).
//!
//! ## Calibration notes (DESIGN.md §3)
//!
//! Message counts come from the Figure 9 step tables (`sc-fiveg`);
//! multi-hop ISL relay amplification and the lower-layer radio factor
//! come from the constellation geometry and the Table 2 captures. The
//! low-load latency intercepts are calibrated to the prototype numbers
//! the paper reports in §6.2 ("reduces 1,008 ms (7.33×) … compared to
//! the legacy 5G NTN, Baoyun, DPCM, and SkyCore").

use sc_dataset::workload::WorkloadParams;
use sc_fiveg::cpu::{HardwareProfile, NfCostTable};
use sc_fiveg::messages::{Procedure, ProcedureKind};
use sc_fiveg::nf::SplitOption;
use sc_orbit::ConstellationConfig;

/// Which solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolutionKind {
    SpaceCore,
    FiveGNtn,
    SkyCore,
    Baoyun,
    Dpcm,
}

impl SolutionKind {
    /// All five, in the paper's legend order.
    pub const ALL: [SolutionKind; 5] = [
        SolutionKind::SpaceCore,
        SolutionKind::FiveGNtn,
        SolutionKind::SkyCore,
        SolutionKind::Dpcm,
        SolutionKind::Baoyun,
    ];

    /// The four baselines.
    pub const BASELINES: [SolutionKind; 4] = [
        SolutionKind::FiveGNtn,
        SolutionKind::SkyCore,
        SolutionKind::Dpcm,
        SolutionKind::Baoyun,
    ];

    pub fn name(self) -> &'static str {
        match self {
            SolutionKind::SpaceCore => "SpaceCore",
            SolutionKind::FiveGNtn => "5G NTN",
            SolutionKind::SkyCore => "SkyCore",
            SolutionKind::Baoyun => "Baoyun",
            SolutionKind::Dpcm => "DPCM",
        }
    }

    /// The function split each solution runs in space.
    pub fn split_option(self) -> SplitOption {
        match self {
            SolutionKind::SpaceCore => SplitOption::SpaceCore,
            SolutionKind::FiveGNtn => SplitOption::RadioOnly,
            SolutionKind::SkyCore => SplitOption::AllFunctions,
            SolutionKind::Baoyun | SolutionKind::Dpcm => SplitOption::SessionMobility,
        }
    }

    /// Does the UE's IP address survive a satellite handover?
    /// (Fig. 21: "for SkyCore, Baoyun, and DPCM, the mobility
    /// registrations will update the UE's logical IP addresses and thus
    /// terminate TCP connections and ping. 5G NTN avoids this by binding
    /// the logical IP address to the remote home core".)
    pub fn ip_stable_under_satellite_handover(self) -> bool {
        matches!(self, SolutionKind::SpaceCore | SolutionKind::FiveGNtn)
    }

    /// Does satellite mobility trigger mobility registrations?
    /// SpaceCore eliminates them with geospatial service areas (§4.3).
    pub fn mobility_regs_on_satellite_sweep(self) -> bool {
        !matches!(self, SolutionKind::SpaceCore)
    }
}

/// A solution bound to a constellation + workload context.
#[derive(Debug, Clone)]
pub struct Solution {
    pub kind: SolutionKind,
    constellation: ConstellationConfig,
    params: WorkloadParams,
    /// Mean ISL hop count from a satellite to its serving ground
    /// station (relay amplification for boundary-crossing messages).
    avg_isl_hops: f64,
    /// Lower-layer radio expansion on legacy per-procedure UE-facing
    /// messages (from the Table 2 captures). SpaceCore's piggybacking
    /// collapses this to ~1 (§5: signaling piggyback).
    radio_overhead: f64,
}

/// One-way satellite→home delay, ms (multi-hop ISL + feeder link).
const RTT_HOME_MS: f64 = 130.0;

impl Solution {
    pub fn new(kind: SolutionKind, constellation: ConstellationConfig) -> Self {
        let params = WorkloadParams::for_constellation(&constellation);
        // Mean hops to a gateway scale with grid dimensions; the paper
        // notes worst cases up to 48 hops for Starlink.
        let avg_isl_hops =
            (constellation.planes as f64 + constellation.sats_per_plane as f64) / 6.0;
        let radio_overhead = match kind {
            SolutionKind::SpaceCore => 1.0,
            // Bent-feeder designs re-run RRC/MM transactions over the
            // long space-ground path; the Table 2 satellite captures are
            // dominated by exactly this lower-layer chatter.
            SolutionKind::FiveGNtn => 10.0,
            _ => 3.0,
        };
        Self {
            kind,
            constellation,
            params,
            avg_isl_hops,
            radio_overhead,
        }
    }

    pub fn constellation(&self) -> &ConstellationConfig {
        &self.constellation
    }

    pub fn workload(&self) -> &WorkloadParams {
        &self.params
    }

    // ------------------------------------------------------------------
    // Per-procedure message accounting
    // ------------------------------------------------------------------

    /// Per-run satellite message load for one procedure: locally
    /// processed messages (radio-expanded) plus the ISL relay legs of
    /// every boundary crossing.
    pub fn sat_msgs_per_procedure(&self, kind: ProcedureKind) -> f64 {
        match (self.kind, kind) {
            // SpaceCore's localized procedures (Fig. 16).
            (SolutionKind::SpaceCore, ProcedureKind::SessionEstablishment) => 4.0,
            (SolutionKind::SpaceCore, ProcedureKind::Handover) => 3.0,
            (SolutionKind::SpaceCore, ProcedureKind::MobilityRegistration) => 0.0,
            (SolutionKind::SpaceCore, ProcedureKind::Paging) => 2.0,
            (SolutionKind::SpaceCore, ProcedureKind::InitialRegistration) => {
                // Legacy C1 through the home: radio legs + relays.
                self.legacy_sat_msgs(ProcedureKind::InitialRegistration)
            }
            // SkyCore localizes everything but adds neighbor sync.
            (SolutionKind::SkyCore, k) => {
                self.legacy_sat_msgs(k) + SKYCORE_SYNC_FANOUT
            }
            // DPCM accelerates latency with device-side replicas but
            // pays extra replica-maintenance signaling (why Table 4
            // shows DPCM *above* Baoyun: 49.3× vs 40.3×).
            (SolutionKind::Dpcm, k) => 1.2 * self.legacy_sat_msgs(k),
            _ => self.legacy_sat_msgs(kind),
        }
    }

    /// Legacy per-run satellite load, decomposed as: over-the-air
    /// UE-facing messages (× the radio overhead factor), satellite-local
    /// NF messages, and ISL relay legs for boundary crossings.
    fn legacy_sat_msgs(&self, kind: ProcedureKind) -> f64 {
        let p = Procedure::build(kind);
        let split = self.kind.split_option().split();
        let air = p
            .steps
            .iter()
            .filter(|s| {
                s.from == sc_fiveg::messages::Entity::Ue || s.to == sc_fiveg::messages::Entity::Ue
            })
            .count() as f64;
        let sat_total = p.satellite_messages(&split) as f64;
        let non_air_sat = (sat_total - air).max(0.0);
        let relayed = p.ground_messages(&split) as f64 * self.avg_isl_hops;
        air * self.radio_overhead + non_air_sat + relayed
    }

    /// Per-run ground-station message load.
    pub fn ground_msgs_per_procedure(&self, kind: ProcedureKind) -> f64 {
        match (self.kind, kind) {
            (SolutionKind::SpaceCore, ProcedureKind::SessionEstablishment)
            | (SolutionKind::SpaceCore, ProcedureKind::Handover)
            | (SolutionKind::SpaceCore, ProcedureKind::MobilityRegistration)
            | (SolutionKind::SpaceCore, ProcedureKind::Paging) => 0.0,
            (SolutionKind::SkyCore, _) => 0.0, // pre-stored states
            (SolutionKind::Dpcm, k) => {
                let p = Procedure::build(k);
                0.6 * p.ground_messages(&self.kind.split_option().split()) as f64
            }
            (_, k) => {
                let p = Procedure::build(k);
                p.ground_messages(&self.kind.split_option().split()) as f64
            }
        }
    }

    /// Session-state items migrated between infrastructure nodes per run
    /// (what a man-in-the-middle on ISLs can capture, Fig. 19b).
    pub fn state_migrations_per_procedure(&self, kind: ProcedureKind) -> f64 {
        let p = Procedure::build(kind);
        match (self.kind, kind) {
            // SpaceCore: states move UE↔satellite only, encrypted; no
            // infrastructure-side migration on ISLs.
            (SolutionKind::SpaceCore, ProcedureKind::InitialRegistration) => {
                p.state_tx_crossing(&self.kind.split_option().split()) as f64
            }
            (SolutionKind::SpaceCore, _) => 0.0,
            // SkyCore: proactive replication ships states to neighbors.
            (SolutionKind::SkyCore, _) => SKYCORE_SYNC_FANOUT * 2.0,
            (SolutionKind::Dpcm, k) => {
                0.6 * Procedure::build(k)
                    .state_tx_crossing(&self.kind.split_option().split())
                    as f64
            }
            (_, k) => Procedure::build(k)
                .state_tx_crossing(&self.kind.split_option().split())
                as f64,
        }
    }

    // ------------------------------------------------------------------
    // Aggregate per-satellite / per-ground-station rates (Fig. 20)
    // ------------------------------------------------------------------

    /// Per-satellite signaling rate (msg/s) for `capacity` served users:
    /// session establishments + satellite-sweep handovers + (where the
    /// design triggers them) mobility registrations.
    pub fn sat_msgs_per_s(&self, capacity: u32) -> f64 {
        let sessions = capacity as f64 / self.params.session_interarrival_s;
        let sweeps = capacity as f64 / self.params.transit_s;
        let active_sweeps = sweeps * self.params.active_fraction;

        let mut rate = sessions
            * (self.sat_msgs_per_procedure(ProcedureKind::SessionEstablishment)
                + self.params.downlink_fraction
                    * self.sat_msgs_per_procedure(ProcedureKind::Paging))
            + active_sweeps * self.sat_msgs_per_procedure(ProcedureKind::Handover);
        if self.kind.mobility_regs_on_satellite_sweep() {
            rate += sweeps * self.sat_msgs_per_procedure(ProcedureKind::MobilityRegistration);
        }
        rate
    }

    /// Per-ground-station signaling rate (msg/s): the boundary-crossing
    /// load of all satellites, concentrated on the gateway fleet.
    pub fn ground_msgs_per_s(&self, capacity: u32, total_stations: usize) -> f64 {
        let sessions = capacity as f64 / self.params.session_interarrival_s;
        let sweeps = capacity as f64 / self.params.transit_s;
        let active_sweeps = sweeps * self.params.active_fraction;

        let mut per_sat = sessions
            * (self.ground_msgs_per_procedure(ProcedureKind::SessionEstablishment)
                + self.params.downlink_fraction
                    * self.ground_msgs_per_procedure(ProcedureKind::Paging))
            + active_sweeps * self.ground_msgs_per_procedure(ProcedureKind::Handover);
        if self.kind.mobility_regs_on_satellite_sweep() {
            per_sat +=
                sweeps * self.ground_msgs_per_procedure(ProcedureKind::MobilityRegistration);
        }
        per_sat * self.constellation.total_sats() as f64 / total_stations.max(1) as f64
    }

    /// Per-satellite state-migration rate (items/s).
    pub fn state_tx_per_s(&self, capacity: u32) -> f64 {
        let sessions = capacity as f64 / self.params.session_interarrival_s;
        let sweeps = capacity as f64 / self.params.transit_s;
        let active_sweeps = sweeps * self.params.active_fraction;
        let mut rate = sessions
            * self.state_migrations_per_procedure(ProcedureKind::SessionEstablishment)
            + active_sweeps * self.state_migrations_per_procedure(ProcedureKind::Handover);
        if self.kind.mobility_regs_on_satellite_sweep() {
            rate +=
                sweeps * self.state_migrations_per_procedure(ProcedureKind::MobilityRegistration);
        }
        rate
    }

    // ------------------------------------------------------------------
    // Latency & CPU (Fig. 17)
    // ------------------------------------------------------------------

    /// Home round-trips a procedure needs under this solution.
    pub fn home_round_trips(&self, kind: ProcedureKind) -> f64 {
        use ProcedureKind::*;
        use SolutionKind::*;
        match (self.kind, kind) {
            // Initial registration: SkyCore pre-stored → zero;
            // SpaceCore/5G NTN legacy through home; Baoyun/DPCM split
            // their control functions and ping-pong with the home.
            (SkyCore, InitialRegistration) => 0.0,
            (SpaceCore, InitialRegistration) | (FiveGNtn, InitialRegistration) => 3.0,
            (Baoyun, InitialRegistration) => 5.0,
            (Dpcm, InitialRegistration) => 4.0,

            // Session establishment (Fig. 17b).
            (SpaceCore, SessionEstablishment) => 0.0,
            (SkyCore, SessionEstablishment) => 0.0,
            (Dpcm, SessionEstablishment) => 0.5, // one-way state confirm
            (FiveGNtn, SessionEstablishment) => 3.5,
            (Baoyun, SessionEstablishment) => 5.0,

            // Mobility registration (Fig. 17c). SpaceCore: eliminated.
            (SpaceCore, MobilityRegistration) => 0.0,
            (SkyCore, MobilityRegistration) => 0.5,
            (Dpcm, MobilityRegistration) => 1.5,
            (FiveGNtn, MobilityRegistration) => 3.0,
            (Baoyun, MobilityRegistration) => 2.5,

            (SpaceCore, Handover) => 0.0,
            (_, Handover) => 1.0,
            (SpaceCore, Paging) => 0.0,
            (_, Paging) => 1.0,
        }
    }

    /// Fixed local-crypto latency, ms: SpaceCore pays ABE decryption at
    /// session establishment (Fig. 18a shows ~tens of ms).
    pub fn local_crypto_ms(&self, kind: ProcedureKind) -> f64 {
        match (self.kind, kind) {
            (SolutionKind::SpaceCore, ProcedureKind::SessionEstablishment)
            | (SolutionKind::SpaceCore, ProcedureKind::Handover) => 45.0,
            _ => 0.0,
        }
    }

    /// Fixed software-path latency per run, ms — the prototype-measured
    /// constant each stack pays regardless of load: SkyCore's heavy
    /// in-orbit state store, Baoyun's full 5G stack on the Pi, DPCM's
    /// device-state verification. Calibrated to the Fig. 17 low-load
    /// intercepts.
    pub fn software_path_ms(&self, kind: ProcedureKind) -> f64 {
        if kind == ProcedureKind::Paging {
            return 0.0;
        }
        match self.kind {
            SolutionKind::SkyCore => 450.0,
            SolutionKind::Baoyun => 300.0,
            SolutionKind::Dpcm => 100.0,
            SolutionKind::FiveGNtn | SolutionKind::SpaceCore => 0.0,
        }
    }

    /// Satellite-side service time per run of `kind`, ms (drives both
    /// CPU% and the queueing knee).
    pub fn satellite_service_ms(&self, kind: ProcedureKind, hw: HardwareProfile) -> f64 {
        let table = NfCostTable::new(hw);
        let split = self.kind.split_option().split();
        let p = Procedure::build(kind);
        let mut ms = table.satellite_ms_per_procedure(&p, &split);
        match self.kind {
            // SkyCore pre-computes everything: registration is a local
            // store lookup, not an AKA run — that is how it wins
            // Fig. 17a despite running on the Pi. Other procedures pay
            // its heavy in-orbit store.
            SolutionKind::SkyCore => {
                if kind == ProcedureKind::InitialRegistration {
                    ms = 1.2 / hw.speedup();
                } else {
                    ms += 2.0 / hw.speedup();
                }
            }
            // SpaceCore's proxy: decrypt + install (cheap; ABE cost is
            // accounted separately as fixed latency, its CPU share is
            // included here).
            SolutionKind::SpaceCore => {
                if matches!(
                    kind,
                    ProcedureKind::SessionEstablishment | ProcedureKind::Handover
                ) {
                    ms += 0.6 / hw.speedup();
                }
                if matches!(kind, ProcedureKind::MobilityRegistration) {
                    ms = 0.0; // eliminated entirely
                }
            }
            _ => {}
        }
        ms
    }

    /// Signaling delay (seconds) for one run of `kind` at an offered
    /// rate of `rate_per_s` procedures/s on hardware `hw` (Fig. 17 x/y).
    pub fn signaling_delay_s(
        &self,
        kind: ProcedureKind,
        rate_per_s: f64,
        hw: HardwareProfile,
    ) -> f64 {
        if self.kind == SolutionKind::SpaceCore && kind == ProcedureKind::MobilityRegistration {
            return 0.0; // procedure does not occur (Fig. 17c)
        }
        let home = self.home_round_trips(kind) * 2.0 * RTT_HOME_MS / 1000.0;
        let crypto = self.local_crypto_ms(kind) / 1000.0;
        let service_ms = self.satellite_service_ms(kind, hw);
        let queueing = if service_ms > 0.0 {
            sc_netsim::queueing::MM1Model::from_service_time(service_ms / 1000.0, 10.0)
                .sojourn_s(rate_per_s)
        } else {
            0.0
        };
        // Base radio transaction (RRC setup + first hop).
        let radio = 0.08;
        home + crypto + queueing + radio + self.software_path_ms(kind) / 1000.0
    }

    /// Satellite CPU% at `rate_per_s` procedures/s (Fig. 17 right column).
    pub fn satellite_cpu_percent(
        &self,
        kind: ProcedureKind,
        rate_per_s: f64,
        hw: HardwareProfile,
    ) -> f64 {
        let ms = self.satellite_service_ms(kind, hw);
        (rate_per_s * ms / 1000.0 * 100.0).min(100.0)
    }

    // ------------------------------------------------------------------
    // Attack leakage (Fig. 19)
    // ------------------------------------------------------------------

    /// Cumulative states leaked after `minutes` of a satellite hijack
    /// (Fig. 19a). `capacity` is the satellite's user capacity;
    /// `subscribers` the operator's total base (SkyCore pre-stores all
    /// of them).
    pub fn hijack_leakage(&self, minutes: f64, capacity: u32, subscribers: u64) -> f64 {
        let active = capacity as f64 * self.params.active_fraction;
        match self.kind {
            // Stateless: only currently-active sessions' keys, constant.
            SolutionKind::SpaceCore => active,
            // Everything pre-stored leaks immediately.
            SolutionKind::SkyCore => subscribers as f64 * 2.0, // AV + policy per user
            // Stateful serving cores accumulate contexts as users transit.
            SolutionKind::Baoyun | SolutionKind::Dpcm => {
                let per_transit = capacity as f64;
                active + per_transit * (minutes * 60.0 / self.params.transit_s)
            }
            // Radio-only: radio contexts of transiting users.
            SolutionKind::FiveGNtn => {
                let per_transit = capacity as f64 * self.params.active_fraction;
                active + per_transit * (minutes * 60.0 / self.params.transit_s)
            }
        }
    }

    /// States per second a passive man-in-the-middle on ISLs captures
    /// when backhaul encryption is off (Fig. 19b): exactly the
    /// state-migration rate over inter-node links.
    pub fn mitm_leakage_per_s(&self, capacity: u32) -> f64 {
        match self.kind {
            // Local, ABE-protected: nothing readable in flight.
            SolutionKind::SpaceCore => 0.0,
            _ => self.state_tx_per_s(capacity),
        }
    }
}

/// SkyCore's proactive neighbor-synchronization fan-out (4 ISL
/// neighbors).
const SKYCORE_SYNC_FANOUT: f64 = 4.0;

#[cfg(test)]
mod tests {
    use super::*;

    fn all_solutions() -> Vec<Solution> {
        SolutionKind::ALL
            .iter()
            .map(|k| Solution::new(*k, ConstellationConfig::starlink()))
            .collect()
    }

    #[test]
    fn table4_shape_spacecore_wins_big() {
        // Table 4, Starlink @ 30K: SpaceCore reduces satellite signaling
        // 122.2× vs 5G NTN, 17.5× vs SkyCore, 40.3× vs Baoyun, 49.3× vs
        // DPCM. Shape requirements: ≥ 10× against every baseline, and
        // 5G NTN worst / SkyCore best-of-baselines ordering.
        let cap = 30_000;
        let sc = Solution::new(SolutionKind::SpaceCore, ConstellationConfig::starlink())
            .sat_msgs_per_s(cap);
        let mut ratios = std::collections::HashMap::new();
        for k in SolutionKind::BASELINES {
            let r = Solution::new(k, ConstellationConfig::starlink()).sat_msgs_per_s(cap) / sc;
            ratios.insert(k, r);
        }
        // sc-audit: allow(unordered, reason = "order-insensitive range assertions over every ratio")
        for (k, r) in &ratios {
            assert!(*r > 8.0, "{k:?} ratio {r}");
            assert!(*r < 500.0, "{k:?} ratio {r}");
        }
        assert!(
            ratios[&SolutionKind::FiveGNtn] > ratios[&SolutionKind::SkyCore],
            "5G NTN must be the worst: {ratios:?}"
        );
    }

    #[test]
    fn spacecore_has_no_ground_station_load() {
        let s = Solution::new(SolutionKind::SpaceCore, ConstellationConfig::starlink());
        assert_eq!(s.ground_msgs_per_s(30_000, 30), 0.0);
        // Baselines that fetch from the ground have massive GS load.
        let ntn = Solution::new(SolutionKind::FiveGNtn, ConstellationConfig::starlink());
        assert!(ntn.ground_msgs_per_s(30_000, 30) > 1e4);
    }

    #[test]
    fn fig17c_mobility_registration_eliminated() {
        let s = Solution::new(SolutionKind::SpaceCore, ConstellationConfig::starlink());
        for rate in [100.0, 300.0, 500.0] {
            assert_eq!(
                s.signaling_delay_s(
                    ProcedureKind::MobilityRegistration,
                    rate,
                    HardwareProfile::RaspberryPi4
                ),
                0.0
            );
            assert_eq!(
                s.satellite_cpu_percent(
                    ProcedureKind::MobilityRegistration,
                    rate,
                    HardwareProfile::RaspberryPi4
                ),
                0.0
            );
        }
        // Baselines pay real delay that grows with load.
        let b = Solution::new(SolutionKind::Baoyun, ConstellationConfig::starlink());
        let low = b.signaling_delay_s(
            ProcedureKind::MobilityRegistration,
            50.0,
            HardwareProfile::RaspberryPi4,
        );
        let high = b.signaling_delay_s(
            ProcedureKind::MobilityRegistration,
            500.0,
            HardwareProfile::RaspberryPi4,
        );
        assert!(low > 0.1);
        assert!(high > low);
    }

    #[test]
    fn fig17b_session_latency_ordering() {
        // Fig. 17b at low load: SpaceCore < DPCM < SkyCore < 5G NTN <
        // Baoyun.
        let rate = 50.0;
        let hw = HardwareProfile::RaspberryPi4;
        let d = |k| {
            Solution::new(k, ConstellationConfig::starlink()).signaling_delay_s(
                ProcedureKind::SessionEstablishment,
                rate,
                hw,
            )
        };
        let sc = d(SolutionKind::SpaceCore);
        let dpcm = d(SolutionKind::Dpcm);
        let sky = d(SolutionKind::SkyCore);
        let ntn = d(SolutionKind::FiveGNtn);
        let baoyun = d(SolutionKind::Baoyun);
        assert!(sc < dpcm, "sc {sc} dpcm {dpcm}");
        assert!(dpcm < ntn, "dpcm {dpcm} ntn {ntn}");
        assert!(ntn < baoyun, "ntn {ntn} baoyun {baoyun}");
        assert!(sc < sky, "sc {sc} sky {sky}");
        // Headline: ~7× reduction vs 5G NTN, ~11× vs Baoyun.
        assert!(ntn / sc > 3.0, "ntn/sc {}", ntn / sc);
        assert!(baoyun / sc > 5.0, "baoyun/sc {}", baoyun / sc);
    }

    #[test]
    fn fig17a_initial_registration_ordering() {
        // SkyCore lowest (pre-stored); Baoyun & DPCM highest.
        let rate = 50.0;
        let hw = HardwareProfile::RaspberryPi4;
        let d = |k| {
            Solution::new(k, ConstellationConfig::starlink()).signaling_delay_s(
                ProcedureKind::InitialRegistration,
                rate,
                hw,
            )
        };
        assert!(d(SolutionKind::SkyCore) < d(SolutionKind::SpaceCore));
        assert!(d(SolutionKind::SpaceCore) <= d(SolutionKind::FiveGNtn) + 0.2);
        assert!(d(SolutionKind::Baoyun) > d(SolutionKind::SpaceCore));
        assert!(d(SolutionKind::Dpcm) > d(SolutionKind::SpaceCore));
    }

    #[test]
    fn fig19a_hijack_leakage_shape() {
        // SkyCore leaks its whole pre-stored base immediately; stateful
        // cores accumulate; SpaceCore stays flat at the active set.
        let subs = 10_000_000u64;
        let cap = 30_000;
        let leak = |k: SolutionKind, min: f64| {
            Solution::new(k, ConstellationConfig::starlink()).hijack_leakage(min, cap, subs)
        };
        // Flat for SpaceCore.
        assert_eq!(
            leak(SolutionKind::SpaceCore, 1.0),
            leak(SolutionKind::SpaceCore, 100.0)
        );
        // Bounded by the active set.
        assert!(leak(SolutionKind::SpaceCore, 100.0) < cap as f64);
        // SkyCore catastrophic from t=0.
        assert!(leak(SolutionKind::SkyCore, 1.0) > subs as f64);
        // Baoyun grows with time.
        assert!(leak(SolutionKind::Baoyun, 100.0) > 10.0 * leak(SolutionKind::Baoyun, 1.0));
        // At 100 min, every baseline leaks orders of magnitude more.
        for k in SolutionKind::BASELINES {
            assert!(
                leak(k, 100.0) > 20.0 * leak(SolutionKind::SpaceCore, 100.0),
                "{k:?}"
            );
        }
    }

    #[test]
    fn fig19b_mitm_leakage() {
        let cap = 30_000;
        let sc = Solution::new(SolutionKind::SpaceCore, ConstellationConfig::starlink());
        assert_eq!(sc.mitm_leakage_per_s(cap), 0.0);
        for k in SolutionKind::BASELINES {
            let s = Solution::new(k, ConstellationConfig::starlink());
            assert!(s.mitm_leakage_per_s(cap) > 10.0, "{k:?}");
        }
    }

    #[test]
    fn fig21_ip_stability() {
        assert!(SolutionKind::SpaceCore.ip_stable_under_satellite_handover());
        assert!(SolutionKind::FiveGNtn.ip_stable_under_satellite_handover());
        for k in [SolutionKind::SkyCore, SolutionKind::Baoyun, SolutionKind::Dpcm] {
            assert!(!k.ip_stable_under_satellite_handover(), "{k:?}");
        }
    }

    #[test]
    fn rates_scale_linearly_with_capacity() {
        for s in all_solutions() {
            let r1 = s.sat_msgs_per_s(10_000);
            let r3 = s.sat_msgs_per_s(30_000);
            assert!((r3 / r1 - 3.0).abs() < 1e-9, "{:?}", s.kind);
        }
    }

    #[test]
    fn reduction_holds_across_constellations() {
        // Table 4's other rows: the reduction holds for Kuiper, OneWeb,
        // Iridium too (different magnitudes, same direction).
        for cfg in ConstellationConfig::all_presets() {
            let sc = Solution::new(SolutionKind::SpaceCore, cfg.clone()).sat_msgs_per_s(10_000);
            for k in SolutionKind::BASELINES {
                let b = Solution::new(k, cfg.clone()).sat_msgs_per_s(10_000);
                assert!(b / sc > 4.0, "{} {:?}: {}", cfg.name, k, b / sc);
            }
        }
    }
}
