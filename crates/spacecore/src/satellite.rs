//! The SpaceCore satellite agent: localized session establishment
//! (Fig. 16) with rollback to the legacy home-routed path.
//!
//! The agent is deliberately **stateless across sessions**: it keeps only
//! the set of *currently served* sessions (radio/UPF install state that
//! any base station must hold while a connection is active) and its
//! launch-time credentials. Nothing survives the session: when the UE
//! leaves or the connection releases, the satellite forgets it — that is
//! the property that bounds hijack leakage (Fig. 19a) to active users.

use crate::home::HomeNetwork;
use crate::uestate::UeDevice;
use sc_crypto::statecrypt::{satellite_local_access_obs, ue_complete_exchange, SatCredentials,
    StateCryptError};
use sc_fiveg::ids::Supi;
use sc_fiveg::state::SessionState;
use sc_orbit::SatId;
use std::collections::HashMap;

/// How a session establishment was served.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOutcome {
    /// Served from the UE's local replica (true) or via home rollback.
    pub local: bool,
    /// Signaling messages the satellite exchanged over the air / ISLs.
    pub signaling_messages: u32,
    /// Round-trips to the terrestrial home.
    pub home_round_trips: u32,
    /// The negotiated session key (present on the local path).
    pub session_key: Option<u64>,
}

/// Why the local path failed (before rollback).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalPathFailure {
    /// UE has no SpaceCore proxy.
    NoUeSupport,
    /// State crypto failure (policy, TTL, tamper, certs).
    Crypto(StateCryptError),
}

/// A satellite running the SpaceCore proxy.
#[derive(Debug)]
pub struct SpaceCoreSatellite {
    /// Which satellite this is.
    pub id: SatId,
    creds: SatCredentials,
    /// Currently served sessions: SUPI → installed state + key.
    // sc-audit: allow(stateful, reason = "ephemeral radio-install state for currently served sessions only; forgotten on release, bounding hijack leakage to active users (Fig. 19a)")
    active: parking_lot::Mutex<HashMap<Supi, ActiveSession>>,
    /// Home crypto handle for envelope verification (public material).
    home_cert_key: u64,
    /// Telemetry (disabled by default): `spacecore.satellite.*` counters
    /// and the active-session gauge; local accesses also feed the
    /// `crypto.statecrypt.*` counters.
    obs: sc_obs::Recorder,
    /// Pooled NAS encode buffers: each establishment re-encodes the
    /// piggybacked session request, and after the first one the arena
    /// serves every run allocation-free.
    arena: parking_lot::Mutex<sc_fiveg::arena::MessageArena>,
}

/// Radio/UPF install state for one active session.
#[derive(Debug, Clone)]
pub struct ActiveSession {
    pub state: SessionState,
    pub session_key: u64,
    pub established_at: f64,
}

impl SpaceCoreSatellite {
    /// Provision from the home before "launch" (Algorithm 2 line 3).
    pub fn provision(home: &HomeNetwork, id: SatId) -> Self {
        Self {
            id,
            creds: home.provision_satellite(id),
            active: parking_lot::Mutex::new(HashMap::new()),
            home_cert_key: home.cert_verify_key(),
            obs: sc_obs::Recorder::disabled(),
            arena: parking_lot::Mutex::new(sc_fiveg::arena::MessageArena::new()),
        }
    }

    /// Attach a telemetry recorder; subsequent establishments count
    /// under `spacecore.satellite.*` (and `crypto.statecrypt.*`).
    pub fn attach_recorder(&mut self, obs: sc_obs::Recorder) {
        self.obs = obs;
    }

    /// Provision with custom attributes (unauthorized/revoked satellites
    /// for the security experiments).
    pub fn provision_with_attrs(home: &HomeNetwork, id: SatId, attrs: &[&str]) -> Self {
        Self {
            id,
            creds: home.provision_satellite_with_attrs(id, attrs),
            active: parking_lot::Mutex::new(HashMap::new()),
            home_cert_key: home.cert_verify_key(),
            obs: sc_obs::Recorder::disabled(),
            arena: parking_lot::Mutex::new(sc_fiveg::arena::MessageArena::new()),
        }
    }

    /// Fig. 16a/b — localized session establishment. The UE piggybacks
    /// its encrypted replica in the RRC setup-complete message; the
    /// satellite decrypts locally (Algorithm 2), verifies the home
    /// envelope, completes the station-to-station exchange, and installs
    /// the session — 3 over-the-air messages, no home round-trip.
    ///
    /// On any failure the caller must take the rollback path
    /// ([`Self::establish_session`] does both).
    pub fn try_local_establishment(
        &self,
        home: &HomeNetwork,
        ue: &mut UeDevice,
        now: f64,
    ) -> Result<SessionOutcome, LocalPathFailure> {
        if !ue.supports_spacecore {
            return Err(LocalPathFailure::NoUeSupport);
        }
        // Algorithm 2 line 10: UE sends X and the encrypted state —
        // as actual bytes: the replica is wire-encoded into the NAS PDU
        // session request's StateReplica IE (§5), and the satellite
        // proxy re-parses it.
        let ue_sts = ue.begin_key_exchange(home.dh_params());
        let nas = sc_fiveg::nas::piggybacked_session_request(
            sc_crypto::wire::encode_state(ue.piggyback()),
            ue_sts.public_value(),
        );
        let parsed = {
            let mut arena = self.arena.lock();
            arena.reset();
            let wire = arena.encode_nas(&nas);
            sc_fiveg::nas::NasMessage::decode(arena.bytes(wire))
                .map_err(|_| LocalPathFailure::Crypto(StateCryptError::BadHomeSignature))?
        };
        let replica_bytes = parsed
            .ie(sc_fiveg::nas::IeTag::StateReplica)
            .ok_or(LocalPathFailure::NoUeSupport)?;
        let replica = sc_crypto::wire::decode_state(replica_bytes)
            .map_err(|_| LocalPathFailure::Crypto(StateCryptError::BadHomeSignature))?;
        // Satellite side (lines 11-13).
        let eph = sc_crypto::field::keyed_hash(
            (self.id.plane as u64) << 32 | self.id.slot as u64,
            &now.to_bits().to_le_bytes(),
        );
        let out = satellite_local_access_obs(
            &self.obs,
            &self.creds,
            home.crypto(),
            &replica,
            ue_sts.public_value(),
            eph,
            now,
        )
        .map_err(LocalPathFailure::Crypto)?;
        // UE side (line 14).
        let k_ue = ue_complete_exchange(
            self.home_cert_key,
            &ue_sts,
            &self.creds.cert,
            self.creds.cert.subject,
            out.y_public,
            out.transcript_sig,
        )
        .map_err(LocalPathFailure::Crypto)?;
        debug_assert_eq!(k_ue, out.session_key);

        let state = SessionState::decode(&out.state).ok_or(LocalPathFailure::Crypto(
            StateCryptError::BadHomeSignature,
        ))?;
        let active_now = {
            let mut active = self.active.lock();
            active.insert(
                ue.supi,
                ActiveSession {
                    state,
                    session_key: out.session_key,
                    established_at: now,
                },
            );
            active.len()
        };
        self.obs.inc("spacecore.satellite.local_establishments", 1);
        self.obs
            .set_gauge("spacecore.satellite.active_sessions", active_now as f64);
        // Windowed view of the same gauge, stamped at the establishment
        // time — the rise of a session-load storm has a time axis.
        self.obs.series_gauge(
            "spacecore.satellite.active_sessions",
            now,
            active_now as f64,
        );
        Ok(SessionOutcome {
            local: true,
            // P0 (2 messages: RRC request + setup) + P1' piggyback +
            // session accept with Y/CERT (Fig. 16a).
            signaling_messages: 4,
            home_round_trips: 0,
            session_key: Some(out.session_key),
        })
    }

    /// Full establishment: local path, with rollback to the legacy
    /// home-routed C2 on failure ("Otherwise, the serving satellite …
    /// rolls back to the legacy procedure in Figure 9b").
    pub fn establish_session(
        &self,
        home: &HomeNetwork,
        ue: &mut UeDevice,
        now: f64,
    ) -> SessionOutcome {
        match self.try_local_establishment(home, ue, now) {
            Ok(o) => o,
            Err(_) => {
                self.obs.inc("spacecore.satellite.rollbacks", 1);
                // Legacy C2: 13 messages, multiple home round-trips.
                let c2 = sc_fiveg::messages::Procedure::build(
                    sc_fiveg::messages::ProcedureKind::SessionEstablishment,
                );
                SessionOutcome {
                    local: false,
                    signaling_messages: c2.message_count() as u32,
                    home_round_trips: 3,
                    session_key: None,
                }
            }
        }
    }

    /// Fig. 16c — inter-satellite handover with the UE's replica: the UE
    /// piggybacks its state in the handover acknowledgment to the new
    /// satellite, bypassing P13/P10/P14 (path switch through the core).
    pub fn handover_in(
        &self,
        home: &HomeNetwork,
        ue: &mut UeDevice,
        now: f64,
    ) -> Result<SessionOutcome, LocalPathFailure> {
        let mut o = self.try_local_establishment(home, ue, now)?;
        self.obs.inc("spacecore.satellite.handovers_in", 1);
        // Handover piggyback rides existing HO messages: only the HO
        // command + confirm + accept are new over-the-air messages.
        o.signaling_messages = 3;
        Ok(o)
    }

    /// §3.3 / Fig. 13 — the UE's *previous* serving satellite crashed
    /// mid-session and this satellite is the next one visible. Because
    /// the session state is self-carried by the UE, recovery is just the
    /// localized establishment of Fig. 16a replayed here: 4 messages, no
    /// home round-trip, and the geospatial IP (never bound to the dead
    /// satellite) survives. Stateful baselines have no equivalent — they
    /// redo the full home-routed registration
    /// (see [`crate::recovery::RecoveryPlan`]).
    pub fn recover_session(
        &self,
        home: &HomeNetwork,
        ue: &mut UeDevice,
        now: f64,
    ) -> Result<SessionOutcome, LocalPathFailure> {
        let o = self.try_local_establishment(home, ue, now)?;
        self.obs.inc("spacecore.satellite.crash_recoveries", 1);
        Ok(o)
    }

    /// Release a session (UE left coverage / inactivity): the satellite
    /// forgets everything about the UE.
    pub fn release(&self, supi: Supi) -> bool {
        let (removed, active_now) = {
            let mut active = self.active.lock();
            (active.remove(&supi).is_some(), active.len())
        };
        if removed {
            self.obs.inc("spacecore.satellite.releases", 1);
            self.obs
                .set_gauge("spacecore.satellite.active_sessions", active_now as f64);
        }
        removed
    }

    /// Number of currently served sessions.
    pub fn active_sessions(&self) -> usize {
        self.active.lock().len()
    }

    /// What a hijacker can read off this satellite **right now**: only
    /// the active sessions' states/keys (Fig. 19a — "only the active
    /// serving users' keys are leaked in this case").
    pub fn hijack_exposure(&self) -> Vec<(Supi, u64)> {
        let mut v: Vec<(Supi, u64)> = self
            .active
            .lock()
            .iter()
            .map(|(s, a)| (*s, a.session_key))
            .collect();
        v.sort_unstable_by_key(|(s, _)| *s);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::home::{HomeConfig, HomeNetwork};
    use sc_geo::sphere::GeoPoint;

    fn setup() -> (HomeNetwork, SpaceCoreSatellite, UeDevice) {
        let home = HomeNetwork::new(HomeConfig::default());
        let sat = SpaceCoreSatellite::provision(&home, SatId::new(3, 7));
        let ue = home.register_ue(100, &GeoPoint::from_degrees(39.9, 116.4));
        (home, sat, ue)
    }

    #[test]
    fn local_path_succeeds_without_home() {
        let (home, sat, mut ue) = setup();
        let o = sat.establish_session(&home, &mut ue, 1.0);
        assert!(o.local);
        assert_eq!(o.home_round_trips, 0);
        assert_eq!(o.signaling_messages, 4);
        assert!(o.session_key.is_some());
        assert_eq!(sat.active_sessions(), 1);
    }

    #[test]
    fn legacy_ue_rolls_back() {
        let (home, sat, mut ue) = setup();
        ue.supports_spacecore = false;
        let o = sat.establish_session(&home, &mut ue, 1.0);
        assert!(!o.local);
        assert!(o.home_round_trips > 0);
        assert!(o.signaling_messages > 4);
        assert_eq!(sat.active_sessions(), 0);
    }

    #[test]
    fn unauthorized_satellite_rolls_back() {
        let (home, _, mut ue) = setup();
        let rogue =
            SpaceCoreSatellite::provision_with_attrs(&home, SatId::new(9, 9), &["role:satellite"]);
        let err = rogue.try_local_establishment(&home, &mut ue, 1.0).unwrap_err();
        assert!(matches!(err, LocalPathFailure::Crypto(_)));
        let o = rogue.establish_session(&home, &mut ue, 1.0);
        assert!(!o.local);
    }

    #[test]
    fn expired_replica_rolls_back() {
        let (home, sat, mut ue) = setup();
        let past_ttl = home.config().state_ttl_s + 1.0;
        let err = sat
            .try_local_establishment(&home, &mut ue, past_ttl)
            .unwrap_err();
        assert_eq!(
            err,
            LocalPathFailure::Crypto(StateCryptError::Expired)
        );
    }

    #[test]
    fn handover_uses_fewer_messages() {
        let (home, sat1, mut ue) = setup();
        let sat2 = SpaceCoreSatellite::provision(&home, SatId::new(4, 7));
        sat1.establish_session(&home, &mut ue, 1.0);
        let o = sat2.handover_in(&home, &mut ue, 10.0).unwrap();
        assert!(o.local);
        assert_eq!(o.signaling_messages, 3);
        assert_eq!(o.home_round_trips, 0);
        // The old satellite releases and forgets.
        assert!(sat1.release(ue.supi));
        assert_eq!(sat1.active_sessions(), 0);
        assert_eq!(sat1.hijack_exposure().len(), 0);
    }

    #[test]
    fn crash_recovery_is_local_and_counted() {
        // Serving satellite dies mid-session; the next visible satellite
        // recovers the session from the UE's replica alone.
        let (home, old_sat, mut ue) = setup();
        old_sat.establish_session(&home, &mut ue, 1.0);
        let mut new_sat = SpaceCoreSatellite::provision(&home, SatId::new(4, 7));
        let rec = sc_obs::Recorder::new();
        new_sat.attach_recorder(rec.clone());
        // (old_sat is "dead": it is simply never consulted again.)
        let o = new_sat.recover_session(&home, &mut ue, 5.0).unwrap();
        assert!(o.local);
        assert_eq!(o.signaling_messages, 4);
        assert_eq!(o.home_round_trips, 0);
        assert_eq!(new_sat.active_sessions(), 1);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("spacecore.satellite.crash_recoveries"), 1);
        assert_eq!(snap.counter("spacecore.satellite.local_establishments"), 1);
    }

    #[test]
    fn hijack_exposure_bounded_to_active() {
        let (home, sat, _) = setup();
        let mut ues: Vec<_> = (0..10)
            .map(|i| home.register_ue(200 + i, &GeoPoint::from_degrees(30.0, 100.0)))
            .collect();
        for ue in &mut ues {
            sat.establish_session(&home, ue, 1.0);
        }
        assert_eq!(sat.hijack_exposure().len(), 10);
        // Half release → exposure shrinks accordingly.
        for ue in &ues[..5] {
            sat.release(ue.supi);
        }
        assert_eq!(sat.hijack_exposure().len(), 5);
    }

    #[test]
    fn session_keys_differ_across_ues_and_sessions() {
        let (home, sat, mut ue) = setup();
        let mut ue2 = home.register_ue(101, &GeoPoint::from_degrees(39.9, 116.4));
        let k1 = sat.establish_session(&home, &mut ue, 1.0).session_key.unwrap();
        let k2 = sat.establish_session(&home, &mut ue2, 1.0).session_key.unwrap();
        assert_ne!(k1, k2);
        // Re-establishment gets a fresh key (per-session keying).
        sat.release(ue.supi);
        let k3 = sat.establish_session(&home, &mut ue, 2.0).session_key.unwrap();
        assert_ne!(k1, k3);
    }

    #[test]
    fn recorder_counts_local_path_rollback_and_release() {
        let (home, mut sat, mut ue) = setup();
        let rec = sc_obs::Recorder::new();
        sat.attach_recorder(rec.clone());
        let mut legacy = home.register_ue(101, &GeoPoint::from_degrees(30.0, 100.0));
        legacy.supports_spacecore = false;
        sat.establish_session(&home, &mut ue, 1.0);
        sat.establish_session(&home, &mut legacy, 1.0);
        sat.release(ue.supi);
        sat.release(ue.supi); // double release: not counted twice
        let snap = rec.snapshot();
        assert_eq!(snap.counter("spacecore.satellite.local_establishments"), 1);
        assert_eq!(snap.counter("spacecore.satellite.rollbacks"), 1);
        assert_eq!(snap.counter("spacecore.satellite.releases"), 1);
        assert_eq!(snap.gauge("spacecore.satellite.active_sessions"), Some(0.0));
        // The windowed series holds the establishment-time sample
        // (window 1 ← now = 1.0); releases carry no sim time, so only
        // the plain gauge sees the drop to zero.
        let series = snap
            .series
            .get("spacecore.satellite.active_sessions")
            .map(|d| d.points());
        assert_eq!(series, Some(vec![(1, 1.0)]));
        // The local path also feeds the crypto-layer counters.
        assert_eq!(snap.counter("crypto.statecrypt.local_accesses"), 1);
        assert_eq!(snap.counter("crypto.abe.decrypts"), 1);
    }

    #[test]
    fn installed_state_matches_ue_session() {
        let (home, sat, mut ue) = setup();
        sat.establish_session(&home, &mut ue, 1.0);
        let active = sat.active.lock();
        let a = active.get(&ue.supi).unwrap();
        assert_eq!(a.state, ue.session);
    }
}
