//! Constellation-scale SpaceCore deployment: every satellite
//! provisioned, a UE fleet registered, and time-driven serving
//! assignments with local handovers — the orchestration layer the
//! larger integration tests and examples drive.
//!
//! This is the "whole system running" view: where `satellite.rs` models
//! one SpaceCore proxy and `solutions.rs` models aggregate costs, a
//! [`Deployment`] actually *runs* a shell: at each epoch it recomputes
//! who serves whom from real orbital geometry, performs the local
//! handovers SpaceCore prescribes (or nothing, for idle UEs), and
//! accumulates the signaling bill.

use crate::home::HomeNetwork;
use crate::satellite::SpaceCoreSatellite;
use crate::uestate::UeDevice;
use sc_fiveg::conn::ConnState;
use sc_orbit::coverage::CoverageModel;
use sc_orbit::{Propagator, SatId, SnapshotCache};
use std::collections::HashMap;

/// Aggregate statistics of an epoch advance.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochStats {
    /// Serving-satellite switches among *connected* UEs (each a local
    /// handover).
    pub handovers: u32,
    /// Serving switches among idle UEs (free under SpaceCore).
    pub idle_reselections: u32,
    /// UEs with no coverage this epoch.
    pub uncovered: u32,
    /// Signaling messages exchanged.
    pub signaling_messages: u32,
    /// Establishments that fell back to the home path.
    pub rollbacks: u32,
}

/// A running SpaceCore deployment over one shell.
pub struct Deployment<'a> {
    home: &'a HomeNetwork,
    prop: &'a dyn Propagator,
    /// Memoized indexed snapshots: epochs shared across deployments of
    /// the same sweep hit the cache instead of re-propagating.
    snapshots: SnapshotCache<'a>,
    satellites: HashMap<SatId, SpaceCoreSatellite>,
    /// Current serving assignment per UE index.
    serving: Vec<Option<SatId>>,
    /// Whether each UE currently has an active connection.
    connected: Vec<bool>,
    now: f64,
}

impl<'a> Deployment<'a> {
    /// Stand up a deployment: satellites are provisioned lazily on first
    /// use (pre-launch provisioning is per-satellite state the home
    /// already holds).
    pub fn new(home: &'a HomeNetwork, prop: &'a dyn Propagator, fleet_size: usize) -> Self {
        Self {
            home,
            prop,
            snapshots: SnapshotCache::new(prop),
            satellites: HashMap::new(),
            serving: vec![None; fleet_size],
            connected: vec![false; fleet_size],
            now: 0.0,
        }
    }

    /// Current emulation time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Mark a UE's connection state (driven by the traffic model).
    pub fn set_connected(&mut self, ue_index: usize, connected: bool) {
        self.connected[ue_index] = connected;
    }

    fn satellite(&mut self, id: SatId) -> &SpaceCoreSatellite {
        let home = self.home;
        self.satellites
            .entry(id)
            .or_insert_with(|| SpaceCoreSatellite::provision(home, id))
    }

    /// Advance to time `t`: recompute serving satellites for every UE
    /// and perform the SpaceCore mobility actions.
    pub fn advance(&mut self, ues: &mut [UeDevice], t: f64) -> EpochStats {
        assert!(t >= self.now, "time must advance");
        assert_eq!(ues.len(), self.serving.len());
        self.now = t;
        let cov = CoverageModel::new(self.prop);
        let snapshot = self.snapshots.at(t);
        let mut stats = EpochStats::default();

        for (i, ue) in ues.iter_mut().enumerate() {
            let view = cov.serving_from_indexed(&snapshot, &ue.position);
            match (self.serving[i], view.map(|v| v.sat)) {
                (_, None) => {
                    if self.serving[i].take().is_some() && self.connected[i] {
                        // Connection drops with coverage.
                        self.connected[i] = false;
                        let _ = ue.conn.on_event(t, sc_fiveg::conn::ConnEvent::RadioLinkFailure);
                    }
                    stats.uncovered += 1;
                }
                (Some(old), Some(new)) if old == new => {} // steady state
                (old, Some(new)) => {
                    let was_connected = self.connected[i];
                    // Release at the old satellite (it forgets the UE).
                    if let Some(old_id) = old {
                        if was_connected {
                            if let Some(s) = self.satellites.get(&old_id) {
                                s.release(ue.supi);
                            }
                        }
                    }
                    if was_connected {
                        // Local handover / establishment at the new sat.
                        let home = self.home;
                        let sat = self.satellite(new);
                        match sat.handover_in(home, ue, t) {
                            Ok(o) => {
                                stats.handovers += 1;
                                stats.signaling_messages += o.signaling_messages;
                            }
                            Err(_) => {
                                let o = sat.establish_session(home, ue, t);
                                stats.rollbacks += 1;
                                stats.signaling_messages += o.signaling_messages;
                            }
                        }
                    } else {
                        // Idle reselection: free (§4.3).
                        stats.idle_reselections += 1;
                    }
                    self.serving[i] = Some(new);
                }
            }
        }
        let _ = ConnState::Idle; // (see mobility.rs for the decision table)
        stats
    }

    /// Number of provisioned satellites so far.
    pub fn provisioned_satellites(&self) -> usize {
        self.satellites.len()
    }

    /// Total currently-active sessions across the fleet of satellites.
    pub fn total_active_sessions(&self) -> usize {
        self.satellites.values().map(|s| s.active_sessions()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::home::HomeConfig;
    use sc_geo::GeoPoint;
    use sc_orbit::{ConstellationConfig, IdealPropagator};

    fn fleet(home: &HomeNetwork, n: usize) -> Vec<UeDevice> {
        let pop = sc_dataset::population::PopulationModel::world_bank_like();
        pop.sample_ues(n, 77)
            .into_iter()
            .enumerate()
            .map(|(i, p)| home.register_ue(i as u64, &p))
            .collect()
    }

    #[test]
    fn idle_fleet_costs_nothing() {
        let home = HomeNetwork::new(HomeConfig::default());
        let prop = IdealPropagator::new(ConstellationConfig::starlink());
        let mut ues = fleet(&home, 30);
        let mut dep = Deployment::new(&home, &prop, ues.len());
        let mut total_signaling = 0;
        let mut reselections = 0;
        for k in 1..=10 {
            let s = dep.advance(&mut ues, k as f64 * 60.0);
            total_signaling += s.signaling_messages;
            reselections += s.idle_reselections;
            assert_eq!(s.handovers, 0);
        }
        assert_eq!(total_signaling, 0, "idle UEs are free under SpaceCore");
        assert!(reselections > 0, "satellites must have swept past");
    }

    #[test]
    fn connected_ues_handover_locally() {
        let home = HomeNetwork::new(HomeConfig::default());
        let prop = IdealPropagator::new(ConstellationConfig::starlink());
        let mut ues = fleet(&home, 10);
        let mut dep = Deployment::new(&home, &prop, ues.len());
        dep.advance(&mut ues, 1.0); // initial assignment (idle)
        for i in 0..ues.len() {
            dep.set_connected(i, true);
        }
        // Establish initial sessions by forcing one serving switch.
        let mut handovers = 0;
        let mut signaling = 0;
        for k in 1..=20 {
            let s = dep.advance(&mut ues, 1.0 + k as f64 * 60.0);
            handovers += s.handovers;
            signaling += s.signaling_messages;
            assert_eq!(s.rollbacks, 0, "all UEs support SpaceCore");
        }
        assert!(handovers > 0);
        // Each handover costs exactly 3 messages.
        assert_eq!(signaling, handovers * 3);
        assert!(dep.provisioned_satellites() > 0);
        assert!(dep.total_active_sessions() > 0);
    }

    #[test]
    fn old_satellite_forgets_after_handover() {
        let home = HomeNetwork::new(HomeConfig::default());
        let prop = IdealPropagator::new(ConstellationConfig::starlink());
        // One connected UE followed over many sweeps: the total of
        // active sessions across all satellites stays ≤ 1.
        let mut ues = vec![home.register_ue(1, &GeoPoint::from_degrees(40.0, -100.0))];
        let mut dep = Deployment::new(&home, &prop, 1);
        dep.set_connected(0, true);
        for k in 1..=30 {
            dep.advance(&mut ues, k as f64 * 60.0);
            assert!(dep.total_active_sessions() <= 1, "t={k}");
        }
    }

    #[test]
    fn coverage_gaps_reported() {
        let home = HomeNetwork::new(HomeConfig::default());
        let prop = IdealPropagator::new(ConstellationConfig::starlink());
        // A polar research station: outside the Starlink band.
        let mut ues = vec![home.register_ue(1, &GeoPoint::from_degrees(88.0, 0.0))];
        let mut dep = Deployment::new(&home, &prop, 1);
        let s = dep.advance(&mut ues, 60.0);
        assert_eq!(s.uncovered, 1);
    }

    #[test]
    #[should_panic(expected = "time must advance")]
    fn time_cannot_rewind() {
        let home = HomeNetwork::new(HomeConfig::default());
        let prop = IdealPropagator::new(ConstellationConfig::starlink());
        let mut ues = vec![home.register_ue(1, &GeoPoint::from_degrees(0.0, 0.0))];
        let mut dep = Deployment::new(&home, &prop, 1);
        dep.advance(&mut ues, 100.0);
        dep.advance(&mut ues, 50.0);
    }
}
