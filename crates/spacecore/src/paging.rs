//! Stateless paging and downlink delivery (§4.2 "Downlink session
//! establishment").
//!
//! Legacy 5G pages through the anchor: the gateway notifies the AMF,
//! which knows the UE's tracking area and asks its base stations to
//! broadcast. SpaceCore has no anchor and no per-UE location state in
//! the network — instead, the packet itself carries the UE's geospatial
//! cell (inside its address), Algorithm 1 relays it to a satellite
//! covering that cell, and *that* satellite broadcasts the page. The UE
//! then runs the localized uplink establishment (Fig. 16a) to receive.

use crate::home::HomeNetwork;
use crate::relay::{GeoRelay, RelayTrace};
use crate::satellite::SpaceCoreSatellite;
use crate::uestate::UeDevice;
use sc_geo::addr::GeoAddress;
use sc_orbit::{Propagator, SatId};

/// Outcome of a stateless downlink delivery attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct PagingOutcome {
    /// The relay trace to the covering satellite.
    pub relay: RelayTrace,
    /// Satellite that broadcast the page.
    pub paging_sat: SatId,
    /// Did the UE answer (it answers iff it is inside the paged cell)?
    pub ue_answered: bool,
    /// Total signaling messages: relay hops are data-plane; the paging
    /// broadcast + the UE's 4-message local establishment are control.
    pub signaling_messages: u32,
    /// End-to-end delay until the session was up, ms.
    pub total_delay_ms: f64,
}

/// Deliver downlink data to `address` starting from `ingress`, paging
/// the destination UE and establishing its session locally.
///
/// `ue` is the device the page is *meant* for; whether it answers
/// depends on whether it actually resides in the addressed cell — the
/// consistency the geospatial design guarantees as long as the UE
/// updated its address on cell crossings (§4.3).
pub fn deliver_downlink(
    relay: &GeoRelay,
    prop: &dyn Propagator,
    home: &HomeNetwork,
    ingress: SatId,
    address: GeoAddress,
    ue: &mut UeDevice,
    t: f64,
) -> PagingOutcome {
    // Route to the addressed cell's centre coordinate.
    let grid = home.cell_grid();
    let dst_coord = grid.cell_center(address.ue_cell);
    let trace = relay.trace(prop, ingress, dst_coord, t, 1.0);

    let paging_sat = *trace.path.last().expect("trace path non-empty");
    if !trace.delivered {
        return PagingOutcome {
            relay: trace,
            paging_sat,
            ue_answered: false,
            signaling_messages: 0,
            total_delay_ms: f64::INFINITY,
        };
    }

    // The satellite broadcasts the page in the addressed cell; the UE
    // hears it iff it is in that cell.
    let ue_in_cell = grid.cell_of_point(&ue.position) == address.ue_cell;
    if !ue_in_cell {
        return PagingOutcome {
            total_delay_ms: trace.delay_ms,
            relay: trace,
            paging_sat,
            ue_answered: false,
            signaling_messages: 1, // the unanswered page
        };
    }

    // UE answers: localized establishment on the paging satellite.
    let sat = SpaceCoreSatellite::provision(home, paging_sat);
    let est = sat.establish_session(home, ue, t);
    let establishment_ms = 45.0 + 10.0; // ABE + radio transaction
    PagingOutcome {
        total_delay_ms: trace.delay_ms + establishment_ms,
        relay: trace,
        paging_sat,
        ue_answered: est.local,
        signaling_messages: 1 + est.signaling_messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::home::HomeConfig;
    use sc_geo::GeoPoint;
    use sc_orbit::{ConstellationConfig, IdealPropagator};

    fn setup() -> (HomeNetwork, IdealPropagator, GeoRelay) {
        let cfg = ConstellationConfig::starlink();
        (
            HomeNetwork::new(HomeConfig::default()),
            IdealPropagator::new(cfg.clone()),
            GeoRelay::for_shell(&cfg),
        )
    }

    #[test]
    fn downlink_reaches_registered_ue() {
        let (home, prop, relay) = setup();
        let pos = GeoPoint::from_degrees(-23.5, -46.6); // São Paulo
        let mut ue = home.register_ue(1, &pos);
        let addr = ue.address;
        let o = deliver_downlink(&relay, &prop, &home, SatId::new(0, 0), addr, &mut ue, 100.0);
        assert!(o.relay.delivered);
        assert!(o.ue_answered);
        assert_eq!(o.signaling_messages, 5); // page + 4-message local C2
        assert!(o.total_delay_ms.is_finite());
    }

    #[test]
    fn page_unanswered_when_ue_moved_without_update() {
        // A UE that crossed cells *without* updating its address (the
        // §4.3 obligation) is unreachable at the stale address.
        let (home, prop, relay) = setup();
        let pos = GeoPoint::from_degrees(-23.5, -46.6);
        let mut ue = home.register_ue(2, &pos);
        let stale_addr = ue.address;
        // Fly to Tokyo without telling the home.
        ue.position = GeoPoint::from_degrees(35.7, 139.7);
        let o = deliver_downlink(
            &relay,
            &prop,
            &home,
            SatId::new(0, 0),
            stale_addr,
            &mut ue,
            100.0,
        );
        assert!(o.relay.delivered, "the page reaches the old cell");
        assert!(!o.ue_answered, "nobody home");
        assert_eq!(o.signaling_messages, 1);
    }

    #[test]
    fn page_answered_after_proper_cell_update() {
        let (home, prop, relay) = setup();
        let mut ue = home.register_ue(3, &GeoPoint::from_degrees(-23.5, -46.6));
        // Proper move: cell crossing through the home (C4).
        assert!(ue.move_to(&home.cell_grid(), GeoPoint::from_degrees(35.7, 139.7)));
        let replica = home.handle_cell_crossing(&mut ue);
        ue.install_update(ue.session.clone(), replica).unwrap();
        let fresh_addr = ue.address;
        let o = deliver_downlink(
            &relay,
            &prop,
            &home,
            SatId::new(40, 3),
            fresh_addr,
            &mut ue,
            200.0,
        );
        assert!(o.ue_answered);
    }

    #[test]
    fn paging_sat_actually_covers_the_cell() {
        let (home, prop, relay) = setup();
        let mut ue = home.register_ue(4, &GeoPoint::from_degrees(48.8, 2.3)); // Paris
        let addr = ue.address;
        let o = deliver_downlink(&relay, &prop, &home, SatId::new(10, 10), addr, &mut ue, 50.0);
        let coord = prop.state(o.paging_sat, 50.0).coord;
        let dst = home.cell_grid().cell_center(addr.ue_cell);
        assert!(
            sc_geo::angle::signed_delta(coord.alpha, dst.alpha).abs() <= relay.coverage_radius()
        );
        assert!(
            sc_geo::angle::signed_delta(coord.gamma, dst.gamma).abs() <= relay.coverage_radius()
        );
    }
}
