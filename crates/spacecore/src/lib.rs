//! **SpaceCore** — a stateless mobile core for LEO mega-constellations.
//!
//! This crate is the paper's primary contribution, rebuilt in Rust on the
//! substrates of this workspace (`sc-geo`, `sc-orbit`, `sc-netsim`,
//! `sc-crypto`, `sc-fiveg`, `sc-dataset`):
//!
//! * [`relay`] — **Algorithm 1**: stateless geospatial relaying between
//!   satellites by (α, γ) coordinates, with a hop-by-hop path tracer over
//!   live (ideal or J4-perturbed) orbits,
//! * [`uestate`] — the device-as-the-repository: the UE-side state
//!   replica (encrypted, home-signed, versioned) and its piggybacking,
//! * [`home`] — the terrestrial home network: initial registration,
//!   geospatial address allocation, home-controlled state updates (§4.4),
//! * [`satellite`] — the SpaceCore satellite agent: localized session
//!   establishment (Fig. 16), local decrypt + station-to-station key
//!   agreement, rollback to the legacy home-routed path on failure,
//! * [`mobility`] — geospatial mobility management (§4.3): which events
//!   require signaling under SpaceCore vs. the legacy design,
//! * [`recovery`] — crash-recovery semantics per solution (§3.3): how a
//!   session comes back when the *serving* satellite dies mid-session,
//!   and whether it can survive at all,
//! * [`solutions`] — the five evaluated systems behind one trait:
//!   **SpaceCore**, **5G NTN**, **SkyCore**, **Baoyun**, **DPCM** —
//!   with per-procedure signaling/latency/CPU cost profiles and the
//!   hijack/man-in-the-middle leakage models of Figure 19.
//!
//! # Quickstart
//!
//! ```
//! use spacecore::prelude::*;
//!
//! // A Starlink shell with its geospatial cell grid.
//! let cfg = sc_orbit::ConstellationConfig::starlink();
//! let home = HomeNetwork::new(HomeConfig::default());
//!
//! // Register a UE at Beijing: legacy C1 through the home, which
//! // delegates the encrypted state replica to the device.
//! let beijing = sc_geo::GeoPoint::from_degrees(39.9, 116.4);
//! let mut ue = home.register_ue(1001, &beijing);
//!
//! // A satellite serves the UE locally from its replica — no home
//! // round-trip (Fig. 16).
//! let sat = SpaceCoreSatellite::provision(&home, sc_orbit::SatId::new(3, 7));
//! let outcome = sat.establish_session(&home, &mut ue, 0.0);
//! assert!(outcome.local, "served from the UE replica");
//! assert_eq!(outcome.home_round_trips, 0);
//! ```

pub mod deployment;
pub mod home;
pub mod integration;
pub mod mobility;
pub mod paging;
pub mod recovery;
pub mod relay;
pub mod satellite;
pub mod shard;
pub mod solutions;
pub mod uestate;

/// Convenient re-exports for examples and tests.
pub mod prelude {
    pub use crate::deployment::{Deployment, EpochStats};
    pub use crate::home::{HomeConfig, HomeNetwork};
    pub use crate::integration::{Access, AccessSelector, SwitchOutcome};
    pub use crate::paging::{deliver_downlink, PagingOutcome};
    pub use crate::mobility::{MobilityEvent, MobilityManager, MobilityOutcome};
    pub use crate::recovery::RecoveryPlan;
    pub use crate::relay::{GeoRelay, RelayDecision, RelayTrace};
    pub use crate::satellite::{SessionOutcome, SpaceCoreSatellite};
    pub use crate::shard::{CellLedger, ProcedureCosts, ShardMap, ShardStats};
    pub use crate::solutions::{Solution, SolutionKind};
    pub use crate::uestate::UeDevice;
}

pub use prelude::*;
