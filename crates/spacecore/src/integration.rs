//! Seamless space-terrestrial integration (§4.5).
//!
//! SpaceCore's home is a legacy 5G core reachable by both satellites and
//! terrestrial base stations, which makes it "a natural coordinator for
//! space-terrestrial integration": an idle UE switches between space and
//! ground by standard **cell re-selection** (no signaling while camped);
//! a connected UE switches by a standard **5G handover coordinated by
//! the home**. This module implements that access-selection and
//! switching logic, and accounts its signaling.

use sc_fiveg::conn::ConnState;
use sc_fiveg::messages::{Procedure, ProcedureKind};

/// An access an idle UE can camp on / a connected UE can use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Access {
    /// Terrestrial gNB with the given signal strength (dB, relative).
    Terrestrial { strength_db: f64 },
    /// Satellite access with the given elevation (radians).
    Satellite { elevation_rad: f64 },
}

impl Access {
    /// Comparable camping rank. Terrestrial coverage, where present, is
    /// preferred (stronger, cheaper); satellite rank grows with
    /// elevation. The thresholds mirror standard cell-reselection
    /// hysteresis: terrestrial wins unless weaker than `MIN_TERR_DB`.
    fn rank(&self) -> f64 {
        match self {
            Access::Terrestrial { strength_db } => {
                if *strength_db < MIN_TERR_DB {
                    f64::NEG_INFINITY
                } else {
                    1000.0 + strength_db
                }
            }
            Access::Satellite { elevation_rad } => {
                if *elevation_rad < MIN_SAT_ELEV_RAD {
                    f64::NEG_INFINITY
                } else {
                    elevation_rad.to_degrees()
                }
            }
        }
    }

    /// Is this access usable at all?
    pub fn usable(&self) -> bool {
        self.rank() > f64::NEG_INFINITY
    }
}

/// Minimum usable terrestrial signal, dB (relative threshold).
pub const MIN_TERR_DB: f64 = -110.0;
/// Minimum usable satellite elevation.
pub const MIN_SAT_ELEV_RAD: f64 = 0.436; // 25°

/// How a UE moved between accesses and what it cost.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchOutcome {
    /// The access selected (None: out of coverage entirely).
    pub selected: Option<Access>,
    /// Signaling messages exchanged for the switch.
    pub signaling_messages: u32,
    /// Whether the home coordinated the switch.
    pub via_home: bool,
}

/// The access selector / switch coordinator.
#[derive(Debug, Clone, Default)]
pub struct AccessSelector {
    current: Option<Access>,
}

impl AccessSelector {
    pub fn new() -> Self {
        Self::default()
    }

    /// The currently camped/used access.
    pub fn current(&self) -> Option<Access> {
        self.current
    }

    /// Select the best access among the candidates (standard ranking).
    pub fn best(candidates: &[Access]) -> Option<Access> {
        candidates
            .iter()
            .copied()
            .filter(Access::usable)
            .max_by(|a, b| a.rank().total_cmp(&b.rank()))
    }

    /// Evaluate the candidates at the UE's current connection state and
    /// switch if a better access exists.
    ///
    /// * idle → standard cell re-selection: **zero signaling** (§4.5:
    ///   "it runs the standard cell re-selection to switch its
    ///   association between space and terrestrial base stations"),
    /// * connected → a standard 5G handover (C3) **through the home**,
    ///   which controls both sides.
    pub fn evaluate(&mut self, conn: ConnState, candidates: &[Access]) -> SwitchOutcome {
        let best = Self::best(candidates);
        let changed = match (self.current, best) {
            (Some(cur), Some(new)) => !same_kind(&cur, &new) || new.rank() > cur.rank() + HYSTERESIS,
            (None, Some(_)) => true,
            (_, None) => {
                self.current = None;
                return SwitchOutcome {
                    selected: None,
                    signaling_messages: 0,
                    via_home: false,
                };
            }
        };
        if !changed {
            return SwitchOutcome {
                selected: self.current,
                signaling_messages: 0,
                via_home: false,
            };
        }
        let outcome = match conn {
            ConnState::Idle => SwitchOutcome {
                selected: best,
                signaling_messages: 0,
                via_home: false,
            },
            ConnState::Connected => {
                let c3 = Procedure::build(ProcedureKind::Handover);
                SwitchOutcome {
                    selected: best,
                    signaling_messages: c3.message_count() as u32,
                    via_home: true,
                }
            }
        };
        self.current = best;
        outcome
    }
}

/// Re-selection hysteresis in rank units.
const HYSTERESIS: f64 = 3.0;

fn same_kind(a: &Access, b: &Access) -> bool {
    matches!(
        (a, b),
        (Access::Terrestrial { .. }, Access::Terrestrial { .. })
            | (Access::Satellite { .. }, Access::Satellite { .. })
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD_TERR: Access = Access::Terrestrial { strength_db: -80.0 };
    const WEAK_TERR: Access = Access::Terrestrial {
        strength_db: -120.0,
    };
    const HIGH_SAT: Access = Access::Satellite { elevation_rad: 1.2 };
    const LOW_SAT: Access = Access::Satellite {
        elevation_rad: 0.30,
    };

    #[test]
    fn terrestrial_preferred_when_present() {
        let best = AccessSelector::best(&[GOOD_TERR, HIGH_SAT]).unwrap();
        assert!(matches!(best, Access::Terrestrial { .. }));
    }

    #[test]
    fn satellite_fills_coverage_gaps() {
        // Weak terrestrial is unusable → the satellite takes over.
        let best = AccessSelector::best(&[WEAK_TERR, HIGH_SAT]).unwrap();
        assert!(matches!(best, Access::Satellite { .. }));
        // Both unusable → none.
        assert!(AccessSelector::best(&[WEAK_TERR, LOW_SAT]).is_none());
    }

    #[test]
    fn idle_reselection_is_signaling_free() {
        let mut sel = AccessSelector::new();
        // Camp on satellite first (rural area).
        let o1 = sel.evaluate(ConnState::Idle, &[HIGH_SAT]);
        assert_eq!(o1.signaling_messages, 0);
        assert!(matches!(o1.selected, Some(Access::Satellite { .. })));
        // Enter a city: idle switch to terrestrial, still free.
        let o2 = sel.evaluate(ConnState::Idle, &[GOOD_TERR, HIGH_SAT]);
        assert_eq!(o2.signaling_messages, 0);
        assert!(!o2.via_home);
        assert!(matches!(o2.selected, Some(Access::Terrestrial { .. })));
    }

    #[test]
    fn connected_switch_is_a_home_coordinated_handover() {
        let mut sel = AccessSelector::new();
        sel.evaluate(ConnState::Idle, &[HIGH_SAT]);
        let o = sel.evaluate(ConnState::Connected, &[GOOD_TERR, HIGH_SAT]);
        assert!(o.via_home);
        assert_eq!(o.signaling_messages, 11, "standard C3");
    }

    #[test]
    fn hysteresis_prevents_ping_pong() {
        let mut sel = AccessSelector::new();
        sel.evaluate(ConnState::Idle, &[HIGH_SAT]);
        // A marginally better satellite does not trigger re-selection.
        let slightly_better = Access::Satellite {
            elevation_rad: 1.2 + 0.01,
        };
        let o = sel.evaluate(ConnState::Idle, &[slightly_better]);
        assert_eq!(o.signaling_messages, 0);
        // Current access is retained (rank delta below hysteresis).
        if let Some(Access::Satellite { elevation_rad }) = o.selected {
            assert!((elevation_rad - 1.2).abs() < 1e-9);
        } else {
            panic!("stayed on satellite expected");
        }
    }

    #[test]
    fn out_of_coverage_clears_selection() {
        let mut sel = AccessSelector::new();
        sel.evaluate(ConnState::Idle, &[GOOD_TERR]);
        let o = sel.evaluate(ConnState::Idle, &[]);
        assert!(o.selected.is_none());
        assert!(sel.current().is_none());
        // Re-acquiring coverage re-selects.
        let o2 = sel.evaluate(ConnState::Idle, &[HIGH_SAT]);
        assert!(o2.selected.is_some());
    }
}
