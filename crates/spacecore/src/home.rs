//! The terrestrial home network (§4.2 initial registration, §4.4
//! home-controlled state updates, §4.5 space-terrestrial integration).
//!
//! The home is a legacy 5G core plus three SpaceCore extensions:
//!
//! 1. geospatial IP allocation by cell (Fig. 15c),
//! 2. policy-based UE state encryption (ABE) and signing, and
//! 3. exclusive authority over state updates: the home is "the only
//!    entity that can update all states except S2 and S5".

use crate::uestate::UeDevice;
use parking_lot::Mutex;
use sc_crypto::policy::{attr_set, AccessTree};
use sc_crypto::statecrypt::{EncryptedUeState, HomeCrypto, SatCredentials};
use sc_fiveg::ids::{PlmnId, Supi};
use sc_fiveg::state::SessionState;
use sc_geo::addr::{GeoAddress, SuffixAllocator};
use sc_geo::cells::CellGrid;
use sc_geo::sphere::GeoPoint;
use sc_orbit::{ConstellationConfig, SatId};

/// Home-network configuration.
#[derive(Debug, Clone)]
pub struct HomeConfig {
    /// The operator's PLMN.
    pub plmn: PlmnId,
    /// The constellation shell the operator leases/owns (defines the
    /// geospatial grid).
    pub constellation: ConstellationConfig,
    /// TTL on delegated UE states, seconds (Appendix B replay defence).
    pub state_ttl_s: f64,
    /// Access policy for serving satellites. The per-UE policy is this
    /// OR the UE's own SUPI attribute.
    pub satellite_policy: AccessTree,
    /// Deterministic crypto seed.
    pub seed: u64,
}

impl Default for HomeConfig {
    fn default() -> Self {
        Self {
            plmn: PlmnId::new(460, 1),
            constellation: ConstellationConfig::starlink(),
            state_ttl_s: 3600.0,
            satellite_policy: AccessTree::all_of(&["role:satellite", "authorized"]),
            seed: 0x5face,
        }
    }
}

/// The terrestrial home network.
#[derive(Debug)]
pub struct HomeNetwork {
    cfg: HomeConfig,
    crypto: HomeCrypto,
    grid: CellGrid,
    alloc: Mutex<SuffixAllocator>,
    // sc-audit: allow(stateful, reason = "ground-home replica version counters — the terrestrial freshness anchor for UE-carried state (Algorithm 1); never launched")
    versions: Mutex<std::collections::HashMap<Supi, u32>>,
}

impl HomeNetwork {
    pub fn new(cfg: HomeConfig) -> Self {
        let crypto = HomeCrypto::setup(cfg.seed);
        let grid = cfg.constellation.cell_grid();
        Self {
            cfg,
            crypto,
            grid,
            alloc: Mutex::new(SuffixAllocator::new()),
            versions: Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// The home's configuration.
    pub fn config(&self) -> &HomeConfig {
        &self.cfg
    }

    /// The geospatial cell grid anchored to the shell.
    pub fn cell_grid(&self) -> CellGrid {
        self.grid.clone()
    }

    /// DH group parameters embedded in delegated states.
    pub fn dh_params(&self) -> sc_crypto::dh::DhParams {
        self.crypto.dh_params()
    }

    /// Certificate-verification key carried by UEs.
    pub fn cert_verify_key(&self) -> u64 {
        self.crypto.cert_verify_key()
    }

    /// The home crypto authority (needed by satellite agents for
    /// envelope verification).
    pub fn crypto(&self) -> &HomeCrypto {
        &self.crypto
    }

    /// Home cell of the operator's core (where the grid places the
    /// first ground-station site; informational, used in addresses).
    fn home_cell(&self) -> sc_geo::cells::CellId {
        // Anchor the home at Beijing (the paper's testbed home).
        self.grid.cell_of_point(&GeoPoint::from_degrees(39.9, 116.4))
    }

    /// The per-UE access tree: the satellite policy OR the UE itself.
    fn ue_policy(&self, supi: Supi) -> AccessTree {
        AccessTree::Or(vec![
            self.cfg.satellite_policy.clone(),
            AccessTree::And(vec![
                AccessTree::leaf("role:ue"),
                AccessTree::leaf(format!("supi:{}", supi.0)),
            ]),
        ])
    }

    /// C1 — initial registration (Fig. 9a, run through the home as in
    /// legacy 5G), followed by SpaceCore's state delegation: allocate the
    /// geospatial address, encrypt the session state under the access
    /// policy, and hand the replica to the device.
    pub fn register_ue(&self, msin: u64, position: &GeoPoint) -> UeDevice {
        let supi = Supi::new(self.cfg.plmn, msin);
        let ue_cell = self.grid.cell_of_point(position);
        let suffix = self.alloc.lock().allocate(ue_cell);
        let address = GeoAddress::new(self.cfg.plmn.pack(), self.home_cell(), ue_cell, suffix);

        let mut session = SessionState::sample(msin);
        session.location.cell = ue_cell;
        session.location.geo = Some(address);
        session.location.ip = address.encode();

        let version = 1u32;
        self.versions.lock().insert(supi, version);
        let replica = self.encrypt_for(&session, supi, version);
        let creds = self
            .crypto
            .provision_ue(&attr_set(&["role:ue", &format!("supi:{}", supi.0)]));
        UeDevice::new(supi, *position, address, session, replica, creds)
    }

    fn encrypt_for(&self, session: &SessionState, supi: Supi, version: u32) -> EncryptedUeState {
        let policy = self.ue_policy(supi);
        self.crypto.encrypt_state(
            &session.encode(),
            &policy,
            version,
            version as f64 * self.cfg.state_ttl_s,
            supi.0 ^ (version as u64) << 32,
        )
    }

    /// Provision a satellite before launch (Algorithm 2 line 3).
    pub fn provision_satellite(&self, sat: SatId) -> SatCredentials {
        let identity = (sat.plane as u64) << 16 | sat.slot as u64;
        self.crypto
            .provision_satellite(identity, &attr_set(&["role:satellite", "authorized"]))
    }

    /// Provision a satellite with *custom* attributes (used to model
    /// unauthorized or revoked satellites in tests and the Fig. 19
    /// experiments).
    pub fn provision_satellite_with_attrs(
        &self,
        sat: SatId,
        attrs: &[&str],
    ) -> SatCredentials {
        let identity = (sat.plane as u64) << 16 | sat.slot as u64;
        self.crypto.provision_satellite(identity, &attr_set(attrs))
    }

    /// §4.4 — home-controlled state update: bump the version, re-encrypt,
    /// re-sign. Returns the new plaintext + replica to push to the UE.
    pub fn refresh_state(&self, ue: &UeDevice, _now: f64) -> (SessionState, EncryptedUeState) {
        let mut versions = self.versions.lock();
        let v = versions.entry(ue.supi).or_insert(1);
        *v += 1;
        let replica = self.encrypt_for(&ue.session, ue.supi, *v);
        (ue.session.clone(), replica)
    }

    /// §4.4 — apply a usage report from a serving satellite and, if the
    /// quota boundary was crossed, emit an updated (possibly throttled)
    /// state. Only the home may update S3/S4.
    pub fn apply_usage_report(
        &self,
        ue: &mut UeDevice,
        bytes_used: u64,
    ) -> Option<EncryptedUeState> {
        let was_over = ue.session.billing.over_quota();
        ue.session.billing.used_bytes += bytes_used;
        let now_over = ue.session.billing.over_quota();
        if was_over == now_over {
            return None;
        }
        // Quota crossed: throttle via a state update.
        ue.session.qos.ambr_kbps = ue.session.billing.post_quota_kbps;
        let mut versions = self.versions.lock();
        let v = versions.entry(ue.supi).or_insert(1);
        *v += 1;
        let replica = self.encrypt_for(&ue.session, ue.supi, *v);
        Some(replica)
    }

    /// §4.3 — UE crossed into a new geospatial cell: re-allocate the
    /// address (standard C4 through the home) and refresh the state.
    pub fn handle_cell_crossing(&self, ue: &mut UeDevice) -> EncryptedUeState {
        let new_cell = self.grid.cell_of_point(&ue.position);
        let suffix = self.alloc.lock().allocate(new_cell);
        ue.address = ue.address.with_ue_cell(new_cell, suffix);
        ue.session.location.cell = new_cell;
        ue.session.location.geo = Some(ue.address);
        ue.session.location.ip = ue.address.encode();
        let mut versions = self.versions.lock();
        let v = versions.entry(ue.supi).or_insert(1);
        *v += 1;
        self.encrypt_for(&ue.session, ue.supi, *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn home() -> HomeNetwork {
        HomeNetwork::new(HomeConfig::default())
    }

    #[test]
    fn registration_allocates_geospatial_address() {
        let h = home();
        let p = GeoPoint::from_degrees(31.2, 121.5); // Shanghai
        let ue = h.register_ue(7, &p);
        let expect_cell = h.cell_grid().cell_of_point(&p);
        assert_eq!(ue.address.ue_cell, expect_cell);
        assert_eq!(ue.session.location.geo, Some(ue.address));
        assert_eq!(ue.session.location.ip, ue.address.encode());
    }

    #[test]
    fn suffixes_unique_within_cell() {
        let h = home();
        let p = GeoPoint::from_degrees(31.2, 121.5);
        let a = h.register_ue(1, &p);
        let b = h.register_ue(2, &p);
        assert_eq!(a.address.ue_cell, b.address.ue_cell);
        assert_ne!(a.address.suffix, b.address.suffix);
    }

    #[test]
    fn replica_decryptable_by_owner_ue() {
        let h = home();
        let ue = h.register_ue(9, &GeoPoint::from_degrees(40.0, -100.0));
        let plain =
            sc_crypto::abe::AbeSystem::decrypt(&ue.replica.ciphertext, &ue.credentials.sk)
                .expect("UE can decrypt its own replica");
        let decoded = SessionState::decode(&plain).expect("valid codec");
        assert_eq!(decoded, ue.session);
    }

    #[test]
    fn replica_decryptable_by_authorized_satellite_only() {
        let h = home();
        let ue = h.register_ue(10, &GeoPoint::from_degrees(40.0, -100.0));
        let good = h.provision_satellite(SatId::new(1, 1));
        assert!(sc_crypto::abe::AbeSystem::decrypt(&ue.replica.ciphertext, &good.sk).is_ok());
        let bad = h.provision_satellite_with_attrs(SatId::new(2, 2), &["role:satellite"]);
        assert!(sc_crypto::abe::AbeSystem::decrypt(&ue.replica.ciphertext, &bad.sk).is_err());
    }

    #[test]
    fn usage_report_triggers_throttle_exactly_once() {
        let h = home();
        let mut ue = h.register_ue(11, &GeoPoint::from_degrees(10.0, 10.0));
        let quota = ue.session.billing.quota_bytes;
        assert!(h.apply_usage_report(&mut ue, quota / 2).is_none());
        let update = h.apply_usage_report(&mut ue, quota).expect("quota crossed");
        assert!(update.version > ue.replica.version);
        assert_eq!(ue.session.qos.ambr_kbps, ue.session.billing.post_quota_kbps);
        // Further usage past quota: no more updates.
        assert!(h.apply_usage_report(&mut ue, 1000).is_none());
    }

    #[test]
    fn cell_crossing_reallocates_address() {
        let h = home();
        let mut ue = h.register_ue(12, &GeoPoint::from_degrees(40.0, 116.0));
        let old_addr = ue.address;
        let crossed = ue.move_to(&h.cell_grid(), GeoPoint::from_degrees(-30.0, 20.0));
        assert!(crossed);
        let replica = h.handle_cell_crossing(&mut ue);
        assert_ne!(ue.address.ue_cell, old_addr.ue_cell);
        assert_eq!(ue.address.plmn, old_addr.plmn);
        assert!(replica.version >= 2);
        ue.install_update(ue.session.clone(), replica).unwrap();
    }

    #[test]
    fn versions_monotone_per_ue() {
        let h = home();
        let ue = h.register_ue(13, &GeoPoint::from_degrees(0.0, 0.0));
        let (_, r1) = h.refresh_state(&ue, 0.0);
        let (_, r2) = h.refresh_state(&ue, 1.0);
        assert!(r2.version > r1.version);
        assert!(r1.version > ue.replica.version);
    }
}
