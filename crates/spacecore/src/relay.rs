//! Algorithm 1 — stateless geospatial relaying in the +Grid topology.
//!
//! Each satellite knows only its own runtime coordinate
//! `S = (α_s(t), γ_s(t))`, its coverage radius `AS`, and its grid
//! spacing `(Δα, Δγ)`. A packet's destination coordinate `D = (α_d, γ_d)`
//! comes straight out of the UE's geospatial address (Fig. 15c). The
//! forwarding rule is purely local:
//!
//! 1. if `D` is within `AS` of `S` on both axes → page and deliver;
//! 2. otherwise move along the axis with the larger residual, in the
//!    wrap-shortest direction (the `m/2·Δα` comparisons in the paper's
//!    listing are exactly the "shorter way around the circle" test).
//!
//! Because every decision uses the satellite's *runtime* coordinate, the
//! algorithm self-calibrates against orbit perturbations: under the J4
//! propagator the grid drifts, and forwarding still converges (Fig. 18b).

use sc_geo::angle::signed_delta;
use sc_geo::inclined::InclinedCoord;
use sc_geo::sphere::{propagation_delay_ms, GeoPoint};
use sc_orbit::{Constellation, IndexedSnapshot, Propagator, SatId};

/// A local forwarding decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelayDecision {
    /// The current satellite covers the destination: page + deliver.
    Deliver,
    /// Forward to the intra-orbit neighbour with smaller γ.
    Down,
    /// Forward to the intra-orbit neighbour with larger γ.
    Up,
    /// Forward to the adjacent plane with smaller α.
    Left,
    /// Forward to the adjacent plane with larger α.
    Right,
}

/// The stateless relay function for one constellation shell.
#[derive(Debug, Clone)]
pub struct GeoRelay {
    /// Coverage radius in coordinate space (radians on each axis).
    coverage_radius: f64,
    /// Hop budget before declaring a routing failure.
    max_hops: usize,
    /// Telemetry (disabled by default): `spacecore.relay.*` counters and
    /// the per-packet hop/delay histograms.
    obs: sc_obs::Recorder,
}

/// Result of tracing a packet through the constellation.
#[derive(Debug, Clone, PartialEq)]
pub struct RelayTrace {
    /// Satellites visited, in order (first = ingress satellite).
    pub path: Vec<SatId>,
    /// Was the packet delivered (vs. hop budget exhausted)?
    pub delivered: bool,
    /// Accumulated propagation + per-hop processing delay, ms.
    pub delay_ms: f64,
}

impl RelayTrace {
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

impl GeoRelay {
    /// Build a relay for a shell, deriving the coordinate-space coverage
    /// radius from the grid spacing: a satellite "covers" destinations
    /// within half a grid cell on each axis (plus a small guard band so
    /// coverage regions overlap rather than leave seams).
    pub fn for_shell(cfg: &sc_orbit::ConstellationConfig) -> Self {
        let d_alpha = std::f64::consts::TAU / cfg.planes as f64;
        let d_gamma = std::f64::consts::TAU / cfg.sats_per_plane as f64;
        Self {
            coverage_radius: 0.55 * d_alpha.max(d_gamma),
            max_hops: 4 * (cfg.planes as usize + cfg.sats_per_plane as usize),
            obs: sc_obs::Recorder::disabled(),
        }
    }

    /// Attach a telemetry recorder; subsequent traces count under
    /// `spacecore.relay.*`.
    pub fn with_recorder(mut self, obs: sc_obs::Recorder) -> Self {
        self.obs = obs;
        self
    }

    /// Override the coverage radius (used by the cell-granularity
    /// ablation bench).
    pub fn with_coverage_radius(mut self, r: f64) -> Self {
        assert!(r > 0.0);
        self.coverage_radius = r;
        self
    }

    /// The coordinate-space coverage radius.
    pub fn coverage_radius(&self) -> f64 {
        self.coverage_radius
    }

    /// Algorithm 1's local decision at a satellite with runtime
    /// coordinate `sat` for destination coordinate `dst`.
    pub fn decide(&self, sat: InclinedCoord, dst: InclinedCoord) -> RelayDecision {
        let da = signed_delta(sat.alpha, dst.alpha);
        let dg = signed_delta(sat.gamma, dst.gamma);
        if da.abs() <= self.coverage_radius && dg.abs() <= self.coverage_radius {
            return RelayDecision::Deliver;
        }
        if da.abs() > dg.abs() {
            if da > 0.0 {
                RelayDecision::Right
            } else {
                RelayDecision::Left
            }
        } else if dg > 0.0 {
            RelayDecision::Up
        } else {
            RelayDecision::Down
        }
    }

    /// Apply a decision to a grid position.
    fn step(constellation: &Constellation, sat: SatId, d: RelayDecision) -> SatId {
        let cfg = constellation.config();
        let m = cfg.planes;
        let n = cfg.sats_per_plane;
        match d {
            RelayDecision::Deliver => sat,
            RelayDecision::Down => SatId::new(sat.plane, (sat.slot + n - 1) % n),
            RelayDecision::Up => SatId::new(sat.plane, (sat.slot + 1) % n),
            RelayDecision::Left => SatId::new((sat.plane + m - 1) % m, sat.slot),
            RelayDecision::Right => SatId::new((sat.plane + 1) % m, sat.slot),
        }
    }

    /// Trace a packet from `ingress` toward the destination coordinate
    /// `dst` over live orbits at emulation time `t`.
    ///
    /// `per_hop_processing_ms` models switching latency at each
    /// satellite. Satellites move negligibly during a single packet's
    /// flight, so the whole trace uses the snapshot at `t`.
    ///
    /// When telemetry is enabled, each packet records a causal
    /// `spacecore.relay.packet` root span (with the ingress grid
    /// position; `delivered`/`hops` attached on close) and one
    /// `spacecore.relay.hop` child per ISL hop, stamped with the
    /// packet-relative cumulative delay (ms) — so `sctrace` can show
    /// which leg of an Algorithm 1 route dominated.
    pub fn trace(
        &self,
        prop: &dyn Propagator,
        ingress: SatId,
        dst: InclinedCoord,
        t: f64,
        per_hop_processing_ms: f64,
    ) -> RelayTrace {
        let constellation = Constellation::new(prop.config().clone());
        self.obs.inc("spacecore.relay.packets", 1);
        let traced = self.obs.enabled();
        let packet_span = if traced {
            self.obs.span_open(
                None,
                "spacecore.relay.packet",
                0.0,
                vec![
                    ("plane", sc_obs::FieldValue::from(ingress.plane as u64)),
                    ("slot", sc_obs::FieldValue::from(ingress.slot as u64)),
                ],
            )
        } else {
            sc_obs::SpanId::DISABLED
        };
        let mut cur = ingress;
        let mut path = vec![cur];
        let mut delay = 0.0;
        for _ in 0..self.max_hops {
            let st = prop.state(cur, t);
            match self.decide(st.coord, dst) {
                RelayDecision::Deliver => {
                    self.obs.inc("spacecore.relay.delivered", 1);
                    self.obs
                        .observe("spacecore.relay.hops", (path.len() - 1) as f64);
                    self.obs.observe("spacecore.relay.delay_ms", delay);
                    if traced {
                        self.obs.span_close_with(
                            packet_span,
                            delay,
                            vec![
                                ("delivered", sc_obs::FieldValue::from(1u64)),
                                ("hops", sc_obs::FieldValue::from(path.len() - 1)),
                            ],
                        );
                    }
                    return RelayTrace {
                        path,
                        delivered: true,
                        delay_ms: delay,
                    };
                }
                d => {
                    let next = Self::step(&constellation, cur, d);
                    let next_pos = prop.state(next, t).position;
                    let hop_ms = propagation_delay_ms(st.position.distance_km(&next_pos))
                        + per_hop_processing_ms;
                    if traced {
                        self.obs.span(
                            Some(packet_span),
                            "spacecore.relay.hop",
                            delay,
                            delay + hop_ms,
                            vec![
                                ("plane", sc_obs::FieldValue::from(next.plane as u64)),
                                ("slot", sc_obs::FieldValue::from(next.slot as u64)),
                            ],
                        );
                    }
                    delay += hop_ms;
                    cur = next;
                    path.push(cur);
                }
            }
        }
        self.obs.inc("spacecore.relay.expired", 1);
        if traced {
            self.obs.span_close_with(
                packet_span,
                delay,
                vec![
                    ("delivered", sc_obs::FieldValue::from(0u64)),
                    ("hops", sc_obs::FieldValue::from(path.len() - 1)),
                ],
            );
        }
        RelayTrace {
            path,
            delivered: false,
            delay_ms: delay,
        }
    }

    /// End-to-end delivery: ground point to ground point. Finds the
    /// ingress satellite over `src`, routes to the destination's
    /// coordinate, and adds up/down link delays.
    ///
    /// Returns `None` when no satellite covers the source.
    pub fn deliver_ground_to_ground(
        &self,
        prop: &dyn Propagator,
        src: &GeoPoint,
        dst: &GeoPoint,
        t: f64,
        per_hop_processing_ms: f64,
    ) -> Option<RelayTrace> {
        self.deliver_indexed(
            prop,
            &IndexedSnapshot::build(prop, t),
            src,
            dst,
            t,
            per_hop_processing_ms,
        )
    }

    /// Like [`Self::deliver_ground_to_ground`] against a pre-indexed
    /// snapshot (use a [`sc_orbit::SnapshotCache`] when delivering many
    /// packets at the same instant). `snapshot` must be the propagated
    /// state of `prop` at `t`.
    pub fn deliver_indexed(
        &self,
        prop: &dyn Propagator,
        snapshot: &IndexedSnapshot,
        src: &GeoPoint,
        dst: &GeoPoint,
        t: f64,
        per_hop_processing_ms: f64,
    ) -> Option<RelayTrace> {
        let cfg = prop.config();
        let constellation = Constellation::new(cfg.clone());
        // Ingress: highest-elevation satellite over the source. Only
        // satellites inside the coverage cap can clear the elevation
        // threshold, so the bucket candidates suffice; ties keep the
        // lowest snapshot index, matching a linear front-to-back scan.
        let mut best: Option<(f64, usize)> = None;
        snapshot.for_each_candidate(src, |i, st| {
            let e = sc_geo::sphere::elevation_angle(src, &st.position);
            if e >= cfg.min_elevation_rad
                && best.is_none_or(|(be, bi)| e > be || (e == be && i < bi))
            {
                best = Some((e, i));
            }
        });
        let (_, ingress_idx) = best?;
        let states = snapshot.states();
        let ingress = constellation.sat_at(ingress_idx);

        // Destination coordinate: the UE address embeds the ascending
        // cell; route to the destination's clamped ascending coordinate.
        let frame = sc_geo::inclined::InclinedFrame::new(cfg.inclination_rad);
        let dst_coord = frame.from_geo_clamped(dst);

        let mut trace = self.trace(prop, ingress, dst_coord, t, per_hop_processing_ms);
        // Uplink to ingress + downlink from the delivering satellite.
        let up = states[ingress_idx]
            .position
            .distance_km(&src.surface_vector());
        trace.delay_ms += propagation_delay_ms(up);
        if trace.delivered {
            let last = constellation.index_of(*trace.path.last().expect("non-empty path"));
            let down = states[last].position.distance_km(&dst.surface_vector());
            trace.delay_ms += propagation_delay_ms(down);
        }
        Some(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_orbit::{ConstellationConfig, IdealPropagator, J4Propagator};

    fn starlink() -> IdealPropagator {
        IdealPropagator::new(ConstellationConfig::starlink())
    }

    #[test]
    fn decide_prefers_larger_axis() {
        let relay = GeoRelay::for_shell(&ConstellationConfig::starlink());
        let sat = InclinedCoord::new(1.0, 1.0);
        // Large α residual, small γ residual → move in α.
        assert_eq!(
            relay.decide(sat, InclinedCoord::new(2.5, 1.1)),
            RelayDecision::Right
        );
        assert_eq!(
            relay.decide(sat, InclinedCoord::new(0.0, 1.05)),
            RelayDecision::Left
        );
        // γ dominates.
        assert_eq!(
            relay.decide(sat, InclinedCoord::new(1.05, 2.9)),
            RelayDecision::Up
        );
        assert_eq!(
            relay.decide(sat, InclinedCoord::new(1.05, 0.0)),
            RelayDecision::Down
        );
    }

    #[test]
    fn decide_takes_shortest_wrap() {
        let relay = GeoRelay::for_shell(&ConstellationConfig::starlink());
        let sat = InclinedCoord::new(0.1, 0.0);
        // Destination at α = 6.0 is *left* of α = 0.1 around the wrap.
        assert_eq!(
            relay.decide(sat, InclinedCoord::new(6.0, 0.0)),
            RelayDecision::Left
        );
        let sat2 = InclinedCoord::new(6.0, 0.0);
        assert_eq!(
            relay.decide(sat2, InclinedCoord::new(0.1, 0.0)),
            RelayDecision::Right
        );
    }

    #[test]
    fn deliver_when_within_coverage() {
        let relay = GeoRelay::for_shell(&ConstellationConfig::starlink());
        let sat = InclinedCoord::new(1.0, 2.0);
        let r = relay.coverage_radius();
        assert_eq!(
            relay.decide(sat, InclinedCoord::new(1.0 + 0.9 * r, 2.0 - 0.9 * r)),
            RelayDecision::Deliver
        );
    }

    #[test]
    fn trace_delivers_across_the_constellation() {
        let prop = starlink();
        let relay = GeoRelay::for_shell(prop.config());
        // Destination: coordinate of a satellite far across the grid.
        let dst = prop.state(SatId::new(40, 10), 0.0).coord;
        let tr = relay.trace(&prop, SatId::new(0, 0), dst, 0.0, 1.0);
        assert!(tr.delivered, "path {:?}", tr.path.len());
        assert!(tr.hops() >= 20 && tr.hops() <= 60, "{}", tr.hops());
        assert!(tr.delay_ms > 50.0 && tr.delay_ms < 500.0, "{}", tr.delay_ms);
    }

    #[test]
    fn trace_zero_hops_when_already_covering() {
        let prop = starlink();
        let relay = GeoRelay::for_shell(prop.config());
        let dst = prop.state(SatId::new(5, 5), 100.0).coord;
        let tr = relay.trace(&prop, SatId::new(5, 5), dst, 100.0, 1.0);
        assert!(tr.delivered);
        assert_eq!(tr.hops(), 0);
        assert_eq!(tr.delay_ms, 0.0);
    }

    #[test]
    fn beijing_new_york_ideal_vs_j4() {
        // Fig. 18b: delivery guaranteed under both ideal and J4 orbits,
        // with similar path delays (runtime-coordinate calibration).
        let cfg = ConstellationConfig::starlink();
        let ideal = IdealPropagator::new(cfg.clone());
        let j4 = J4Propagator::new(cfg.clone());
        let relay = GeoRelay::for_shell(&cfg);
        let beijing = GeoPoint::from_degrees(39.9, 116.4);
        let ny = GeoPoint::from_degrees(40.7, -74.0);
        let mut both = Vec::new();
        for t in [0.0, 600.0, 1800.0, 3600.0] {
            let a = relay
                .deliver_ground_to_ground(&ideal, &beijing, &ny, t, 1.0)
                .expect("coverage");
            let b = relay
                .deliver_ground_to_ground(&j4, &beijing, &ny, t, 1.0)
                .expect("coverage");
            assert!(a.delivered, "ideal t={t}");
            assert!(b.delivered, "j4 t={t}");
            both.push((a.delay_ms, b.delay_ms));
        }
        // Path delays are the same scale (not orders of magnitude apart).
        for (a, b) in both {
            assert!(a > 30.0 && a < 400.0, "ideal {a}");
            assert!((b - a).abs() < 200.0, "ideal {a} vs j4 {b}");
        }
    }

    #[test]
    fn iridium_delivery_works_despite_small_grid() {
        let cfg = ConstellationConfig::iridium();
        let prop = IdealPropagator::new(cfg.clone());
        let relay = GeoRelay::for_shell(&cfg);
        let dst = prop.state(SatId::new(3, 6), 0.0).coord;
        let tr = relay.trace(&prop, SatId::new(0, 0), dst, 0.0, 1.0);
        assert!(tr.delivered, "hops {}", tr.hops());
    }

    #[test]
    fn finer_coverage_radius_can_cause_detours_but_still_delivers() {
        let cfg = ConstellationConfig::starlink();
        let prop = IdealPropagator::new(cfg.clone());
        let coarse = GeoRelay::for_shell(&cfg);
        let fine = GeoRelay::for_shell(&cfg).with_coverage_radius(coarse.coverage_radius() * 1.5);
        let dst = prop.state(SatId::new(30, 12), 0.0).coord;
        let a = coarse.trace(&prop, SatId::new(0, 0), dst, 0.0, 1.0);
        let b = fine.trace(&prop, SatId::new(0, 0), dst, 0.0, 1.0);
        assert!(a.delivered && b.delivered);
        // A wider delivery radius can only shorten (or equal) the path.
        assert!(b.hops() <= a.hops());
    }

    #[test]
    fn indexed_ingress_matches_linear_scan() {
        let cfg = ConstellationConfig::starlink();
        let prop = IdealPropagator::new(cfg.clone());
        let relay = GeoRelay::for_shell(&cfg);
        let dst = GeoPoint::from_degrees(48.9, 2.4);
        for (lat, lon, t) in [
            (40.0, -100.0, 0.0),
            (-33.9, 151.2, 600.0),
            (0.0, 0.0, 1234.5),
            (52.5, 13.4, 4321.0),
        ] {
            let src = GeoPoint::from_degrees(lat, lon);
            // Linear reference: front-to-back scan, strict improvement.
            let snapshot = prop.snapshot(t);
            let mut best: Option<(f64, usize)> = None;
            for (i, st) in snapshot.iter().enumerate() {
                let e = sc_geo::sphere::elevation_angle(&src, &st.position);
                if e >= cfg.min_elevation_rad && best.is_none_or(|(be, _)| e > be) {
                    best = Some((e, i));
                }
            }
            let constellation = Constellation::new(cfg.clone());
            let expected = best.map(|(_, i)| constellation.sat_at(i));
            let got = relay
                .deliver_ground_to_ground(&prop, &src, &dst, t, 1.0)
                .map(|tr| tr.path[0]);
            assert_eq!(got, expected, "src ({lat}, {lon}) t={t}");
        }
    }

    #[test]
    fn recorder_counts_packets_hops_and_delay() {
        let prop = starlink();
        let rec = sc_obs::Recorder::new();
        let relay = GeoRelay::for_shell(prop.config()).with_recorder(rec.clone());
        let dst = prop.state(SatId::new(40, 10), 0.0).coord;
        let tr = relay.trace(&prop, SatId::new(0, 0), dst, 0.0, 1.0);
        assert!(tr.delivered);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("spacecore.relay.packets"), 1);
        assert_eq!(snap.counter("spacecore.relay.delivered"), 1);
        assert_eq!(snap.counter("spacecore.relay.expired"), 0);
        let hops = snap.histogram("spacecore.relay.hops");
        assert_eq!(hops.and_then(|h| h.max()), Some(tr.hops() as f64));
        let delay = snap.histogram("spacecore.relay.delay_ms");
        assert_eq!(delay.map(|h| h.sum()), Some(tr.delay_ms));
    }

    #[test]
    fn packet_spans_decompose_the_route() {
        let prop = starlink();
        let rec = sc_obs::Recorder::new();
        let relay = GeoRelay::for_shell(prop.config()).with_recorder(rec.clone());
        let dst = prop.state(SatId::new(40, 10), 0.0).coord;
        let tr = relay.trace(&prop, SatId::new(0, 0), dst, 0.0, 1.0);
        assert!(tr.delivered);
        let s = rec.snapshot();
        let root = &s.spans[0];
        assert_eq!(root.kind, "spacecore.relay.packet");
        assert_eq!(root.parent, None);
        assert_eq!(root.end, Some(tr.delay_ms));
        // One hop span per ISL hop, all parented on the packet, and
        // their widths add up to the trace's total delay.
        let hops: Vec<_> = s
            .spans
            .iter()
            .filter(|sp| sp.kind == "spacecore.relay.hop")
            .collect();
        assert_eq!(hops.len(), tr.hops());
        let mut acc = 0.0;
        for h in &hops {
            assert_eq!(h.parent, Some(root.id));
            assert!((h.start - acc).abs() < 1e-9);
            acc = h.end.unwrap_or(f64::NAN);
        }
        assert!((acc - tr.delay_ms).abs() < 1e-9, "{acc} vs {}", tr.delay_ms);
        // Tracing does not change the outcome.
        let plain = GeoRelay::for_shell(prop.config());
        assert_eq!(plain.trace(&prop, SatId::new(0, 0), dst, 0.0, 1.0), tr);
    }

    #[test]
    fn path_moves_through_grid_neighbors_only() {
        let prop = starlink();
        let relay = GeoRelay::for_shell(prop.config());
        let constellation = Constellation::new(prop.config().clone());
        let dst = prop.state(SatId::new(20, 15), 0.0).coord;
        let tr = relay.trace(&prop, SatId::new(2, 3), dst, 0.0, 1.0);
        for w in tr.path.windows(2) {
            assert!(
                constellation.grid_neighbors(w[0]).contains(&w[1]),
                "{:?} -> {:?} is not a grid hop",
                w[0],
                w[1]
            );
        }
    }
}
