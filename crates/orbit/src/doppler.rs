//! Doppler and range-rate geometry for LEO links.
//!
//! At 7.5 km/s, LEO satellites impose Doppler shifts of up to ±~21 ppm
//! of the carrier on ground links — one of the radio problems 5G NTN
//! (the paper's Option 1 substrate) standardizes compensation for.
//! The emulation uses range-rate for two things: handover-imminence
//! prediction (a satellite with a strongly positive range-rate is
//! leaving) and link-quality weighting.

use crate::propagator::Propagator;
use crate::SatId;
use sc_geo::sphere::{GeoPoint, SPEED_OF_LIGHT_KM_S};

/// Range rate (km/s) of a satellite relative to a ground point at time
/// `t`: positive = receding. Computed by symmetric finite difference.
pub fn range_rate_km_s(prop: &dyn Propagator, sat: SatId, ground: &GeoPoint, t: f64) -> f64 {
    let dt = 0.5;
    let gp = ground.surface_vector();
    let r1 = prop.state(sat, t - dt).position.distance_km(&gp);
    let r2 = prop.state(sat, t + dt).position.distance_km(&gp);
    (r2 - r1) / (2.0 * dt)
}

/// Doppler shift in Hz for a carrier of `carrier_hz`, from the range
/// rate (non-relativistic: Δf = −f·v/c).
pub fn doppler_hz(range_rate_km_s: f64, carrier_hz: f64) -> f64 {
    -carrier_hz * range_rate_km_s / SPEED_OF_LIGHT_KM_S
}

/// Is the satellite leaving (handover imminent)? True when the range
/// rate exceeds `threshold_km_s` (receding fast).
pub fn handover_imminent(
    prop: &dyn Propagator,
    sat: SatId,
    ground: &GeoPoint,
    t: f64,
    threshold_km_s: f64,
) -> bool {
    range_rate_km_s(prop, sat, ground, t) > threshold_km_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constellation::ConstellationConfig;
    use crate::coverage::CoverageModel;
    use crate::propagator::IdealPropagator;

    #[test]
    fn range_rate_bounded_by_orbital_speed() {
        let prop = IdealPropagator::new(ConstellationConfig::starlink());
        let g = GeoPoint::from_degrees(40.0, -100.0);
        for t in [1.0f64, 500.0, 1000.0] {
            for plane in [0u16, 20, 50] {
                let rr = range_rate_km_s(&prop, SatId::new(plane, 5), &g, t);
                assert!(rr.abs() <= 8.0, "{rr}");
            }
        }
    }

    #[test]
    fn approaching_then_receding_over_a_pass() {
        // Find a serving satellite and check its range rate flips sign
        // across the pass (approach → overhead → recede).
        let prop = IdealPropagator::new(ConstellationConfig::starlink());
        let cov = CoverageModel::new(&prop);
        let g = GeoPoint::from_degrees(40.0, -100.0);
        let view = cov.serving_sat(&g, 300.0).expect("covered");
        // Scan the satellite's range-rate over ±200 s around now.
        let before = range_rate_km_s(&prop, view.sat, &g, 150.0);
        let after = range_rate_km_s(&prop, view.sat, &g, 450.0);
        // Somewhere in the window the sign changes (not necessarily at
        // 300 s; allow either orientation).
        assert!(
            before.signum() != after.signum() || before.abs() < 1.0 || after.abs() < 1.0,
            "before {before} after {after}"
        );
    }

    #[test]
    fn doppler_magnitude_at_2ghz() {
        // ±7.5 km/s at 2 GHz → up to ±50 kHz.
        let f = doppler_hz(7.5, 2.0e9);
        assert!((f.abs() - 50_000.0).abs() < 5_000.0, "{f}");
        // Sign: receding → negative shift.
        assert!(f < 0.0);
        assert!(doppler_hz(-7.5, 2.0e9) > 0.0);
    }

    #[test]
    fn handover_imminence_flags_leaving_satellites() {
        let prop = IdealPropagator::new(ConstellationConfig::starlink());
        let g = GeoPoint::from_degrees(40.0, -100.0);
        let cov = CoverageModel::new(&prop);
        if let Some(view) = cov.serving_sat(&g, 100.0) {
            // Scan forward until it recedes fast; within a transit it
            // must eventually be flagged.
            let flagged = (0..40)
                .any(|k| handover_imminent(&prop, view.sat, &g, 100.0 + k as f64 * 10.0, 3.0));
            assert!(flagged, "satellite never flagged as leaving");
        }
    }
}
