//! Space-ground coverage and visibility.
//!
//! Answers the questions the emulation asks constantly: *which satellite
//! serves this ground point right now*, *with what elevation and slant
//! range*, and *how long does one satellite's coverage transit last* (the
//! paper's "~165.8 s in Starlink" per-satellite coverage for a static
//! user, §3.2).

use crate::constellation::{Constellation, SatId};
use crate::index::{IndexedSnapshot, SatMask, PREFILTER_MARGIN_RAD};
use crate::propagator::{Propagator, SatState};
use sc_geo::sphere::{coverage_half_angle, elevation_angle, GeoPoint};

/// A satellite as seen from a ground point at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SatView {
    /// Which satellite.
    pub sat: SatId,
    /// Elevation angle above the ground point's horizon, radians.
    pub elevation_rad: f64,
    /// Straight-line (slant) distance, km.
    pub slant_km: f64,
}

/// Canonical visibility ordering: descending elevation, then ascending
/// [`SatId`]. Total (handles any f64) and tie-free, so the linear and
/// indexed query paths sort to the same sequence no matter what order
/// candidates were gathered in.
fn view_order(a: &SatView, b: &SatView) -> std::cmp::Ordering {
    b.elevation_rad
        .total_cmp(&a.elevation_rad)
        .then_with(|| a.sat.cmp(&b.sat))
}

/// Coverage queries over a propagator.
pub struct CoverageModel<'a> {
    prop: &'a dyn Propagator,
    constellation: Constellation,
    min_elevation: f64,
    /// Central-angle threshold used as a cheap pre-filter before the
    /// exact elevation test.
    max_central_angle: f64,
}

impl<'a> CoverageModel<'a> {
    pub fn new(prop: &'a dyn Propagator) -> Self {
        let cfg = prop.config().clone();
        let min_elevation = cfg.min_elevation_rad;
        let max_central_angle = coverage_half_angle(cfg.altitude_km, min_elevation);
        Self {
            prop,
            constellation: Constellation::new(cfg),
            min_elevation,
            max_central_angle,
        }
    }

    /// The minimum service elevation, radians.
    pub fn min_elevation(&self) -> f64 {
        self.min_elevation
    }

    /// Coverage half-angle: max central angle between sub-point and a
    /// served ground point, radians.
    pub fn coverage_half_angle(&self) -> f64 {
        self.max_central_angle
    }

    /// Footprint radius on the ground, km.
    pub fn footprint_radius_km(&self) -> f64 {
        self.max_central_angle * sc_geo::EARTH_RADIUS_KM
    }

    /// All satellites visible above the minimum elevation from `p` at `t`,
    /// sorted by descending elevation.
    pub fn visible_sats(&self, p: &GeoPoint, t: f64) -> Vec<SatView> {
        let snapshot = self.prop.snapshot(t);
        self.visible_from_snapshot(&snapshot, p)
    }

    /// Like [`Self::visible_sats`] but against a pre-computed snapshot
    /// (use when querying many points at the same instant).
    pub fn visible_from_snapshot(&self, snapshot: &[SatState], p: &GeoPoint) -> Vec<SatView> {
        let mut out = Vec::new();
        for (i, st) in snapshot.iter().enumerate() {
            if let Some(v) = self.view_of(i, st, p) {
                out.push(v);
            }
        }
        out.sort_by(view_order);
        out
    }

    /// Like [`Self::visible_from_snapshot`] but consulting the spatial
    /// index, so only satellites near `p` are examined. Returns exactly
    /// the linear-scan result: same satellites, same order.
    pub fn visible_from_indexed(&self, snapshot: &IndexedSnapshot, p: &GeoPoint) -> Vec<SatView> {
        debug_assert!(
            snapshot.query_radius() >= self.max_central_angle + PREFILTER_MARGIN_RAD - 1e-12,
            "index radius too small for this coverage model"
        );
        let mut out = Vec::new();
        snapshot.for_each_candidate(p, |i, st| {
            if let Some(v) = self.view_of(i, st, p) {
                out.push(v);
            }
        });
        out.sort_by(view_order);
        out
    }

    /// The acceptance predicate every visibility path shares: the
    /// central-angle prefilter then the elevation threshold. Returns
    /// the elevation when the satellite is visible.
    fn visible_elevation(&self, st: &SatState, p: &GeoPoint) -> Option<f64> {
        // Cheap central-angle pre-filter on the sub-point.
        if p.central_angle(&st.subpoint) > self.max_central_angle + PREFILTER_MARGIN_RAD {
            return None;
        }
        let elev = elevation_angle(p, &st.position);
        (elev >= self.min_elevation).then_some(elev)
    }

    /// Exact visibility test for one satellite. Shared by the linear and
    /// indexed paths so they accept exactly the same satellites.
    fn view_of(&self, i: usize, st: &SatState, p: &GeoPoint) -> Option<SatView> {
        self.visible_elevation(st, p).map(|elev| SatView {
            sat: self.constellation.sat_at(i),
            elevation_rad: elev,
            slant_km: st.position.distance_km(&p.surface_vector()),
        })
    }

    /// Membership-only visibility: the set of satellites visible from
    /// `p`, as a [`SatMask`] over snapshot indices. Accepts exactly the
    /// satellites of [`Self::visible_from_indexed`] (same predicate),
    /// but skips the per-view slant ranges, structs, and sort — the
    /// bitset kernel for sweeps that only need "who can see whom".
    pub fn visibility_mask(&self, snapshot: &IndexedSnapshot, p: &GeoPoint) -> SatMask {
        debug_assert!(
            snapshot.query_radius() >= self.max_central_angle + PREFILTER_MARGIN_RAD - 1e-12,
            "index radius too small for this coverage model"
        );
        let mut mask = SatMask::empty(snapshot.states().len());
        snapshot.for_each_candidate(p, |i, st| {
            if self.visible_elevation(st, p).is_some() {
                mask.set(i);
            }
        });
        mask
    }

    /// The serving satellite (highest elevation), if any is visible.
    pub fn serving_sat(&self, p: &GeoPoint, t: f64) -> Option<SatView> {
        self.visible_sats(p, t).into_iter().next()
    }

    /// Serving satellite against a pre-computed snapshot.
    pub fn serving_from_snapshot(&self, snapshot: &[SatState], p: &GeoPoint) -> Option<SatView> {
        self.visible_from_snapshot(snapshot, p).into_iter().next()
    }

    /// Serving satellite via the spatial index; selects by the same
    /// canonical order as the sorted visibility list, without sorting.
    pub fn serving_from_indexed(&self, snapshot: &IndexedSnapshot, p: &GeoPoint) -> Option<SatView> {
        debug_assert!(
            snapshot.query_radius() >= self.max_central_angle + PREFILTER_MARGIN_RAD - 1e-12,
            "index radius too small for this coverage model"
        );
        let mut best: Option<SatView> = None;
        snapshot.for_each_candidate(p, |i, st| {
            if let Some(v) = self.view_of(i, st, p) {
                if best
                    .as_ref()
                    .is_none_or(|b| view_order(&v, b) == std::cmp::Ordering::Less)
                {
                    best = Some(v);
                }
            }
        });
        best
    }

    /// Mean single-satellite coverage transit time for a static user, s:
    /// the time the sub-point takes to sweep a mean chord of the
    /// footprint. For Starlink parameters this lands near the paper's
    /// observed 165.8 s.
    pub fn mean_transit_s(&self) -> f64 {
        let cfg = self.prop.config();
        // Ground-track speed of the sub-point (ignoring earth rotation,
        // a few % effect): v_g = n · Re.
        let vg = cfg.mean_motion_rad_s() * sc_geo::EARTH_RADIUS_KM;
        // Mean chord of a circle = (π/4)·diameter.
        let mean_chord = std::f64::consts::FRAC_PI_4 * 2.0 * self.footprint_radius_km();
        mean_chord / vg
    }
}

/// The sat×cell visibility table: one [`SatMask`] per ground cell,
/// built once per snapshot and aggregated with popcounts.
///
/// This is the batch form of [`CoverageModel::visibility_mask`] for
/// sweep engines that ask coverage questions over many ground points at
/// one instant — covered-cell fractions, mean visible-satellite counts,
/// which satellites serve anyone at all — without materializing sorted
/// view lists per point.
#[derive(Debug, Clone)]
pub struct CoverageGrid {
    masks: Vec<SatMask>,
    nsats: usize,
}

impl CoverageGrid {
    /// Build the table for `cells` against one indexed snapshot.
    pub fn build(cov: &CoverageModel<'_>, snapshot: &IndexedSnapshot, cells: &[GeoPoint]) -> Self {
        Self {
            masks: cells
                .iter()
                .map(|p| cov.visibility_mask(snapshot, p))
                .collect(),
            nsats: snapshot.states().len(),
        }
    }

    /// Number of ground cells.
    pub fn cells(&self) -> usize {
        self.masks.len()
    }

    /// Number of satellite indices each mask covers.
    pub fn sats(&self) -> usize {
        self.nsats
    }

    /// The visibility mask of one cell.
    pub fn mask(&self, cell: usize) -> &SatMask {
        &self.masks[cell]
    }

    /// Satellites visible from `cell` (popcount).
    pub fn visible_count(&self, cell: usize) -> usize {
        self.masks[cell].count()
    }

    /// Cells with at least one visible satellite.
    pub fn covered_cells(&self) -> usize {
        self.masks.iter().filter(|m| !m.is_empty()).count()
    }

    /// Mean visible satellites per cell (0 for an empty grid).
    pub fn mean_visible(&self) -> f64 {
        if self.masks.is_empty() {
            return 0.0;
        }
        self.masks.iter().map(SatMask::count).sum::<usize>() as f64 / self.masks.len() as f64
    }

    /// Union over all cells: the satellites visible from anywhere in
    /// the grid.
    pub fn sat_usage(&self) -> SatMask {
        let mut u = SatMask::empty(self.nsats);
        for m in &self.masks {
            u.union_with(m);
        }
        u
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constellation::ConstellationConfig;
    use crate::propagator::IdealPropagator;

    #[test]
    fn mask_matches_visible_from_indexed() {
        let prop = IdealPropagator::new(ConstellationConfig::starlink());
        let cov = CoverageModel::new(&prop);
        let snap = IndexedSnapshot::build(&prop, 500.0);
        for &(lat, lon) in &[(40.0, -100.0), (0.0, 0.0), (-35.0, 150.0), (89.0, 0.0)] {
            let p = GeoPoint::from_degrees(lat, lon);
            let views = cov.visible_from_indexed(&snap, &p);
            let mask = cov.visibility_mask(&snap, &p);
            assert_eq!(mask.count(), views.len(), "({lat},{lon})");
            let c = Constellation::new(prop.config().clone());
            for v in &views {
                let i = c.index_of(v.sat);
                assert!(mask.contains(i), "sat {:?} missing from mask", v.sat);
            }
        }
    }

    #[test]
    fn grid_popcounts_match_per_point_queries() {
        let prop = IdealPropagator::new(ConstellationConfig::iridium());
        let cov = CoverageModel::new(&prop);
        let snap = IndexedSnapshot::build(&prop, 123.0);
        let cells: Vec<GeoPoint> = [(50.0, 5.0), (88.0, 10.0), (-20.0, -60.0), (0.0, -140.0)]
            .iter()
            .map(|&(la, lo)| GeoPoint::from_degrees(la, lo))
            .collect();
        let grid = CoverageGrid::build(&cov, &snap, &cells);
        assert_eq!(grid.cells(), cells.len());
        assert_eq!(grid.sats(), snap.states().len());
        let mut covered = 0;
        let mut total = 0;
        for (i, p) in cells.iter().enumerate() {
            let views = cov.visible_from_indexed(&snap, p);
            assert_eq!(grid.visible_count(i), views.len());
            assert_eq!(grid.mask(i), &cov.visibility_mask(&snap, p));
            if !views.is_empty() {
                covered += 1;
            }
            total += views.len();
        }
        assert_eq!(grid.covered_cells(), covered);
        assert!((grid.mean_visible() - total as f64 / cells.len() as f64).abs() < 1e-12);
        // Union popcount never exceeds the sum and never undercounts a
        // cell's own mask.
        let usage = grid.sat_usage();
        assert!(usage.count() <= total);
        for i in 0..cells.len() {
            assert_eq!(grid.mask(i).intersection_count(&usage), grid.visible_count(i));
        }
    }

    #[test]
    fn starlink_covers_midlatitude_point() {
        let prop = IdealPropagator::new(ConstellationConfig::starlink());
        let cov = CoverageModel::new(&prop);
        let p = GeoPoint::from_degrees(40.0, -100.0);
        // Over a few minutes, some satellite should always cover a
        // CONUS point given 1584 satellites.
        let mut covered = 0;
        for k in 0..10 {
            if cov.serving_sat(&p, k as f64 * 60.0).is_some() {
                covered += 1;
            }
        }
        assert!(covered >= 8, "covered only {covered}/10 samples");
    }

    #[test]
    fn no_coverage_at_poles_for_inclined_shell() {
        let prop = IdealPropagator::new(ConstellationConfig::starlink());
        let cov = CoverageModel::new(&prop);
        let pole = GeoPoint::from_degrees(89.0, 0.0);
        assert!(cov.serving_sat(&pole, 0.0).is_none());
    }

    #[test]
    fn iridium_covers_poles() {
        let prop = IdealPropagator::new(ConstellationConfig::iridium());
        let cov = CoverageModel::new(&prop);
        let pole = GeoPoint::from_degrees(88.0, 10.0);
        let mut covered = 0;
        for k in 0..20 {
            if cov.serving_sat(&pole, k as f64 * 120.0).is_some() {
                covered += 1;
            }
        }
        assert!(covered >= 12, "polar coverage {covered}/20");
    }

    #[test]
    fn serving_sat_is_highest_elevation() {
        let prop = IdealPropagator::new(ConstellationConfig::starlink());
        let cov = CoverageModel::new(&prop);
        let p = GeoPoint::from_degrees(35.0, 20.0);
        if let Some(best) = cov.serving_sat(&p, 500.0) {
            for v in cov.visible_sats(&p, 500.0) {
                assert!(v.elevation_rad <= best.elevation_rad + 1e-12);
            }
        }
    }

    #[test]
    fn transit_time_matches_paper_scale() {
        // Paper: "each LEO satellite only has transient coverage
        // (~165.8 s in Starlink)".
        let prop = IdealPropagator::new(ConstellationConfig::starlink());
        let cov = CoverageModel::new(&prop);
        let t = cov.mean_transit_s();
        assert!((100.0..260.0).contains(&t), "transit {t} s");
    }

    #[test]
    fn snapshot_and_direct_agree() {
        let prop = IdealPropagator::new(ConstellationConfig::iridium());
        let cov = CoverageModel::new(&prop);
        let p = GeoPoint::from_degrees(50.0, 5.0);
        let snap = prop.snapshot(777.0);
        assert_eq!(
            cov.visible_from_snapshot(&snap, &p),
            cov.visible_sats(&p, 777.0)
        );
    }

    #[test]
    fn slant_range_bounds() {
        let prop = IdealPropagator::new(ConstellationConfig::starlink());
        let cov = CoverageModel::new(&prop);
        let p = GeoPoint::from_degrees(30.0, 110.0);
        for v in cov.visible_sats(&p, 100.0) {
            // Slant range between altitude (zenith) and the geometric
            // maximum at min elevation.
            assert!(v.slant_km >= 550.0 - 1.0);
            assert!(v.slant_km <= 1600.0, "{}", v.slant_km);
        }
    }
}
