//! Orbit propagators: ideal circular two-body, and J2/J4 secular.
//!
//! The paper evaluates Algorithm 1 "under the ideal satellite orbits and
//! the realistic J4 orbit propagator" (§6.2, Fig. 18b). Both propagators
//! here produce earth-fixed (ECEF) positions and — crucially for
//! Algorithm 1 — the satellite's *runtime inclined coordinate*
//! `(α_s(t), γ_s(t))`, which the stateless relay uses to self-calibrate
//! against perturbations.
//!
//! The J4 propagator applies the standard secular rates (Vallado §9.6,
//! circular-orbit simplification, e = 0):
//!
//! * nodal regression  Ω̇ = −(3/2)·J₂·n·(Re/a)²·cos i  + J₄ correction,
//! * in-plane drift    u̇ = n·[1 + (3/2)·J₂·(Re/a)²·(1 − (3/2)sin²i)] + J₄ corr.
//!
//! Secular rates are exactly what matters at the paper's time scales
//! (minutes–hours): short-period oscillations average out, while the
//! node/phase drifts are what displace satellites from the t = 0 grid.

use crate::constellation::{ConstellationConfig, SatId, EARTH_ROTATION_RAD_S};
use sc_geo::angle::wrap_2pi;
use sc_geo::inclined::{InclinedCoord, InclinedFrame};
use sc_geo::sphere::{GeoPoint, Vec3};

/// Earth J2 zonal harmonic coefficient.
pub const J2: f64 = 1.082_626_68e-3;
/// Earth J4 zonal harmonic coefficient.
pub const J4: f64 = -1.649_7e-6;
/// Earth equatorial radius used by the zonal model, km.
pub const RE_KM: f64 = 6378.137;

/// Instantaneous state of one satellite at a given time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SatState {
    /// ECEF position, km.
    pub position: Vec3,
    /// Runtime inclined coordinate (α_s(t), γ_s(t)) in the earth-fixed
    /// frame — what Algorithm 1 consumes.
    pub coord: InclinedCoord,
    /// Ground sub-point.
    pub subpoint: GeoPoint,
}

/// An orbit propagator for a uniform constellation shell.
pub trait Propagator: Send + Sync {
    /// The shell this propagator describes.
    fn config(&self) -> &ConstellationConfig;

    /// RAAN (inertial) of a plane at time `t` seconds after epoch.
    fn raan(&self, plane: u16, t: f64) -> f64;

    /// Argument of latitude of a satellite at time `t`.
    fn arg_lat(&self, sat: SatId, t: f64) -> f64;

    /// Full state of a satellite at time `t` (seconds after epoch).
    fn state(&self, sat: SatId, t: f64) -> SatState {
        let cfg = self.config();
        let raan = self.raan(sat.plane, t);
        let u = self.arg_lat(sat, t);
        // Earth-fixed ascending-node longitude: inertial RAAN minus the
        // rotation of the earth since epoch.
        let alpha = wrap_2pi(raan - EARTH_ROTATION_RAD_S * t);
        let gamma = wrap_2pi(u);
        let frame = InclinedFrame::new(cfg.inclination_rad);
        let coord = InclinedCoord::new(alpha, gamma);
        let subpoint = frame.to_geo(coord);
        let position = subpoint.unit_vector().scale(cfg.orbit_radius_km());
        SatState {
            position,
            coord,
            subpoint,
        }
    }

    /// States of every satellite in the shell at time `t`, plane-major.
    fn snapshot(&self, t: f64) -> Vec<SatState> {
        let cfg = self.config();
        let mut v = Vec::with_capacity(cfg.total_sats());
        for p in 0..cfg.planes {
            for s in 0..cfg.sats_per_plane {
                v.push(self.state(SatId::new(p, s), t));
            }
        }
        v
    }
}

/// Ideal circular two-body propagation: fixed planes, uniform motion.
#[derive(Debug, Clone)]
pub struct IdealPropagator {
    cfg: ConstellationConfig,
    mean_motion: f64,
}

impl IdealPropagator {
    pub fn new(cfg: ConstellationConfig) -> Self {
        let mean_motion = cfg.mean_motion_rad_s();
        Self { cfg, mean_motion }
    }
}

impl Propagator for IdealPropagator {
    fn config(&self) -> &ConstellationConfig {
        &self.cfg
    }

    fn raan(&self, plane: u16, _t: f64) -> f64 {
        self.cfg.raan_at_epoch(plane)
    }

    fn arg_lat(&self, sat: SatId, t: f64) -> f64 {
        wrap_2pi(self.cfg.arg_lat_at_epoch(sat) + self.mean_motion * t)
    }
}

/// J2/J4 secular perturbation propagator (circular-orbit simplification).
#[derive(Debug, Clone)]
pub struct J4Propagator {
    cfg: ConstellationConfig,
    /// Secular nodal-regression rate Ω̇, rad/s.
    raan_rate: f64,
    /// Perturbed in-plane angular rate u̇, rad/s.
    arg_lat_rate: f64,
}

impl J4Propagator {
    pub fn new(cfg: ConstellationConfig) -> Self {
        let n = cfg.mean_motion_rad_s();
        let a = cfg.orbit_radius_km();
        let i = cfg.inclination_rad;
        let (si, ci) = i.sin_cos();
        let p2 = (RE_KM / a).powi(2);
        let p4 = p2 * p2;

        // J2 secular rates (e = 0).
        let raan_j2 = -1.5 * J2 * n * p2 * ci;
        let m_j2 = n * (1.0 + 1.5 * J2 * p2 * (1.0 - 1.5 * si * si));
        let argp_j2 = 0.75 * J2 * n * p2 * (5.0 * ci * ci - 1.0);

        // J4 secular contributions (Vallado 9-42, e = 0 truncation).
        let raan_j4 = n * ci * p4 * (1.5 * J2 * J2 * (1.5 - (5.0 / 3.0) * si * si)
            + (35.0 / 8.0) * J4 * ((12.0 / 7.0) * si * si - 1.0) * 0.5);
        let argp_j4 = n * p4
            * ((9.0 / 4.0) * J2 * J2 * (1.5 - 2.5 * si * si + (13.0 / 8.0) * si.powi(4))
                - (45.0 / 16.0) * J4 * (1.0 - 4.5 * si * si + 3.9 * si.powi(4)) / 4.0);

        // For circular orbits the in-plane phase drifts at u̇ = Ṁ + ω̇.
        Self {
            cfg,
            raan_rate: raan_j2 + raan_j4,
            arg_lat_rate: m_j2 + argp_j2 + argp_j4,
        }
    }

    /// The modeled nodal-regression rate, rad/s (negative for prograde
    /// orbits: the node drifts westward).
    pub fn raan_rate(&self) -> f64 {
        self.raan_rate
    }

    /// The modeled in-plane angular rate, rad/s.
    pub fn arg_lat_rate(&self) -> f64 {
        self.arg_lat_rate
    }
}

impl Propagator for J4Propagator {
    fn config(&self) -> &ConstellationConfig {
        &self.cfg
    }

    fn raan(&self, plane: u16, t: f64) -> f64 {
        wrap_2pi(self.cfg.raan_at_epoch(plane) + self.raan_rate * t)
    }

    fn arg_lat(&self, sat: SatId, t: f64) -> f64 {
        wrap_2pi(self.cfg.arg_lat_at_epoch(sat) + self.arg_lat_rate * t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constellation::Constellation;

    fn starlink_ideal() -> IdealPropagator {
        IdealPropagator::new(ConstellationConfig::starlink())
    }

    #[test]
    fn altitude_is_respected() {
        let p = starlink_ideal();
        let s = p.state(SatId::new(0, 0), 0.0);
        assert!((s.position.norm() - (sc_geo::EARTH_RADIUS_KM + 550.0)).abs() < 1e-6);
    }

    #[test]
    fn epoch_positions_match_walker_layout() {
        let p = starlink_ideal();
        let s00 = p.state(SatId::new(0, 0), 0.0);
        // Plane 0, slot 0 starts at the ascending node of plane 0: on the
        // equator at α = 0.
        assert!(s00.subpoint.lat.abs() < 1e-9);
        assert!((s00.coord.alpha).abs() < 1e-9);
        assert!((s00.coord.gamma).abs() < 1e-9);
    }

    #[test]
    fn one_period_returns_in_plane_phase() {
        let p = starlink_ideal();
        let t = p.config().period_s();
        let s = p.state(SatId::new(3, 5), t);
        let s0 = p.state(SatId::new(3, 5), 0.0);
        // Same γ after a full period…
        assert!(
            (s.coord.gamma - s0.coord.gamma).abs() < 1e-6
                || (s.coord.gamma - s0.coord.gamma).abs() > std::f64::consts::TAU - 1e-6
        );
        // …but α shifted west by earth rotation over one period.
        let expected_shift = EARTH_ROTATION_RAD_S * t;
        let got = wrap_2pi(s0.coord.alpha - s.coord.alpha);
        assert!((got - expected_shift).abs() < 1e-6, "{got} vs {expected_shift}");
    }

    #[test]
    fn ground_speed_sweeps_coverage_in_minutes() {
        // The sub-point should move ~7 km/s along track, so in 60 s the
        // sub-point travels ≈ 400-460 km.
        let p = starlink_ideal();
        let a = p.state(SatId::new(0, 0), 0.0).subpoint;
        let b = p.state(SatId::new(0, 0), 60.0).subpoint;
        let d = a.distance_km(&b);
        assert!((350.0..500.0).contains(&d), "{d}");
    }

    #[test]
    fn j4_regresses_node_westward() {
        let j4 = J4Propagator::new(ConstellationConfig::starlink());
        // Starlink at 53°: nodal regression ≈ -5°/day.
        let per_day = j4.raan_rate() * 86_400.0;
        let deg = per_day.to_degrees();
        assert!((-6.5..-3.5).contains(&deg), "{deg}°/day");
    }

    #[test]
    fn j4_near_polar_regression_is_small() {
        let j4 = J4Propagator::new(ConstellationConfig::oneweb());
        let deg = (j4.raan_rate() * 86_400.0).to_degrees();
        // Near-polar (87.9°): |Ω̇| well under 1°/day.
        assert!(deg.abs() < 1.0, "{deg}°/day");
    }

    #[test]
    fn j4_diverges_from_ideal_over_time() {
        let cfg = ConstellationConfig::starlink();
        let ideal = IdealPropagator::new(cfg.clone());
        let j4 = J4Propagator::new(cfg);
        let sat = SatId::new(10, 10);
        let t = 6.0 * 3600.0; // 6 hours
        let a = ideal.state(sat, t).position;
        let b = j4.state(sat, t).position;
        let sep = a.distance_km(&b);
        assert!(sep > 10.0, "expected visible drift, got {sep} km");
        // …but bounded: secular drift, not divergence.
        assert!(sep < 3000.0, "{sep} km");
    }

    #[test]
    fn snapshot_covers_all_sats() {
        let p = starlink_ideal();
        let snap = p.snapshot(123.0);
        assert_eq!(snap.len(), 1584);
        let c = Constellation::new(p.config().clone());
        let idx = c.index_of(SatId::new(5, 7));
        let direct = p.state(SatId::new(5, 7), 123.0);
        assert_eq!(snap[idx], direct);
    }

    #[test]
    fn intra_plane_neighbors_stay_equidistant() {
        // Uniform in-plane motion preserves in-plane spacing, ideal and J4.
        for prop in [
            Box::new(IdealPropagator::new(ConstellationConfig::starlink())) as Box<dyn Propagator>,
            Box::new(J4Propagator::new(ConstellationConfig::starlink())),
        ] {
            let t = 1234.5;
            let a = prop.state(SatId::new(4, 0), t).position;
            let b = prop.state(SatId::new(4, 1), t).position;
            let c = prop.state(SatId::new(4, 2), t).position;
            assert!((a.distance_km(&b) - b.distance_km(&c)).abs() < 1e-6);
        }
    }
}
