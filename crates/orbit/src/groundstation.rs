//! Ground stations (terrestrial gateways / homes).
//!
//! The paper's emulation uses the published Starlink gateway distribution
//! (\[78\] in the paper). We embed a representative set of 30 gateway
//! locations with the same geographic character: clustered in North
//! America and Europe, sparse in Oceania/South America/Africa — the
//! asymmetry that makes ground stations the bottleneck in §3.1.

use sc_geo::sphere::GeoPoint;

/// One terrestrial gateway / ground station.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundStation {
    /// Short name.
    pub name: &'static str,
    /// Location on the surface.
    pub location: GeoPoint,
}

impl GroundStation {
    pub fn new(name: &'static str, lat_deg: f64, lon_deg: f64) -> Self {
        Self {
            name,
            location: GeoPoint::from_degrees(lat_deg, lon_deg),
        }
    }
}

/// A set of ground stations with lookup helpers.
#[derive(Debug, Clone)]
pub struct GroundStationSet {
    stations: Vec<GroundStation>,
}

impl GroundStationSet {
    pub fn new(stations: Vec<GroundStation>) -> Self {
        assert!(!stations.is_empty(), "need at least one ground station");
        Self { stations }
    }

    /// The default 30-gateway set modeled on published Starlink gateways.
    pub fn starlink_like() -> Self {
        Self::new(vec![
            // North America (dense, as in the published gateway maps)
            GroundStation::new("north-bend-wa", 47.5, -121.8),
            GroundStation::new("merrillan-wi", 44.5, -90.8),
            GroundStation::new("greenville-pa", 41.4, -80.4),
            GroundStation::new("hawthorne-ca", 33.9, -118.4),
            GroundStation::new("boca-chica-tx", 26.0, -97.2),
            GroundStation::new("kuttawa-ky", 37.1, -88.1),
            GroundStation::new("conrad-mt", 48.2, -111.9),
            GroundStation::new("baxley-ga", 31.8, -82.3),
            GroundStation::new("gaffney-sc", 35.1, -81.6),
            GroundStation::new("wrangell-ak", 56.5, -132.4),
            GroundStation::new("st-johns-ca", 47.6, -52.7),
            GroundStation::new("winnipeg-mb", 49.9, -97.1),
            // Europe
            GroundStation::new("fawley-uk", 50.8, -1.3),
            GroundStation::new("villenave-fr", 44.8, -0.6),
            GroundStation::new("frankfurt-de", 50.1, 8.7),
            GroundStation::new("turin-it", 45.1, 7.7),
            GroundStation::new("madrid-es", 40.4, -3.7),
            GroundStation::new("gravberget-no", 60.7, 12.0),
            // Asia-Pacific
            GroundStation::new("tokyo-jp", 35.7, 139.7),
            GroundStation::new("beijing-cn", 39.9, 116.4),
            GroundStation::new("singapore-sg", 1.35, 103.8),
            GroundStation::new("mumbai-in", 19.1, 72.9),
            // Oceania (sparse)
            GroundStation::new("boorowa-au", -34.4, 148.7),
            GroundStation::new("hinds-nz", -44.0, 171.6),
            // South & Central America (sparse)
            GroundStation::new("santiago-cl", -33.4, -70.7),
            GroundStation::new("sao-paulo-br", -23.5, -46.6),
            GroundStation::new("bogota-co", 4.7, -74.1),
            // Africa & Middle East (sparse)
            GroundStation::new("lagos-ng", 6.5, 3.4),
            GroundStation::new("nairobi-ke", -1.3, 36.8),
            GroundStation::new("doha-qa", 25.3, 51.5),
        ])
    }

    pub fn stations(&self) -> &[GroundStation] {
        &self.stations
    }

    pub fn len(&self) -> usize {
        self.stations.len()
    }

    pub fn is_empty(&self) -> bool {
        self.stations.is_empty()
    }

    /// The station nearest to a surface point (great-circle distance).
    pub fn nearest(&self, p: &GeoPoint) -> (&GroundStation, f64) {
        self.stations
            .iter()
            .map(|g| (g, g.location.distance_km(p)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("set is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_set_size() {
        let gs = GroundStationSet::starlink_like();
        assert_eq!(gs.len(), 30);
        assert!(!gs.is_empty());
    }

    #[test]
    fn nearest_picks_local_gateway() {
        let gs = GroundStationSet::starlink_like();
        let seattle = GeoPoint::from_degrees(47.6, -122.3);
        let (g, d) = gs.nearest(&seattle);
        assert_eq!(g.name, "north-bend-wa");
        assert!(d < 100.0, "{d}");
    }

    #[test]
    fn asymmetry_between_hemispheres() {
        // More gateways north of the equator than south — the asymmetry
        // driving the §3.1 bottleneck analysis.
        let gs = GroundStationSet::starlink_like();
        let north = gs.stations().iter().filter(|g| g.location.lat > 0.0).count();
        let south = gs.len() - north;
        assert!(north > 3 * south, "north {north} south {south}");
    }

    #[test]
    fn far_ocean_point_is_far_from_all_gateways() {
        let gs = GroundStationSet::starlink_like();
        let south_pacific = GeoPoint::from_degrees(-40.0, -130.0);
        let (_, d) = gs.nearest(&south_pacific);
        assert!(d > 3000.0, "{d}");
    }
}
