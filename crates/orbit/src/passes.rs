//! Pass prediction: when is a ground point served, by whom, for how long.
//!
//! The workload generators need satellite-sweep *events*, not just
//! rates: the exact times at which the serving satellite changes for a
//! static UE (each such change is a handover / legacy mobility
//! registration, §3.2). [`PassPredictor`] scans a propagator at a fixed
//! step and extracts serving intervals and switch times.

use crate::coverage::CoverageModel;
use crate::propagator::Propagator;
use crate::SatId;
use sc_geo::sphere::GeoPoint;

/// One serving interval of one satellite over a ground point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pass {
    pub sat: SatId,
    /// Serving start, seconds after epoch.
    pub start_s: f64,
    /// Serving end (exclusive), seconds after epoch.
    pub end_s: f64,
}

impl Pass {
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Scans serving satellites over time for a ground point.
pub struct PassPredictor<'a> {
    cov: CoverageModel<'a>,
    /// Scan step, seconds. Smaller = sharper pass edges.
    pub step_s: f64,
}

impl<'a> PassPredictor<'a> {
    pub fn new(prop: &'a dyn Propagator) -> Self {
        Self {
            cov: CoverageModel::new(prop),
            step_s: 10.0,
        }
    }

    /// Serving timeline of `point` over `[t0, t1]`: maximal intervals
    /// with a constant serving satellite. Gaps (no coverage) are simply
    /// absent from the list.
    pub fn passes(&self, point: &GeoPoint, t0: f64, t1: f64) -> Vec<Pass> {
        assert!(t1 >= t0 && self.step_s > 0.0);
        let mut out: Vec<Pass> = Vec::new();
        let mut current: Option<(SatId, f64)> = None;
        let mut t = t0;
        while t <= t1 {
            let serving = self.cov.serving_sat(point, t).map(|v| v.sat);
            match (current, serving) {
                (None, Some(s)) => current = Some((s, t)),
                (Some((cur, start)), Some(s)) if s != cur => {
                    out.push(Pass {
                        sat: cur,
                        start_s: start,
                        end_s: t,
                    });
                    current = Some((s, t));
                }
                (Some((cur, start)), None) => {
                    out.push(Pass {
                        sat: cur,
                        start_s: start,
                        end_s: t,
                    });
                    let _ = cur;
                    let _ = start;
                    current = None;
                }
                _ => {}
            }
            t += self.step_s;
        }
        if let Some((cur, start)) = current {
            out.push(Pass {
                sat: cur,
                start_s: start,
                end_s: t1,
            });
        }
        out
    }

    /// Serving-satellite *switch* times (each is a handover trigger for
    /// a connected static UE).
    pub fn switch_times(&self, point: &GeoPoint, t0: f64, t1: f64) -> Vec<f64> {
        self.passes(point, t0, t1)
            .windows(2)
            .filter(|w| (w[0].end_s - w[1].start_s).abs() < 1e-9)
            .map(|w| w[1].start_s)
            .collect()
    }

    /// Mean pass duration over a window (compare with the paper's
    /// 165.8 s Starlink figure).
    pub fn mean_pass_duration_s(&self, point: &GeoPoint, t0: f64, t1: f64) -> Option<f64> {
        let passes = self.passes(point, t0, t1);
        // Exclude edge-truncated passes.
        let complete: Vec<_> = passes
            .iter()
            .filter(|p| p.start_s > t0 && p.end_s < t1)
            .collect();
        if complete.is_empty() {
            return None;
        }
        Some(complete.iter().map(|p| p.duration_s()).sum::<f64>() / complete.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constellation::ConstellationConfig;
    use crate::propagator::IdealPropagator;

    #[test]
    fn passes_tile_the_covered_time() {
        let prop = IdealPropagator::new(ConstellationConfig::starlink());
        let pred = PassPredictor::new(&prop);
        let p = GeoPoint::from_degrees(40.0, -100.0);
        let passes = pred.passes(&p, 0.0, 1800.0);
        assert!(!passes.is_empty());
        for pass in &passes {
            assert!(pass.end_s > pass.start_s, "{pass:?}");
        }
        for w in passes.windows(2) {
            assert!(w[1].start_s >= w[0].end_s - 1e-9, "overlap {w:?}");
            assert_ne!(w[0].sat, w[1].sat, "adjacent passes differ in sat");
        }
    }

    #[test]
    fn starlink_serving_intervals_shorter_than_coverage_transit() {
        // The paper's 165.8 s is the *coverage* transit of one
        // satellite; the best-server interval is shorter because several
        // satellites cover a mid-latitude point simultaneously and the
        // max-elevation one changes more often. Both quantities must be
        // on the right scale and ordered.
        let prop = IdealPropagator::new(ConstellationConfig::starlink());
        let pred = PassPredictor::new(&prop);
        let p = GeoPoint::from_degrees(40.0, -100.0);
        let mean = pred
            .mean_pass_duration_s(&p, 0.0, 7200.0)
            .expect("passes exist");
        assert!((20.0..400.0).contains(&mean), "{mean}");
        let transit = CoverageModel::new(&prop).mean_transit_s();
        assert!(mean < transit, "serving {mean} vs transit {transit}");
    }

    #[test]
    fn switch_times_match_pass_boundaries() {
        let prop = IdealPropagator::new(ConstellationConfig::starlink());
        let pred = PassPredictor::new(&prop);
        let p = GeoPoint::from_degrees(30.0, 100.0);
        let passes = pred.passes(&p, 0.0, 1800.0);
        let switches = pred.switch_times(&p, 0.0, 1800.0);
        assert!(switches.len() <= passes.len());
        for s in &switches {
            assert!(passes.iter().any(|x| (x.start_s - s).abs() < 1e-9));
        }
    }

    #[test]
    fn polar_gap_for_inclined_shell() {
        let prop = IdealPropagator::new(ConstellationConfig::starlink());
        let pred = PassPredictor::new(&prop);
        let pole = GeoPoint::from_degrees(89.0, 0.0);
        assert!(pred.passes(&pole, 0.0, 1800.0).is_empty());
        assert!(pred.mean_pass_duration_s(&pole, 0.0, 1800.0).is_none());
    }
}
