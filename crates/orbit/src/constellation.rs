//! Walker-delta constellation model and the Table 1 presets.
//!
//! "Most operational LEO constellations (Starlink, Kuiper, and OneWeb)
//! are uniform: each constellation has m circular orbits (all with
//! inclined angle f) that are uniformly spanned across the Equator. Each
//! orbit has n satellites that are uniformly placed on this orbit." (§4.1)

use sc_geo::cells::CellGrid;
use std::f64::consts::TAU;

/// Standard gravitational parameter of the earth, km³/s².
pub const MU_EARTH: f64 = 398_600.441_8;

/// Earth rotation rate, rad/s (sidereal).
pub const EARTH_ROTATION_RAD_S: f64 = 7.292_115_9e-5;

/// Identifier of one satellite: orbital plane and in-plane slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SatId {
    /// Orbital plane index in `[0, planes)`.
    pub plane: u16,
    /// In-plane slot index in `[0, sats_per_plane)`.
    pub slot: u16,
}

impl SatId {
    pub fn new(plane: u16, slot: u16) -> Self {
        Self { plane, slot }
    }
}

impl std::fmt::Display for SatId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sat({},{})", self.plane, self.slot)
    }
}

/// Static parameters of a uniform (Walker-delta) constellation shell —
/// exactly the columns of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstellationConfig {
    /// Human-readable name ("Starlink", …).
    pub name: &'static str,
    /// Number of orbital planes `m`.
    pub planes: u16,
    /// Satellites per orbit `n`.
    pub sats_per_plane: u16,
    /// Orbit altitude above the surface, km.
    pub altitude_km: f64,
    /// Inclination, radians.
    pub inclination_rad: f64,
    /// Walker phasing factor `F ∈ [0, planes)`: slot offset between
    /// adjacent planes is `F · 2π / (planes · sats_per_plane)`.
    pub phasing: u16,
    /// Minimum elevation angle for service, radians.
    pub min_elevation_rad: f64,
}

impl ConstellationConfig {
    /// Starlink shell 1 (Table 1): 72 planes × 22 sats, 550 km, 53°.
    pub fn starlink() -> Self {
        Self {
            name: "Starlink",
            planes: 72,
            sats_per_plane: 22,
            altitude_km: 550.0,
            inclination_rad: 53f64.to_radians(),
            phasing: 39,
            min_elevation_rad: 25f64.to_radians(),
        }
    }

    /// OneWeb (Table 1): 18 planes × 40 sats, 1200 km, 87.9°.
    pub fn oneweb() -> Self {
        Self {
            name: "OneWeb",
            planes: 18,
            sats_per_plane: 40,
            altitude_km: 1200.0,
            inclination_rad: 87.9f64.to_radians(),
            phasing: 9,
            min_elevation_rad: 25f64.to_radians(),
        }
    }

    /// Kuiper shell 1 (Table 1): 34 planes × 34 sats, 630 km, 51.9°.
    pub fn kuiper() -> Self {
        Self {
            name: "Kuiper",
            planes: 34,
            sats_per_plane: 34,
            altitude_km: 630.0,
            inclination_rad: 51.9f64.to_radians(),
            phasing: 17,
            min_elevation_rad: 25f64.to_radians(),
        }
    }

    /// Iridium (Table 1): 6 planes × 11 sats, 780 km, 86.4°.
    pub fn iridium() -> Self {
        Self {
            name: "Iridium",
            planes: 6,
            sats_per_plane: 11,
            altitude_km: 780.0,
            inclination_rad: 86.4f64.to_radians(),
            phasing: 2,
            min_elevation_rad: 8.2f64.to_radians(),
        }
    }

    /// All four Table 1 presets, in the paper's column order.
    pub fn all_presets() -> [Self; 4] {
        [
            Self::starlink(),
            Self::oneweb(),
            Self::kuiper(),
            Self::iridium(),
        ]
    }

    /// Total number of satellites `m × n`.
    pub fn total_sats(&self) -> usize {
        self.planes as usize * self.sats_per_plane as usize
    }

    /// Orbit radius from the earth centre, km.
    pub fn orbit_radius_km(&self) -> f64 {
        sc_geo::EARTH_RADIUS_KM + self.altitude_km
    }

    /// Mean motion `n = √(μ/a³)`, rad/s.
    pub fn mean_motion_rad_s(&self) -> f64 {
        (MU_EARTH / self.orbit_radius_km().powi(3)).sqrt()
    }

    /// Orbital period, seconds.
    pub fn period_s(&self) -> f64 {
        TAU / self.mean_motion_rad_s()
    }

    /// Orbital (inertial) speed, km/s — the Table 1 "Speed" column.
    pub fn orbital_speed_km_s(&self) -> f64 {
        (MU_EARTH / self.orbit_radius_km()).sqrt()
    }

    /// RAAN of plane `p` at epoch: planes uniformly spanned across the
    /// full equator (`2π` spread, matching §4.1's description).
    pub fn raan_at_epoch(&self, plane: u16) -> f64 {
        plane as f64 * TAU / self.planes as f64
    }

    /// Argument of latitude of `(plane, slot)` at epoch, including the
    /// Walker inter-plane phasing.
    pub fn arg_lat_at_epoch(&self, sat: SatId) -> f64 {
        let in_plane = sat.slot as f64 * TAU / self.sats_per_plane as f64;
        let phase =
            sat.plane as f64 * self.phasing as f64 * TAU / self.total_sats() as f64;
        (in_plane + phase) % TAU
    }

    /// The geospatial cell grid anchored to this shell at t = 0 (§4.1).
    pub fn cell_grid(&self) -> CellGrid {
        CellGrid::new(self.inclination_rad, self.planes, self.sats_per_plane)
    }
}

/// A constellation shell plus satellite enumeration helpers.
#[derive(Debug, Clone)]
pub struct Constellation {
    cfg: ConstellationConfig,
}

impl Constellation {
    pub fn new(cfg: ConstellationConfig) -> Self {
        Self { cfg }
    }

    pub fn config(&self) -> &ConstellationConfig {
        &self.cfg
    }

    /// Iterate all satellite ids, plane-major.
    pub fn sats(&self) -> impl Iterator<Item = SatId> + '_ {
        let planes = self.cfg.planes;
        let spp = self.cfg.sats_per_plane;
        (0..planes).flat_map(move |p| (0..spp).map(move |s| SatId::new(p, s)))
    }

    /// Linear index of a satellite in `[0, total)`, plane-major.
    pub fn index_of(&self, sat: SatId) -> usize {
        sat.plane as usize * self.cfg.sats_per_plane as usize + sat.slot as usize
    }

    /// Inverse of [`Self::index_of`].
    pub fn sat_at(&self, index: usize) -> SatId {
        let spp = self.cfg.sats_per_plane as usize;
        SatId::new((index / spp) as u16, (index % spp) as u16)
    }

    /// The four +Grid ISL neighbours of a satellite: previous/next in
    /// plane, and same slot in the adjacent planes (§3 "standard grid
    /// satellite network topology").
    pub fn grid_neighbors(&self, sat: SatId) -> [SatId; 4] {
        let m = self.cfg.planes;
        let n = self.cfg.sats_per_plane;
        [
            SatId::new(sat.plane, (sat.slot + n - 1) % n),
            SatId::new(sat.plane, (sat.slot + 1) % n),
            SatId::new((sat.plane + m - 1) % m, sat.slot),
            SatId::new((sat.plane + 1) % m, sat.slot),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_speeds() {
        // Table 1 speed column: Starlink 7.6, OneWeb 7.3, Kuiper 7.5,
        // Iridium 7.4 km/s.
        assert!((ConstellationConfig::starlink().orbital_speed_km_s() - 7.6).abs() < 0.1);
        assert!((ConstellationConfig::oneweb().orbital_speed_km_s() - 7.3).abs() < 0.1);
        assert!((ConstellationConfig::kuiper().orbital_speed_km_s() - 7.5).abs() < 0.1);
        assert!((ConstellationConfig::iridium().orbital_speed_km_s() - 7.4).abs() < 0.1);
    }

    #[test]
    fn table1_totals() {
        assert_eq!(ConstellationConfig::starlink().total_sats(), 1584);
        assert_eq!(ConstellationConfig::oneweb().total_sats(), 720);
        assert_eq!(ConstellationConfig::kuiper().total_sats(), 1156);
        assert_eq!(ConstellationConfig::iridium().total_sats(), 66);
    }

    #[test]
    fn period_is_about_95_minutes_for_starlink() {
        let p = ConstellationConfig::starlink().period_s();
        assert!((5500.0..6100.0).contains(&p), "{p}");
    }

    #[test]
    fn raan_spacing_uniform() {
        let c = ConstellationConfig::starlink();
        let d = c.raan_at_epoch(1) - c.raan_at_epoch(0);
        assert!((d - TAU / 72.0).abs() < 1e-12);
        assert!((c.raan_at_epoch(71) - 71.0 * d).abs() < 1e-9);
    }

    #[test]
    fn index_roundtrip() {
        let c = Constellation::new(ConstellationConfig::starlink());
        for (i, s) in c.sats().enumerate() {
            assert_eq!(c.index_of(s), i);
            assert_eq!(c.sat_at(i), s);
        }
        assert_eq!(c.sats().count(), 1584);
    }

    #[test]
    fn grid_neighbors_wrap_and_are_mutual() {
        let c = Constellation::new(ConstellationConfig::iridium());
        for s in c.sats() {
            for n in c.grid_neighbors(s) {
                assert_ne!(n, s);
                assert!(c.grid_neighbors(n).contains(&s), "{s} <-> {n}");
            }
        }
    }

    #[test]
    fn phasing_offsets_adjacent_planes() {
        let c = ConstellationConfig::starlink();
        let a = c.arg_lat_at_epoch(SatId::new(0, 0));
        let b = c.arg_lat_at_epoch(SatId::new(1, 0));
        assert!((b - a - 39.0 * TAU / 1584.0).abs() < 1e-12);
    }

    #[test]
    fn cell_grid_matches_shape() {
        let g = ConstellationConfig::kuiper().cell_grid();
        assert_eq!(g.planes(), 34);
        assert_eq!(g.slots(), 34);
    }
}
