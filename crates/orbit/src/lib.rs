//! Orbital substrate: LEO mega-constellations, propagators, coverage.
//!
//! Implements everything the paper's emulation needs from the space
//! segment (§3 "Methodology", §6 "Experimental setup"):
//!
//! * **Walker-delta constellations** parameterized exactly as Table 1
//!   (Starlink, OneWeb, Kuiper, Iridium presets),
//! * **circular two-body propagation** in the earth-fixed frame ("ideal
//!   orbits"), and a **J2/J4 secular perturbation propagator** matching
//!   the paper's Fig. 18b ideal-vs-J4 comparison,
//! * each satellite's **runtime (α, γ) coordinate** — the quantity
//!   Algorithm 1 uses to calibrate orbit perturbations at forwarding time,
//! * **ground stations** modeled on the published Starlink gateway
//!   distribution, and
//! * **coverage/visibility**: which satellite serves a ground point, with
//!   what elevation and slant range, and for how long (the paper's 165.8 s
//!   Starlink transit).
//!
//! Substitution note (see DESIGN.md §3): the paper uses Space-Track
//! ephemerides; Table 1's Walker parameters fully determine the geometry
//! the evaluation depends on, and the J4 propagator supplies the
//! perturbation realism the paper contrasts against ideal orbits.

pub mod constellation;
pub mod coverage;
pub mod doppler;
pub mod groundstation;
pub mod index;
pub mod passes;
pub mod propagator;

pub use constellation::{Constellation, ConstellationConfig, SatId};
pub use coverage::{CoverageGrid, CoverageModel, SatView};
pub use index::{IndexedSnapshot, SatMask, SnapshotCache, SpatialIndex};
pub use groundstation::{GroundStation, GroundStationSet};
pub use passes::{Pass, PassPredictor};
pub use propagator::{IdealPropagator, J4Propagator, Propagator, SatState};
