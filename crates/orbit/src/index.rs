//! Spatial visibility index over propagator snapshots.
//!
//! Visibility queries ask "which satellites are within the coverage
//! cone of this ground point" — a radius-θ spherical-cap search, where
//! θ is the constellation's coverage half-angle plus the prefilter
//! margin. The linear scan in [`crate::coverage::CoverageModel`] tests
//! every satellite; at Starlink/Kuiper scale that is 1 000+ central
//! angles per query, of which a handful survive. [`SpatialIndex`]
//! buckets the snapshot's sub-points into a lat/lon grid whose cell
//! size equals θ, so a query only touches the grid cells intersecting
//! the cap's bounding box and the candidate set stays O(visible).
//!
//! [`IndexedSnapshot`] bundles a snapshot with its index, and
//! [`SnapshotCache`] memoizes `(t → IndexedSnapshot)` so experiment
//! sweeps that revisit the same instants (per-capacity series, UE
//! populations against one epoch) build each snapshot once.
//!
//! Indexed queries return exactly the linear-scan result — same
//! satellites, same order; `crates/orbit/tests/props.rs` property-tests
//! the equivalence.

use std::f64::consts::{FRAC_PI_2, PI};
use std::sync::Arc;

use parking_lot::Mutex;
use sc_geo::sphere::{coverage_half_angle, GeoPoint};

use crate::propagator::{Propagator, SatState};

/// Fixed margin added to the coverage half-angle by the central-angle
/// prefilter (kept identical to the historical inline `0.02`).
pub const PREFILTER_MARGIN_RAD: f64 = 0.02;

/// A fixed-width bitset over one snapshot's satellite indices: one bit
/// per satellite, packed into `u64` words sized at construction.
///
/// This is the unit of the bitset visibility kernel: a "which
/// satellites can this cell see" answer as `⌈N/64⌉` words instead of a
/// sorted `Vec<SatView>`, so sweep engines that only need membership
/// (ground-station attachment, coverage statistics) skip the per-view
/// structs and sorts, and aggregate with popcounts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SatMask {
    words: Box<[u64]>,
    nbits: usize,
}

impl SatMask {
    /// An all-zeros mask over `nbits` satellite indices.
    pub fn empty(nbits: usize) -> Self {
        Self {
            words: vec![0u64; nbits.div_ceil(64)].into_boxed_slice(),
            nbits,
        }
    }

    /// Number of indices the mask covers.
    pub fn capacity(&self) -> usize {
        self.nbits
    }

    /// Set bit `i`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.nbits, "index {i} out of range {}", self.nbits);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Is bit `i` set?
    pub fn contains(&self, i: usize) -> bool {
        i < self.nbits && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits (popcount).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Set indices in ascending order (matches the order a linear scan
    /// over the snapshot would accept them in).
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(wi * 64 + bit)
            })
        })
    }

    /// OR another mask of the same width into this one.
    pub fn union_with(&mut self, other: &SatMask) {
        assert_eq!(self.nbits, other.nbits, "mask width mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// Popcount of the intersection, without materializing it.
    pub fn intersection_count(&self, other: &SatMask) -> usize {
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// The packed words (low index = low satellite indices).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// A lat/lon bucket grid over one snapshot's sub-points.
///
/// Cell size is the query radius θ, so every satellite within central
/// angle θ of a query point lies in a cell intersecting the cap's
/// bounding box: rows covering `[φ−θ, φ+θ]` and, when the cap avoids
/// the pole, columns within `Δλ = asin(sin θ / cos φ)` of the query
/// longitude (all columns otherwise).
#[derive(Debug, Clone)]
pub struct SpatialIndex {
    rows: usize,
    cols: usize,
    lat_step: f64,
    lon_step: f64,
    radius: f64,
    /// Satellite snapshot indices, bucketed; row-major `rows × cols`.
    cells: Vec<Vec<u32>>,
}

impl SpatialIndex {
    /// Index `subpoints` for caps of central-angle radius `radius_rad`.
    pub fn build(subpoints: impl Iterator<Item = GeoPoint>, radius_rad: f64) -> Self {
        assert!(
            radius_rad.is_finite() && radius_rad > 0.0,
            "query radius must be positive, got {radius_rad}"
        );
        let rows = ((PI / radius_rad).ceil() as usize).clamp(1, 180);
        let cols = ((2.0 * PI / radius_rad).ceil() as usize).clamp(1, 360);
        let mut idx = Self {
            rows,
            cols,
            lat_step: PI / rows as f64,
            lon_step: 2.0 * PI / cols as f64,
            radius: radius_rad,
            cells: vec![Vec::new(); rows * cols],
        };
        for (i, p) in subpoints.enumerate() {
            let cell = idx.row_of(p.lat) * cols + idx.col_of(p.lon);
            idx.cells[cell].push(i as u32);
        }
        idx
    }

    /// The cap radius this index was built for, radians.
    pub fn query_radius(&self) -> f64 {
        self.radius
    }

    fn row_of(&self, lat: f64) -> usize {
        (((lat + FRAC_PI_2) / self.lat_step) as usize).min(self.rows - 1)
    }

    fn col_of(&self, lon: f64) -> usize {
        (((lon + PI) / self.lon_step) as usize).min(self.cols - 1)
    }

    /// Visit every snapshot index whose sub-point could lie within
    /// `radius` of `p` (superset of the true cap; callers re-check with
    /// the exact central angle). Each index is visited at most once.
    pub fn for_each_candidate(&self, p: &GeoPoint, mut f: impl FnMut(usize)) {
        let row_lo = self.row_of((p.lat - self.radius).max(-FRAC_PI_2));
        let row_hi = self.row_of((p.lat + self.radius).min(FRAC_PI_2));

        // Longitude extent of the cap's bounding box.
        let whole_band = p.lat.abs() + self.radius >= FRAC_PI_2;
        let (col_start, col_span) = if whole_band {
            (0, self.cols)
        } else {
            let dlon = (self.radius.sin() / p.lat.cos()).clamp(-1.0, 1.0).asin();
            // Pad by one cell: the query point sits anywhere inside its
            // cell, so the box can spill into one extra column per side.
            let span = (2.0 * dlon / self.lon_step).ceil() as usize + 2;
            if span >= self.cols {
                (0, self.cols)
            } else {
                let start = self.col_of(sc_geo::angle::normalize_lon(p.lon - dlon));
                (start, span)
            }
        };

        for row in row_lo..=row_hi {
            for k in 0..col_span {
                let col = (col_start + k) % self.cols;
                for &i in &self.cells[row * self.cols + col] {
                    f(i as usize);
                }
            }
        }
    }

    /// Candidate snapshot indices for `p`, as a vector.
    pub fn candidates(&self, p: &GeoPoint) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_candidate(p, |i| out.push(i));
        out
    }
}

/// One propagated instant plus its spatial index.
#[derive(Debug, Clone)]
pub struct IndexedSnapshot {
    states: Vec<SatState>,
    index: SpatialIndex,
}

impl IndexedSnapshot {
    /// Propagate `prop` at `t` and index the result with the
    /// constellation's own coverage radius (half-angle + prefilter
    /// margin) — the radius every `CoverageModel` query needs.
    pub fn build(prop: &dyn Propagator, t: f64) -> Self {
        let cfg = prop.config();
        let radius =
            coverage_half_angle(cfg.altitude_km, cfg.min_elevation_rad) + PREFILTER_MARGIN_RAD;
        Self::from_states(prop.snapshot(t), radius)
    }

    /// Index pre-computed states for caps of radius `radius_rad`.
    pub fn from_states(states: Vec<SatState>, radius_rad: f64) -> Self {
        let index = SpatialIndex::build(states.iter().map(|s| s.subpoint), radius_rad);
        Self { states, index }
    }

    pub fn states(&self) -> &[SatState] {
        &self.states
    }

    /// Take the states back out (for builders that index a snapshot
    /// transiently and then keep the plain state vector).
    pub fn into_states(self) -> Vec<SatState> {
        self.states
    }

    pub fn index(&self) -> &SpatialIndex {
        &self.index
    }

    pub fn query_radius(&self) -> f64 {
        self.index.radius
    }

    /// Visit candidate `(snapshot index, state)` pairs for `p`.
    pub fn for_each_candidate(&self, p: &GeoPoint, mut f: impl FnMut(usize, &SatState)) {
        self.index
            .for_each_candidate(p, |i| f(i, &self.states[i]));
    }
}

/// Small memo of `t → IndexedSnapshot` over one propagator.
///
/// Keys are the exact bits of `t`, so a hit returns the identical
/// snapshot the propagator would produce — memoization changes no
/// results, only how often `snapshot()` runs. Eviction is LRU with a
/// small bound: sweeps touch few distinct instants at a time (fig12
/// walks one period; capacity series revisit the same epochs).
pub struct SnapshotCache<'a> {
    prop: &'a dyn Propagator,
    capacity: usize,
    /// MRU at the back.
    entries: Mutex<Vec<(u64, Arc<IndexedSnapshot>)>>,
}

impl<'a> SnapshotCache<'a> {
    pub const DEFAULT_CAPACITY: usize = 16;

    pub fn new(prop: &'a dyn Propagator) -> Self {
        Self::with_capacity(prop, Self::DEFAULT_CAPACITY)
    }

    pub fn with_capacity(prop: &'a dyn Propagator, capacity: usize) -> Self {
        Self {
            prop,
            capacity: capacity.max(1),
            entries: Mutex::new(Vec::new()),
        }
    }

    pub fn propagator(&self) -> &'a dyn Propagator {
        self.prop
    }

    /// The indexed snapshot at `t`, building it on first use.
    pub fn at(&self, t: f64) -> Arc<IndexedSnapshot> {
        let key = t.to_bits();
        {
            let mut entries = self.entries.lock();
            if let Some(pos) = entries.iter().position(|(k, _)| *k == key) {
                let hit = entries.remove(pos);
                let snap = hit.1.clone();
                entries.push(hit);
                return snap;
            }
        }
        // Build outside the lock; concurrent misses may build twice but
        // produce identical snapshots.
        let snap = Arc::new(IndexedSnapshot::build(self.prop, t));
        let mut entries = self.entries.lock();
        if let Some(pos) = entries.iter().position(|(k, _)| *k == key) {
            return entries[pos].1.clone();
        }
        if entries.len() >= self.capacity {
            entries.remove(0);
        }
        entries.push((key, snap.clone()));
        snap
    }

    /// Number of cached instants.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constellation::ConstellationConfig;
    use crate::propagator::IdealPropagator;

    fn candidate_set(idx: &SpatialIndex, p: &GeoPoint) -> std::collections::BTreeSet<usize> {
        idx.candidates(p).into_iter().collect()
    }

    #[test]
    fn candidates_cover_the_cap() {
        let prop = IdealPropagator::new(ConstellationConfig::starlink());
        let snap = prop.snapshot(321.0);
        let radius = 0.3;
        let idx = SpatialIndex::build(snap.iter().map(|s| s.subpoint), radius);
        for &(lat, lon) in &[
            (0.0, 0.0),
            (40.0, -100.0),
            (-52.9, 179.5),
            (52.9, -179.5),
            (85.0, 10.0),
            (-85.0, 10.0),
        ] {
            let p = GeoPoint::from_degrees(lat, lon);
            let cands = candidate_set(&idx, &p);
            for (i, st) in snap.iter().enumerate() {
                if p.central_angle(&st.subpoint) <= radius {
                    assert!(
                        cands.contains(&i),
                        "missed sat {i} at ({lat}, {lon})"
                    );
                }
            }
        }
    }

    #[test]
    fn candidates_visit_each_index_once() {
        let prop = IdealPropagator::new(ConstellationConfig::iridium());
        let snap = prop.snapshot(0.0);
        let idx = SpatialIndex::build(snap.iter().map(|s| s.subpoint), 1.2);
        let p = GeoPoint::from_degrees(80.0, 0.0);
        let cands = idx.candidates(&p);
        let set: std::collections::BTreeSet<_> = cands.iter().copied().collect();
        assert_eq!(cands.len(), set.len(), "duplicate candidates");
    }

    #[test]
    fn candidate_count_is_sublinear_at_scale() {
        let prop = IdealPropagator::new(ConstellationConfig::starlink());
        let snap = IndexedSnapshot::build(&prop, 100.0);
        let p = GeoPoint::from_degrees(35.0, 20.0);
        let n = snap.index().candidates(&p).len();
        assert!(
            n * 10 < snap.states().len(),
            "expected <10% of {} candidates, got {n}",
            snap.states().len()
        );
    }

    #[test]
    fn satmask_set_iter_count_roundtrip() {
        let mut m = SatMask::empty(200);
        assert!(m.is_empty());
        for i in [0, 63, 64, 65, 130, 199] {
            m.set(i);
        }
        assert_eq!(m.count(), 6);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 63, 64, 65, 130, 199]);
        assert!(m.contains(64));
        assert!(!m.contains(1));
        assert!(!m.contains(10_000), "out of range is just absent");
        assert_eq!(m.words().len(), 200usize.div_ceil(64));
    }

    #[test]
    fn satmask_union_and_intersection_popcounts() {
        let mut a = SatMask::empty(100);
        let mut b = SatMask::empty(100);
        for i in 0..50 {
            a.set(i);
        }
        for i in 25..75 {
            b.set(i);
        }
        assert_eq!(a.intersection_count(&b), 25);
        a.union_with(&b);
        assert_eq!(a.count(), 75);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn satmask_set_out_of_range_panics() {
        SatMask::empty(10).set(10);
    }

    #[test]
    fn cache_returns_identical_snapshots() {
        let prop = IdealPropagator::new(ConstellationConfig::iridium());
        let cache = SnapshotCache::new(&prop);
        let a = cache.at(42.0);
        let b = cache.at(42.0);
        assert!(Arc::ptr_eq(&a, &b), "second lookup should hit");
        assert_eq!(a.states(), prop.snapshot(42.0).as_slice());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let prop = IdealPropagator::new(ConstellationConfig::iridium());
        let cache = SnapshotCache::with_capacity(&prop, 2);
        let first = cache.at(1.0);
        cache.at(2.0);
        cache.at(1.0); // refresh 1.0 → 2.0 becomes LRU
        cache.at(3.0); // evicts 2.0
        assert_eq!(cache.len(), 2);
        assert!(Arc::ptr_eq(&first, &cache.at(1.0)));
    }
}
