//! Property-based tests for the orbital substrate.

use proptest::prelude::*;
use sc_orbit::{
    Constellation, ConstellationConfig, CoverageModel, IdealPropagator, IndexedSnapshot,
    J4Propagator, Propagator, SatId,
};

fn any_config() -> impl Strategy<Value = ConstellationConfig> {
    (0usize..4).prop_map(|i| ConstellationConfig::all_presets()[i].clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Orbit radius is preserved exactly by both propagators.
    #[test]
    fn radius_invariant(cfg in any_config(), plane in 0u16..72, slot in 0u16..40, t in 0.0f64..100_000.0) {
        let plane = plane % cfg.planes;
        let slot = slot % cfg.sats_per_plane;
        for state in [
            IdealPropagator::new(cfg.clone()).state(SatId::new(plane, slot), t),
            J4Propagator::new(cfg.clone()).state(SatId::new(plane, slot), t),
        ] {
            prop_assert!((state.position.norm() - cfg.orbit_radius_km()).abs() < 1e-6);
        }
    }

    /// Sub-point latitude never exceeds the inclination.
    #[test]
    fn latitude_bounded(cfg in any_config(), plane in 0u16..72, slot in 0u16..40, t in 0.0f64..100_000.0) {
        let plane = plane % cfg.planes;
        let slot = slot % cfg.sats_per_plane;
        let st = IdealPropagator::new(cfg.clone()).state(SatId::new(plane, slot), t);
        prop_assert!(st.subpoint.lat.abs() <= cfg.inclination_rad + 1e-9);
    }

    /// In-plane neighbour separation is time-invariant (rigid rotation).
    #[test]
    fn in_plane_spacing_rigid(cfg in any_config(), plane in 0u16..72, t in 0.0f64..20_000.0) {
        let plane = plane % cfg.planes;
        let p = IdealPropagator::new(cfg.clone());
        let d0 = p.state(SatId::new(plane, 0), 0.0)
            .position
            .distance_km(&p.state(SatId::new(plane, 1), 0.0).position);
        let dt = p.state(SatId::new(plane, 0), t)
            .position
            .distance_km(&p.state(SatId::new(plane, 1), t).position);
        prop_assert!((d0 - dt).abs() < 1e-6, "{d0} vs {dt}");
    }

    /// The satellite's stored inclined coordinate always maps back to
    /// its sub-point (the Algorithm 1 calibration invariant).
    #[test]
    fn coord_subpoint_consistent(cfg in any_config(), plane in 0u16..72, slot in 0u16..40, t in 0.0f64..50_000.0) {
        let plane = plane % cfg.planes;
        let slot = slot % cfg.sats_per_plane;
        let st = J4Propagator::new(cfg.clone()).state(SatId::new(plane, slot), t);
        let frame = sc_geo::inclined::InclinedFrame::new(cfg.inclination_rad);
        let back = frame.to_geo(st.coord);
        prop_assert!((back.lat - st.subpoint.lat).abs() < 1e-9);
        prop_assert!(sc_geo::angle::signed_delta(back.lon, st.subpoint.lon).abs() < 1e-9);
    }

    /// Grid-neighbour relation is symmetric and 4-regular.
    #[test]
    fn grid_neighbors_regular(cfg in any_config(), plane in 0u16..72, slot in 0u16..40) {
        let plane = plane % cfg.planes;
        let slot = slot % cfg.sats_per_plane;
        let c = Constellation::new(cfg);
        let sat = SatId::new(plane, slot);
        let nb = c.grid_neighbors(sat);
        for n in nb {
            prop_assert!(c.grid_neighbors(n).contains(&sat));
        }
    }

    /// index_of / sat_at are inverse bijections.
    #[test]
    fn index_bijection(cfg in any_config(), idx in 0usize..1584) {
        let c = Constellation::new(cfg.clone());
        let idx = idx % cfg.total_sats();
        prop_assert_eq!(c.index_of(c.sat_at(idx)), idx);
    }

    /// Indexed visibility returns exactly the linear-scan result:
    /// same satellites, same order, for any point, preset, and time.
    #[test]
    fn indexed_visibility_matches_linear(
        cfg in any_config(),
        lat in -89.0f64..89.0,
        lon in -180.0f64..180.0,
        t in 0.0f64..100_000.0,
    ) {
        let prop = IdealPropagator::new(cfg);
        let cov = CoverageModel::new(&prop);
        let p = sc_geo::GeoPoint::from_degrees(lat, lon);
        let snapshot = prop.snapshot(t);
        let indexed = IndexedSnapshot::build(&prop, t);
        let linear = cov.visible_from_snapshot(&snapshot, &p);
        let via_index = cov.visible_from_indexed(&indexed, &p);
        prop_assert_eq!(linear.clone(), via_index, "at ({lat}, {lon}) t={t}");
        prop_assert_eq!(
            cov.serving_from_indexed(&indexed, &p),
            linear.into_iter().next()
        );
    }

    /// The bitset kernel accepts exactly the satellites of the sorted
    /// view query: same membership, ascending snapshot order, for any
    /// point, preset, and time.
    #[test]
    fn visibility_mask_matches_views(
        cfg in any_config(),
        lat in -89.0f64..89.0,
        lon in -180.0f64..180.0,
        t in 0.0f64..100_000.0,
    ) {
        let prop = IdealPropagator::new(cfg.clone());
        let cov = CoverageModel::new(&prop);
        let c = Constellation::new(cfg);
        let p = sc_geo::GeoPoint::from_degrees(lat, lon);
        let indexed = IndexedSnapshot::build(&prop, t);
        let mask = cov.visibility_mask(&indexed, &p);
        let mut view_indices: Vec<usize> = cov
            .visible_from_indexed(&indexed, &p)
            .iter()
            .map(|v| c.index_of(v.sat))
            .collect();
        view_indices.sort_unstable();
        prop_assert_eq!(mask.iter().collect::<Vec<_>>(), view_indices);
        prop_assert_eq!(mask.capacity(), indexed.states().len());
    }

    /// Period-advanced γ returns to itself for the ideal propagator.
    #[test]
    fn periodicity_in_gamma(cfg in any_config(), plane in 0u16..72, slot in 0u16..40) {
        let plane = plane % cfg.planes;
        let slot = slot % cfg.sats_per_plane;
        let p = IdealPropagator::new(cfg.clone());
        let g0 = p.arg_lat(SatId::new(plane, slot), 0.0);
        let g1 = p.arg_lat(SatId::new(plane, slot), cfg.period_s());
        let d = sc_geo::angle::signed_delta(g0, g1).abs();
        prop_assert!(d < 1e-6, "{d}");
    }
}
