//! Minimal byte-stable JSON emission helpers (internal).
//!
//! Hand-rolled on purpose: serde would be a dependency, and the point
//! of this crate is that two identical runs produce identical bytes —
//! which needs exactly one float format and exactly one escape policy,
//! both pinned here.

/// Append `s` as a JSON string literal (quotes + escapes).
pub(crate) fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let code = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let digit = (code >> shift) & 0xF;
                    out.push(char::from_digit(digit, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite f64 using Rust's shortest round-trip `{:?}` format
/// (`1.0`, `0.25`, `1e-6`) — stable across platforms. Non-finite values
/// emit as `null` (they cannot appear in JSON numbers).
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn str_lit(s: &str) -> String {
        let mut out = String::new();
        push_str_literal(&mut out, s);
        out
    }

    fn f64_lit(v: f64) -> String {
        let mut out = String::new();
        push_f64(&mut out, v);
        out
    }

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(str_lit("plain"), "\"plain\"");
        assert_eq!(str_lit("a\"b"), "\"a\\\"b\"");
        assert_eq!(str_lit("a\\b"), "\"a\\\\b\"");
        assert_eq!(str_lit("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(str_lit("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn floats_use_shortest_roundtrip_format() {
        assert_eq!(f64_lit(1.0), "1.0");
        assert_eq!(f64_lit(0.25), "0.25");
        assert_eq!(f64_lit(1e-6), "1e-6");
        assert_eq!(f64_lit(-3.5), "-3.5");
    }

    #[test]
    fn non_finite_floats_emit_null() {
        assert_eq!(f64_lit(f64::NAN), "null");
        assert_eq!(f64_lit(f64::INFINITY), "null");
        assert_eq!(f64_lit(f64::NEG_INFINITY), "null");
    }
}
