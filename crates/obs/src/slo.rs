//! Windowed SLO rules over [`crate::series::SeriesSet`] buffers.
//!
//! An [`SloRule`] names a counter/gauge series and a per-window budget;
//! [`SloTracker::evaluate`] walks the series window-by-window and turns
//! it into **burn-rate** samples (`value / budget`, the fraction of the
//! window's budget the run consumed — >1.0 is a breach) plus a breach
//! summary. [`SloTracker::record`] writes the result back into a
//! recorder: a `slo.burn.<rule>` gauge series, a
//! `slo.breached_windows.<rule>` counter, and one `slo.breach` event at
//! the **first** breached window per rule, so a storm that blows
//! through its budget is visible at a glance in the sidecar.
//!
//! Evaluation is a pure function of the series buffer and the rule —
//! no clocks, no iteration-order dependence — so running it once at
//! end-of-run on the merged top-level recorder keeps the sidecar
//! byte-identical across thread and shard counts.

use crate::recorder::Recorder;
use crate::series::{SeriesData, SeriesSet};

/// One windowed SLO rule.
#[derive(Debug, Clone)]
pub struct SloRule {
    /// Short rule name; series/counters derive from it
    /// (`slo.burn.<name>`, `slo.breached_windows.<name>`). Must be a
    /// static string because metric names are.
    pub name: &'static str,
    /// The series this rule watches.
    pub series: &'static str,
    /// Per-window budget: the windowed value must stay ≤ this.
    /// Non-positive budgets make every non-zero window a breach (burn
    /// is reported as `value` vs a budget of 0 → capped at the value).
    pub budget: f64,
    /// First window (inclusive) the rule applies to.
    pub from_window: u64,
    /// Last window (exclusive); `u64::MAX` = to the end of the series.
    pub to_window: u64,
    /// Gauge series [`SloTracker::record`] writes burn rates into.
    /// Metric names are `&'static str`, so the caller supplies the
    /// spelling rather than this crate formatting one at runtime.
    pub burn_series: &'static str,
    /// Counter [`SloTracker::record`] adds breached windows to.
    pub breach_counter: &'static str,
}

impl SloRule {
    /// A rule over the whole time axis, recording into the generic
    /// `slo.burn.other` / `slo.breached_windows.other` names until
    /// [`SloRule::emit_as`] supplies rule-specific ones.
    pub fn new(name: &'static str, series: &'static str, budget: f64) -> Self {
        Self {
            name,
            series,
            budget,
            from_window: 0,
            to_window: u64::MAX,
            burn_series: "slo.burn.other",
            breach_counter: "slo.breached_windows.other",
        }
    }

    /// Restrict the rule to windows `[from, to)`.
    pub fn over_windows(mut self, from: u64, to: u64) -> Self {
        self.from_window = from;
        self.to_window = to;
        self
    }

    /// Name the burn-rate series and breach counter this rule records.
    pub fn emit_as(mut self, burn_series: &'static str, breach_counter: &'static str) -> Self {
        self.burn_series = burn_series;
        self.breach_counter = breach_counter;
        self
    }
}

/// One rule's verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct SloVerdict {
    /// The rule's name.
    pub name: &'static str,
    /// `(window, burn)` samples for every in-range window the series
    /// touched, ascending.
    pub burn: Vec<(u64, f64)>,
    /// Windows whose value exceeded the budget.
    pub breached_windows: u64,
    /// First breached window and its value, if any window breached.
    pub first_breach: Option<(u64, f64)>,
    /// Highest burn rate seen (0.0 when the series never fired in range).
    pub max_burn: f64,
}

/// Evaluates a fixed rule list against a series set.
#[derive(Debug, Clone, Default)]
pub struct SloTracker {
    rules: Vec<SloRule>,
}

impl SloTracker {
    /// A tracker over `rules`.
    pub fn new(rules: Vec<SloRule>) -> Self {
        Self { rules }
    }

    /// Evaluate every rule against `series`, in rule order.
    pub fn evaluate(&self, series: &SeriesSet) -> Vec<SloVerdict> {
        self.rules
            .iter()
            .map(|rule| evaluate_rule(rule, series))
            .collect()
    }

    /// Evaluate and write the verdicts into `obs`: per rule a
    /// `slo.burn.<name>` gauge series, a `slo.breached_windows.<name>`
    /// counter (emitted even at zero, so the sidecar shows the rule
    /// ran), and an `slo.breach` event at the first breached window.
    /// `window_s` converts window indices back to sim-time seconds for
    /// the event timestamp. Returns the verdicts.
    pub fn record(&self, obs: &Recorder, window_s: f64) -> Vec<SloVerdict> {
        let verdicts = self.evaluate(&obs.snapshot().series);
        for (rule, v) in self.rules.iter().zip(verdicts.iter()) {
            for (w, burn) in &v.burn {
                obs.series_gauge(rule.burn_series, *w as f64 * window_s, *burn);
            }
            obs.inc(rule.breach_counter, v.breached_windows);
            if let Some((w, value)) = v.first_breach {
                obs.event(
                    w as f64 * window_s,
                    "slo.breach",
                    vec![
                        ("rule", crate::FieldValue::from(rule.name)),
                        ("window", crate::FieldValue::from(w)),
                        ("value", crate::FieldValue::from(value)),
                        ("budget", crate::FieldValue::from(rule.budget)),
                    ],
                );
            }
        }
        verdicts
    }
}

fn evaluate_rule(rule: &SloRule, series: &SeriesSet) -> SloVerdict {
    let mut burn = Vec::new();
    let mut breached = 0u64;
    let mut first_breach = None;
    let mut max_burn = 0.0f64;
    if let Some(data) = series.get(rule.series) {
        for (w, value) in touched_windows(data) {
            if w < rule.from_window || w >= rule.to_window {
                continue;
            }
            let rate = if rule.budget > 0.0 {
                value / rule.budget
            } else if value > 0.0 {
                value
            } else {
                0.0
            };
            burn.push((w, rate));
            max_burn = max_burn.max(rate);
            if value > rule.budget {
                breached += 1;
                if first_breach.is_none() {
                    first_breach = Some((w, value));
                }
            }
        }
    }
    SloVerdict {
        name: rule.name,
        burn,
        breached_windows: breached,
        first_breach,
        max_burn,
    }
}

/// Every allocated window of `data` with its value: counters report all
/// windows (zeros included — a silent window is budget news too),
/// gauges only the written ones.
fn touched_windows(data: &SeriesData) -> Vec<(u64, f64)> {
    match data {
        SeriesData::Counter(v) => v
            .iter()
            .enumerate()
            .map(|(w, n)| (w as u64, *n as f64))
            .collect(),
        SeriesData::Gauge(v) => v
            .iter()
            .enumerate()
            .filter_map(|(w, s)| s.map(|x| (w as u64, x)))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storm_recorder() -> Recorder {
        let r = Recorder::new();
        // Steady 10/window, storm of 35 at w=3 decaying through w=5.
        for (w, n) in [(0u64, 10u64), (1, 10), (2, 10), (3, 35), (4, 20), (5, 12)] {
            r.series_inc("est", w as f64, n);
        }
        r
    }

    #[test]
    fn burn_and_breach_detection() {
        let tracker = SloTracker::new(vec![SloRule::new("chaosload.surge", "est", 30.0)]);
        let v = tracker.evaluate(&storm_recorder().snapshot().series);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].breached_windows, 1);
        assert_eq!(v[0].first_breach, Some((3, 35.0)));
        assert!((v[0].max_burn - 35.0 / 30.0).abs() < 1e-12);
        assert_eq!(v[0].burn.len(), 6);
    }

    #[test]
    fn window_range_limits_the_rule() {
        let tracker = SloTracker::new(vec![
            SloRule::new("chaosload.recovery", "est", 15.0).over_windows(5, u64::MAX),
        ]);
        let v = tracker.evaluate(&storm_recorder().snapshot().series);
        // Only window 5 (value 12) is in range: no breach.
        assert_eq!(v[0].burn, vec![(5, 12.0 / 15.0)]);
        assert_eq!(v[0].breached_windows, 0);
        assert_eq!(v[0].first_breach, None);
    }

    #[test]
    fn missing_series_yields_empty_verdict() {
        let tracker = SloTracker::new(vec![SloRule::new("chaosload.surge", "absent", 1.0)]);
        let v = tracker.evaluate(&SeriesSet::default());
        assert_eq!(v[0].burn, vec![]);
        assert_eq!(v[0].max_burn, 0.0);
        assert_eq!(v[0].first_breach, None);
    }

    #[test]
    fn record_emits_burn_series_counter_and_first_breach_event() {
        let r = storm_recorder();
        let tracker = SloTracker::new(vec![SloRule::new("chaosload.surge", "est", 30.0)
            .emit_as(
                "slo.burn.chaosload.surge",
                "slo.breached_windows.chaosload.surge",
            )]);
        let v = tracker.record(&r, 1.0);
        let snap = r.snapshot();
        assert_eq!(snap.counter("slo.breached_windows.chaosload.surge"), 1);
        let burn = snap.series.get("slo.burn.chaosload.surge").map(|d| d.points());
        assert_eq!(burn.as_ref().map(Vec::len), Some(6));
        let breach = snap.events.iter().find(|e| e.kind == "slo.breach");
        assert_eq!(breach.map(|e| e.t), Some(3.0));
        assert_eq!(v[0].breached_windows, 1);
    }

    #[test]
    fn zero_budget_counts_every_nonzero_window() {
        let tracker = SloTracker::new(vec![SloRule::new("chaosload.surge", "est", 0.0)]);
        let v = tracker.evaluate(&storm_recorder().snapshot().series);
        assert_eq!(v[0].breached_windows, 6);
        assert_eq!(v[0].max_burn, 35.0);
    }
}
