//! Trace-tree analysis over parsed sidecars.
//!
//! [`TraceForest`] rebuilds the span tree a sidecar serialized flat
//! (parents always precede children — [`crate::span`] guarantees it)
//! and renders the views the `sctrace` binary exposes: an indented
//! `tree`, a `critical-path` table with the longest child chain per
//! root, flamegraph-compatible `folded` stacks, and an A/B `diff` of
//! two sidecars with a regression gate for CI.
//!
//! Every rendering is a pure function of its input sidecar(s), so the
//! output inherits the telemetry byte-stability guarantee: identical
//! sidecars → identical reports.

use crate::hist::Histogram;
use crate::sidecar::{Sidecar, SidecarSpan};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A span forest indexed for tree walks.
pub struct TraceForest<'a> {
    spans: &'a [SidecarSpan],
    /// Child indices per parent id, in recording order.
    children: BTreeMap<u64, Vec<usize>>,
    /// Indices of root spans (no parent, or parent shed from the ring).
    roots: Vec<usize>,
}

impl<'a> TraceForest<'a> {
    /// Index `spans` into a forest. A span whose parent was shed by the
    /// bounded ring is promoted to a root rather than dropped.
    pub fn build(spans: &'a [SidecarSpan]) -> Self {
        let present: BTreeMap<u64, usize> =
            spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
        let mut children: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        let mut roots = Vec::new();
        for (i, s) in spans.iter().enumerate() {
            match s.parent.filter(|p| present.contains_key(p)) {
                Some(p) => children.entry(p).or_default().push(i),
                None => roots.push(i),
            }
        }
        Self {
            spans,
            children,
            roots,
        }
    }

    /// Root spans in recording order.
    pub fn roots(&self) -> impl Iterator<Item = &SidecarSpan> {
        self.roots.iter().filter_map(|i| self.spans.get(*i))
    }

    fn child_indices(&self, id: u64) -> &[usize] {
        self.children.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The critical path under span index `i`: at each level follow the
    /// child whose subtree finishes last (ties: first recorded). That
    /// child is what kept the parent open, so the chain explains the
    /// root's latency.
    pub fn critical_path(&self, i: usize) -> Vec<usize> {
        let mut path = vec![i];
        let mut cur = i;
        while let Some(span) = self.spans.get(cur) {
            let next = self
                .child_indices(span.id)
                .iter()
                .copied()
                .max_by(|a, b| {
                    let fa = self.finish(*a);
                    let fb = self.finish(*b);
                    // total_cmp, then prefer the EARLIER index on ties so
                    // the walk is deterministic and recording-ordered.
                    fa.total_cmp(&fb).then(b.cmp(a))
                });
            match next {
                Some(n) => {
                    path.push(n);
                    cur = n;
                }
                None => break,
            }
        }
        path
    }

    /// Latest finish time in the subtree under index `i` (the span's own
    /// end, or start for an open span, maxed over descendants).
    fn finish(&self, i: usize) -> f64 {
        let Some(span) = self.spans.get(i) else {
            return f64::NEG_INFINITY;
        };
        let mut best = span.end.unwrap_or(span.start);
        for c in self.child_indices(span.id) {
            best = best.max(self.finish(*c));
        }
        best
    }

    /// Indented tree listing with sim-time durations and fields.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        for r in &self.roots {
            self.render_node(&mut out, *r, 0);
        }
        if self.roots.is_empty() {
            out.push_str("(no spans)\n");
        }
        out
    }

    fn render_node(&self, out: &mut String, i: usize, depth: usize) {
        self.render_line(out, i, depth);
        if let Some(s) = self.spans.get(i) {
            for c in self.child_indices(s.id) {
                self.render_node(out, *c, depth + 1);
            }
        }
    }

    fn render_line(&self, out: &mut String, i: usize, depth: usize) {
        let Some(s) = self.spans.get(i) else {
            return;
        };
        for _ in 0..depth {
            out.push_str("  ");
        }
        match s.end {
            Some(e) => {
                let _ = write!(out, "{} [{:.3}..{:.3}] +{:.3}", s.kind, s.start, e, e - s.start);
            }
            None => {
                let _ = write!(out, "{} [{:.3}..open]", s.kind, s.start);
            }
        }
        for (k, v) in &s.fields {
            let _ = write!(out, " {k}={v}");
        }
        out.push('\n');
    }

    /// The `critical-path` report: a per-root-kind percentile table of
    /// root durations (bucket-interpolated p50/p95/p99), then the
    /// longest chain under each kind's slowest root.
    pub fn render_critical_paths(&self) -> String {
        let mut out = String::new();
        // Group roots by kind, keeping recording order of first sight.
        let mut kinds: Vec<&str> = Vec::new();
        let mut by_kind: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for i in &self.roots {
            if let Some(s) = self.spans.get(*i) {
                if !by_kind.contains_key(s.kind.as_str()) {
                    kinds.push(&s.kind);
                }
                by_kind.entry(&s.kind).or_default().push(*i);
            }
        }
        if kinds.is_empty() {
            out.push_str("(no root spans)\n");
            return out;
        }
        let _ = writeln!(
            out,
            "{:<44} {:>5} {:>10} {:>10} {:>10}",
            "root kind", "n", "p50", "p95", "p99"
        );
        for kind in &kinds {
            let idxs = by_kind.get(kind).map(Vec::as_slice).unwrap_or(&[]);
            let mut h = Histogram::new();
            for i in idxs {
                if let Some(d) = self.spans.get(*i).and_then(SidecarSpan::duration) {
                    h.observe(d);
                }
            }
            let fmt = |q: f64| match h.percentile(q) {
                Some(p) => format!("{p:.3}"),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "{:<44} {:>5} {:>10} {:>10} {:>10}",
                kind,
                idxs.len(),
                fmt(0.5),
                fmt(0.95),
                fmt(0.99)
            );
        }
        for kind in &kinds {
            let idxs = by_kind.get(kind).map(Vec::as_slice).unwrap_or(&[]);
            // Slowest root of this kind (ties: first recorded).
            let slowest = idxs.iter().copied().max_by(|a, b| {
                let da = self.spans.get(*a).and_then(SidecarSpan::duration).unwrap_or(-1.0);
                let db = self.spans.get(*b).and_then(SidecarSpan::duration).unwrap_or(-1.0);
                da.total_cmp(&db).then(b.cmp(a))
            });
            let Some(slowest) = slowest else {
                continue;
            };
            let _ = writeln!(out, "\nslowest {kind}:");
            for (depth, i) in self.critical_path(slowest).into_iter().enumerate() {
                self.render_line(&mut out, i, depth + 1);
            }
        }
        out
    }

    /// Flamegraph-compatible folded stacks: one line per distinct
    /// root-to-node kind path, `kind;kind;kind <self-time>`, where
    /// self-time is the span's duration minus its children's, clamped at
    /// zero and scaled ×1000 to keep integer resolution (ms → µs for
    /// the netsim/relay spans). Sorted by path for byte-stable output.
    pub fn render_folded(&self) -> String {
        let mut agg: BTreeMap<String, u64> = BTreeMap::new();
        for r in &self.roots {
            self.fold_into(&mut agg, *r, String::new());
        }
        let mut out = String::new();
        for (path, v) in agg {
            let _ = writeln!(out, "{path} {v}");
        }
        out
    }

    fn fold_into(&self, agg: &mut BTreeMap<String, u64>, i: usize, prefix: String) {
        let Some(s) = self.spans.get(i) else {
            return;
        };
        let path = if prefix.is_empty() {
            s.kind.clone()
        } else {
            format!("{prefix};{}", s.kind)
        };
        let own = s.duration().unwrap_or(0.0);
        let child_sum: f64 = self
            .child_indices(s.id)
            .iter()
            .filter_map(|c| self.spans.get(*c).and_then(SidecarSpan::duration))
            .sum();
        let self_time = ((own - child_sum).max(0.0) * 1000.0).round() as u64;
        *agg.entry(path.clone()).or_insert(0) += self_time;
        for c in self.child_indices(s.id) {
            self.fold_into(agg, *c, path.clone());
        }
    }
}

/// The `series` report: one row per windowed series — window count,
/// total, peak window, a steady-state estimate (median over the
/// series' span, implicit zeros included for counters), the
/// peak/steady ratio that quantifies a storm's amplitude, and a
/// sparkline of the per-window shape. A pure function of the sidecar
/// bytes, so the report is as byte-stable as the sidecar.
pub fn render_series(sc: &Sidecar) -> String {
    if sc.series.is_empty() {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "(no series section — {} predates sc-obs/3; regenerate the sidecar to get windowed series)",
            sc.schema
        );
        return out;
    }
    let mut out = String::new();
    let window_ticks = sc.series.values().next().map_or(0, |s| s.window_ticks);
    let _ = writeln!(
        out,
        "windowed series ({} ticks/window = {} sim-time unit(s) per window)",
        window_ticks,
        window_ticks as f64 / 1e6
    );
    let _ = writeln!(
        out,
        "{:<44} {:>7} {:>5} {:>12} {:>12} {:>6} {:>9} {:>11}  shape",
        "series", "kind", "n", "total", "peak", "@win", "steady", "peak/stdy"
    );
    for (name, s) in &sc.series {
        let n = s.windows();
        let (peak_w, peak_v) = s.peak().unwrap_or((0, 0.0));
        let steady = steady_state(s);
        let ratio = if steady > 0.0 {
            format!("{:.2}", peak_v / steady)
        } else {
            "-".to_string()
        };
        let _ = writeln!(
            out,
            "{:<44} {:>7} {:>5} {:>12} {:>12} {:>6} {:>9} {:>11}  {}",
            name,
            s.kind,
            n,
            trim_num(s.total()),
            trim_num(peak_v),
            peak_w,
            trim_num(steady),
            ratio,
            sparkline(s, 60)
        );
    }
    if sc.series_dropped > 0 {
        let _ = writeln!(
            out,
            "note: {} series sample(s) were shed (capacity/kind/time); series are partial",
            sc.series_dropped
        );
    }
    out
}

/// Median per-window value over the series' span. Counter series count
/// untouched windows as zero (a silent window is part of the steady
/// state); gauge series take the median of written samples only.
fn steady_state(s: &crate::sidecar::SidecarSeries) -> f64 {
    let mut vals: Vec<f64> = if s.kind == "counter" {
        let n = s.windows();
        (0..n).map(|w| s.value_at(w).unwrap_or(0.0)).collect()
    } else {
        s.points.iter().map(|(_, v)| *v).collect()
    };
    if vals.is_empty() {
        return 0.0;
    }
    vals.sort_by(f64::total_cmp);
    let mid = vals.len() / 2;
    if vals.len() % 2 == 1 {
        vals[mid]
    } else {
        (vals[mid - 1] + vals[mid]) / 2.0
    }
}

/// Render the series' per-window shape into at most `cols` glyphs:
/// windows are chunked evenly, each chunk shows the max value inside
/// it, scaled against the series peak over eight block heights.
fn sparkline(s: &crate::sidecar::SidecarSeries, cols: u64) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let n = s.windows();
    if n == 0 {
        return String::new();
    }
    let peak = s.peak().map_or(0.0, |(_, v)| v);
    let cols = cols.clamp(1, n);
    let mut line = String::new();
    for c in 0..cols {
        // Even chunking: chunk c covers windows [c*n/cols, (c+1)*n/cols).
        let from = c * n / cols;
        let to = (((c + 1) * n) / cols).max(from + 1);
        let mut chunk_max = 0.0f64;
        for w in from..to.min(n) {
            chunk_max = chunk_max.max(s.value_at(w).unwrap_or(0.0));
        }
        let idx = if peak > 0.0 {
            (((chunk_max / peak) * 8.0).ceil() as usize).clamp(0, 8)
        } else {
            0
        };
        line.push(if idx == 0 { GLYPHS[0] } else { GLYPHS[idx - 1] });
    }
    line
}

/// Compact number formatting for the series table: integers print bare,
/// fractions keep two decimals.
fn trim_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

/// The outcome of [`render_diff`].
pub struct DiffReport {
    /// Human-readable report, one line per differing series.
    pub text: String,
    /// Series whose value increased by more than the gate threshold.
    pub regressions: Vec<String>,
}

/// Compare two sidecars metric-by-metric. A **regression** is any
/// counter, histogram statistic (count, mean, p50, p95, p99), windowed
/// series quantity (total, peak), or drop counter
/// (`events_dropped`/`spans_dropped`/`series_dropped` — silent ring or
/// window shedding) that *increased* from `a` to `b` by more than
/// `fail_pct` percent — the gate direction suits cost-like quantities
/// (transmissions, losses, latency percentiles), which is what the CI
/// self-diff guards. Window-aligned series deltas are reported in the
/// text (first differing windows) so a shifted storm is attributable.
/// Identical sidecars always produce zero regressions.
pub fn render_diff(a: &Sidecar, b: &Sidecar, fail_pct: f64) -> DiffReport {
    let mut text = String::new();
    let mut regressions = Vec::new();
    let mut compare = |name: String, va: Option<f64>, vb: Option<f64>| match (va, vb) {
        (Some(x), Some(y)) if x != y => {
            let pct = if x != 0.0 {
                (y - x) / x.abs() * 100.0
            } else {
                100.0
            };
            let _ = writeln!(text, "{name}: {x} -> {y} ({pct:+.2}%)");
            if pct > fail_pct {
                regressions.push(name);
            }
        }
        (Some(x), None) => {
            let _ = writeln!(text, "{name}: {x} -> (absent)");
        }
        (None, Some(y)) => {
            let _ = writeln!(text, "{name}: (absent) -> {y}");
        }
        _ => {}
    };

    let counter_names: std::collections::BTreeSet<&String> =
        a.counters.keys().chain(b.counters.keys()).collect();
    for name in counter_names {
        compare(
            format!("counter {name}"),
            a.counters.get(name).map(|v| *v as f64),
            b.counters.get(name).map(|v| *v as f64),
        );
    }
    let hist_names: std::collections::BTreeSet<&String> =
        a.histograms.keys().chain(b.histograms.keys()).collect();
    for name in hist_names {
        let ha = a.histograms.get(name);
        let hb = b.histograms.get(name);
        compare(
            format!("hist {name} count"),
            ha.map(|h| h.count as f64),
            hb.map(|h| h.count as f64),
        );
        compare(
            format!("hist {name} mean"),
            ha.and_then(|h| h.mean()),
            hb.and_then(|h| h.mean()),
        );
        for (label, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
            compare(
                format!("hist {name} {label}"),
                ha.and_then(|h| h.percentile(q)),
                hb.and_then(|h| h.percentile(q)),
            );
        }
    }
    // Drop counters: shed telemetry is itself a regression — a run that
    // overflows a ring or series capacity must not pass the gate
    // silently.
    compare(
        "events_dropped".to_string(),
        Some(a.events_dropped as f64),
        Some(b.events_dropped as f64),
    );
    compare(
        "spans_dropped".to_string(),
        Some(a.spans_dropped as f64),
        Some(b.spans_dropped as f64),
    );
    compare(
        "series_dropped".to_string(),
        Some(a.series_dropped as f64),
        Some(b.series_dropped as f64),
    );
    let series_names: std::collections::BTreeSet<&String> =
        a.series.keys().chain(b.series.keys()).collect();
    let mut window_lines = String::new();
    for name in series_names {
        let sa = a.series.get(name);
        let sb = b.series.get(name);
        compare(
            format!("series {name} total"),
            sa.map(|s| s.total()),
            sb.map(|s| s.total()),
        );
        compare(
            format!("series {name} peak"),
            sa.and_then(|s| s.peak()).map(|(_, v)| v),
            sb.and_then(|s| s.peak()).map(|(_, v)| v),
        );
        // Window-aligned delta report (text only; totals/peaks gate):
        // the first few windows whose values differ, so a shifted or
        // reshaped storm is visible, not just its magnitude.
        if let (Some(sa), Some(sb)) = (sa, sb) {
            let windows: std::collections::BTreeSet<u64> = sa
                .points
                .iter()
                .chain(sb.points.iter())
                .map(|(w, _)| *w)
                .collect();
            let mut shown = 0;
            let mut differing = 0;
            for w in windows {
                let va = sa.value_at(w).unwrap_or(0.0);
                let vb = sb.value_at(w).unwrap_or(0.0);
                if va != vb {
                    differing += 1;
                    if shown < 3 {
                        let _ = writeln!(window_lines, "series {name} w{w}: {va} -> {vb}");
                        shown += 1;
                    }
                }
            }
            if differing > shown {
                let _ = writeln!(
                    window_lines,
                    "series {name}: {} more differing window(s)",
                    differing - shown
                );
            }
        }
    }
    text.push_str(&window_lines);
    if text.is_empty() {
        text.push_str("no differences\n");
    }
    DiffReport { text, regressions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sidecar::Sidecar;
    use crate::Recorder;

    fn traced_sidecar() -> Result<Sidecar, String> {
        let r = Recorder::new();
        // Ground-routed procedure: root kept open by a long hop.
        let g = r.span_open(None, "proc.ground", 0.0, vec![]);
        r.span(Some(g), "hop.sat_ground", 0.0, 30.0, vec![]);
        r.span(Some(g), "hop.local", 30.0, 32.0, vec![]);
        r.span_close(g, 32.0);
        // Local procedure: short hops only.
        let l = r.span_open(None, "proc.local", 0.0, vec![]);
        r.span(Some(l), "hop.local", 0.0, 2.0, vec![]);
        r.span_close(l, 2.0);
        Sidecar::parse(&r.snapshot().to_json("unit")).map_err(|e| e.to_string())
    }

    #[test]
    fn forest_finds_roots_and_children() -> Result<(), String> {
        let sc = traced_sidecar()?;
        let f = TraceForest::build(&sc.spans);
        let kinds: Vec<&str> = f.roots().map(|s| s.kind.as_str()).collect();
        assert_eq!(kinds, vec!["proc.ground", "proc.local"]);
        Ok(())
    }

    #[test]
    fn orphaned_span_promotes_to_root() -> Result<(), String> {
        let r = Recorder::with_capacities(8, 2);
        let root = r.span_open(None, "proc", 0.0, vec![]);
        r.span(Some(root), "a", 0.0, 1.0, vec![]);
        r.span(Some(root), "b", 1.0, 2.0, vec![]); // sheds "proc"
        let sc =
            Sidecar::parse(&r.snapshot().to_json("unit")).map_err(|e| e.to_string())?;
        assert_eq!(sc.spans_dropped, 1);
        let f = TraceForest::build(&sc.spans);
        assert_eq!(f.roots().count(), 2);
        Ok(())
    }

    #[test]
    fn critical_path_follows_last_finisher() -> Result<(), String> {
        let sc = traced_sidecar()?;
        let f = TraceForest::build(&sc.spans);
        // Root 0 is proc.ground (index 0); its critical path must run
        // through hop.local (ends at 32.0), not hop.sat_ground (30.0).
        let path = f.critical_path(0);
        let kinds: Vec<&str> = path
            .iter()
            .filter_map(|i| sc.spans.get(*i))
            .map(|s| s.kind.as_str())
            .collect();
        assert_eq!(kinds, vec!["proc.ground", "hop.local"]);
        Ok(())
    }

    #[test]
    fn tree_and_folded_render_are_stable() -> Result<(), String> {
        let (a, b) = (traced_sidecar()?, traced_sidecar()?);
        let fa = TraceForest::build(&a.spans);
        let fb = TraceForest::build(&b.spans);
        assert_eq!(fa.render_tree(), fb.render_tree());
        assert_eq!(fa.render_folded(), fb.render_folded());
        assert!(fa.render_tree().contains("proc.ground"));
        // Folded stacks: ground root's self time is 0 (fully covered by
        // hops); the sat-ground hop keeps its full 30 ms = 30000.
        let folded = fa.render_folded();
        assert!(folded.contains("proc.ground;hop.sat_ground 30000"), "{folded}");
        Ok(())
    }

    #[test]
    fn render_critical_paths_tables_per_kind() -> Result<(), String> {
        let sc = traced_sidecar()?;
        let out = TraceForest::build(&sc.spans).render_critical_paths();
        assert!(out.contains("proc.ground"), "{out}");
        assert!(out.contains("proc.local"), "{out}");
        assert!(out.contains("slowest proc.ground:"), "{out}");
        Ok(())
    }

    #[test]
    fn diff_of_identical_sidecars_is_clean() -> Result<(), String> {
        let (a, b) = (traced_sidecar()?, traced_sidecar()?);
        let report = render_diff(&a, &b, 0.0);
        assert_eq!(report.text, "no differences\n");
        assert!(report.regressions.is_empty());
        Ok(())
    }

    #[test]
    fn diff_flags_increases_beyond_threshold() -> Result<(), String> {
        let ra = Recorder::new();
        ra.inc("net.tx", 100);
        ra.observe("lat", 10.0);
        let rb = Recorder::new();
        rb.inc("net.tx", 120);
        rb.observe("lat", 10.0);
        let a = Sidecar::parse(&ra.snapshot().to_json("u")).map_err(|e| e.to_string())?;
        let b = Sidecar::parse(&rb.snapshot().to_json("u")).map_err(|e| e.to_string())?;
        // +20% over a 10% gate: regression.
        let r = render_diff(&a, &b, 10.0);
        assert_eq!(r.regressions, vec!["counter net.tx".to_string()]);
        // Same diff under a 30% gate: reported but not failing.
        let r = render_diff(&a, &b, 30.0);
        assert!(r.regressions.is_empty());
        assert!(r.text.contains("counter net.tx: 100 -> 120"));
        // Improvements never regress.
        let r = render_diff(&b, &a, 0.0);
        assert!(r.regressions.is_empty());
        Ok(())
    }

    /// A storm-shaped sidecar: steady 10/window with a spike to 40 at
    /// window 3, plus a gauge sampled in two windows.
    fn stormy_sidecar(spike: u64) -> Result<Sidecar, String> {
        let r = Recorder::new();
        for w in 0..6u64 {
            r.series_inc_tick("load.per_s", w * crate::WINDOW_TICKS, 10);
        }
        r.series_inc_tick("load.per_s", 3 * crate::WINDOW_TICKS, spike - 10);
        r.series_gauge_tick("depth", 0, 5.0);
        r.series_gauge_tick("depth", 4 * crate::WINDOW_TICKS, 7.0);
        Sidecar::parse(&r.snapshot().to_json("unit")).map_err(|e| e.to_string())
    }

    #[test]
    fn diff_gates_series_totals_and_peaks() -> Result<(), String> {
        let a = stormy_sidecar(40)?;
        let b = stormy_sidecar(80)?;
        // Peak 40 -> 80 (+100%), total 90 -> 130 (+44%): both regress at 0.
        let r = render_diff(&a, &b, 0.0);
        assert!(r.regressions.contains(&"series load.per_s total".to_string()), "{:?}", r.regressions);
        assert!(r.regressions.contains(&"series load.per_s peak".to_string()), "{:?}", r.regressions);
        // Window-aligned delta names the reshaped window.
        assert!(r.text.contains("series load.per_s w3: 40 -> 80"), "{}", r.text);
        // Self-diff stays clean.
        let r = render_diff(&a, &stormy_sidecar(40)?, 0.0);
        assert_eq!(r.text, "no differences\n");
        Ok(())
    }

    #[test]
    fn diff_gates_drop_counters() -> Result<(), String> {
        let ra = Recorder::new();
        let a = Sidecar::parse(&ra.snapshot().to_json("u")).map_err(|e| e.to_string())?;
        let rb = Recorder::new();
        rb.series_inc("shed", -1.0, 1); // negative time: dropped
        let b = Sidecar::parse(&rb.snapshot().to_json("u")).map_err(|e| e.to_string())?;
        let r = render_diff(&a, &b, 0.0);
        assert_eq!(r.regressions, vec!["series_dropped".to_string()]);
        assert!(r.text.contains("series_dropped: 0 -> 1"), "{}", r.text);
        Ok(())
    }

    #[test]
    fn render_series_tables_storm_shape() -> Result<(), String> {
        let sc = stormy_sidecar(40)?;
        let out = render_series(&sc);
        assert!(out.contains("load.per_s"), "{out}");
        assert!(out.contains("depth"), "{out}");
        // Peak 40 at window 3; steady-state (median of 10,10,10,40,10,10) = 10;
        // ratio 4.00.
        assert!(out.contains("4.00"), "{out}");
        // Sparkline: 6 windows, peak glyph at the spike.
        assert!(out.contains('█'), "{out}");
        // Stable across re-renders of the same bytes.
        assert_eq!(out, render_series(&stormy_sidecar(40)?));
        Ok(())
    }

    #[test]
    fn render_series_degrades_without_series_section() -> Result<(), String> {
        // An sc-obs/2 sidecar has no series section.
        let sc = Sidecar::parse(
            "{\n  \"schema\": \"sc-obs/2\",\n  \"experiment\": \"old\",\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {},\n  \"events\": [],\n  \"events_dropped\": 0\n}\n",
        )
        .map_err(|e| e.to_string())?;
        let out = render_series(&sc);
        assert!(out.contains("no series section"), "{out}");
        assert!(out.contains("sc-obs/2"), "{out}");
        Ok(())
    }
}
