//! Reading telemetry sidecars back in.
//!
//! [`Sidecar::parse`] is the inverse of [`crate::Snapshot::to_json`]: a
//! hand-rolled, zero-dependency JSON reader tolerant enough for every
//! schema generation (`sc-obs/1` without spans, `sc-obs/2` with them,
//! `sc-obs/3` with windowed series).
//! It backs the `sctrace` analysis binary, which must not pull serde
//! into this crate. Parsing is strict about structure (a malformed
//! sidecar is an error, not a guess) but lenient about *extra* object
//! keys, so future additive schema revisions keep old readers working.
//!
//! Everything returns `Result` — this crate ratchets at zero panic
//! sites, sidecar included.

use crate::hist::percentile_from_buckets;
use std::collections::BTreeMap;

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing stopped.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "telemetry parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// One histogram as serialized: exact sidecars plus sparse buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct SidecarHist {
    pub count: u64,
    pub sum: f64,
    pub min: Option<f64>,
    pub max: Option<f64>,
    /// Sparse `(upper_bound, count)` pairs, ascending; `None` = overflow.
    pub buckets: Vec<(Option<f64>, u64)>,
}

impl SidecarHist {
    /// Mean sample, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Bucket-interpolated quantile, same rule as
    /// [`crate::Histogram::percentile`].
    pub fn percentile(&self, q: f64) -> Option<f64> {
        percentile_from_buckets(&self.buckets, self.count, self.min, self.max, q)
    }
}

/// One span as serialized.
#[derive(Debug, Clone, PartialEq)]
pub struct SidecarSpan {
    pub id: u64,
    pub parent: Option<u64>,
    pub kind: String,
    pub start: f64,
    /// `None` = the span was still open (or closed at a non-finite time).
    pub end: Option<f64>,
    /// Field key/value pairs in serialized (sorted-key) order, values
    /// rendered as display strings.
    pub fields: Vec<(String, String)>,
}

impl SidecarSpan {
    /// `end - start` for a closed span.
    pub fn duration(&self) -> Option<f64> {
        self.end.map(|e| e - self.start)
    }

    /// The value of field `key`, if present.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// One windowed series as serialized (`sc-obs/3` `"series"` section).
#[derive(Debug, Clone, PartialEq)]
pub struct SidecarSeries {
    /// `"counter"` or `"gauge"`.
    pub kind: String,
    /// Window width in integer µs-grid ticks.
    pub window_ticks: u64,
    /// Sparse `(window, value)` points, ascending window order.
    pub points: Vec<(u64, f64)>,
}

impl SidecarSeries {
    /// Sum over all points (per-window totals for counters).
    pub fn total(&self) -> f64 {
        self.points.iter().map(|(_, v)| v).sum()
    }

    /// The `(window, value)` with the largest value (ties: earliest
    /// window), `None` for an empty series.
    pub fn peak(&self) -> Option<(u64, f64)> {
        self.points
            .iter()
            .copied()
            .max_by(|(wa, va), (wb, vb)| va.total_cmp(vb).then(wb.cmp(wa)))
    }

    /// Number of windows spanned: last touched window + 1.
    pub fn windows(&self) -> u64 {
        self.points.last().map_or(0, |(w, _)| w + 1)
    }

    /// The value in window `w` (0.0 for an untouched counter window,
    /// `None` only when no point exists at `w` and the series is a
    /// gauge — callers treat absence per kind).
    pub fn value_at(&self, w: u64) -> Option<f64> {
        self.points
            .iter()
            .find(|(pw, _)| *pw == w)
            .map(|(_, v)| *v)
    }
}

/// A parsed telemetry sidecar.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Sidecar {
    pub schema: String,
    pub experiment: String,
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, SidecarHist>,
    /// Number of serialized events (the analyzer only needs the count).
    pub events: usize,
    pub events_dropped: u64,
    pub spans: Vec<SidecarSpan>,
    pub spans_dropped: u64,
    /// Windowed series (`sc-obs/3`; empty for older generations).
    pub series: BTreeMap<String, SidecarSeries>,
    pub series_dropped: u64,
}

impl Sidecar {
    /// Parse a telemetry sidecar (schema `sc-obs/1`, `/2`, or `/3`).
    pub fn parse(input: &str) -> Result<Sidecar, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        let root = p.value(0)?;
        p.skip_ws();
        if p.pos < p.bytes.len() {
            return Err(p.err("trailing data after top-level object"));
        }
        Sidecar::from_value(&root)
    }

    fn from_value(root: &Value) -> Result<Sidecar, ParseError> {
        let obj = root
            .as_obj()
            .ok_or_else(|| err_at(0, "top level is not an object"))?;
        let schema = get_str(obj, "schema")?;
        if !["sc-obs/1", "sc-obs/2", crate::SCHEMA].contains(&schema.as_str()) {
            return Err(err_at(0, &format!("unsupported schema {schema:?}")));
        }
        let mut out = Sidecar {
            schema,
            experiment: get_str(obj, "experiment")?,
            ..Sidecar::default()
        };
        for (k, v) in get(obj, "counters")?.as_obj_or_empty() {
            out.counters.insert(
                k.clone(),
                v.as_u64()
                    .ok_or_else(|| err_at(0, &format!("counter {k:?} is not a u64")))?,
            );
        }
        for (k, v) in get(obj, "gauges")?.as_obj_or_empty() {
            out.gauges.insert(
                k.clone(),
                v.as_f64()
                    .ok_or_else(|| err_at(0, &format!("gauge {k:?} is not a number")))?,
            );
        }
        for (k, v) in get(obj, "histograms")?.as_obj_or_empty() {
            out.histograms.insert(k.clone(), parse_hist(k, v)?);
        }
        out.events = get(obj, "events")?.as_arr_or_empty().len();
        out.events_dropped = get(obj, "events_dropped")?
            .as_u64()
            .ok_or_else(|| err_at(0, "events_dropped is not a u64"))?;
        // sc-obs/1 has no spans section.
        if let Some(spans) = find(obj, "spans") {
            for (i, sv) in spans.as_arr_or_empty().iter().enumerate() {
                out.spans.push(parse_span(i, sv)?);
            }
        }
        if let Some(sd) = find(obj, "spans_dropped") {
            out.spans_dropped = sd
                .as_u64()
                .ok_or_else(|| err_at(0, "spans_dropped is not a u64"))?;
        }
        // sc-obs/1 and /2 have no series section.
        if let Some(series) = find(obj, "series") {
            for (k, v) in series.as_obj_or_empty() {
                out.series.insert(k.clone(), parse_series(k, v)?);
            }
        }
        if let Some(sd) = find(obj, "series_dropped") {
            out.series_dropped = sd
                .as_u64()
                .ok_or_else(|| err_at(0, "series_dropped is not a u64"))?;
        }
        Ok(out)
    }

    /// Counter value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

fn parse_hist(name: &str, v: &Value) -> Result<SidecarHist, ParseError> {
    let obj = v
        .as_obj()
        .ok_or_else(|| err_at(0, &format!("histogram {name:?} is not an object")))?;
    let mut buckets = Vec::new();
    for b in get(obj, "buckets")?.as_arr_or_empty() {
        let pair = b.as_arr_or_empty();
        match (pair.first(), pair.get(1)) {
            (Some(bound), Some(count)) => buckets.push((
                bound.as_f64(),
                count
                    .as_u64()
                    .ok_or_else(|| err_at(0, &format!("bucket count in {name:?} is not a u64")))?,
            )),
            _ => return Err(err_at(0, &format!("bucket in {name:?} is not a pair"))),
        }
    }
    Ok(SidecarHist {
        count: get(obj, "count")?
            .as_u64()
            .ok_or_else(|| err_at(0, &format!("count of {name:?} is not a u64")))?,
        sum: get(obj, "sum")?
            .as_f64()
            .ok_or_else(|| err_at(0, &format!("sum of {name:?} is not a number")))?,
        min: find(obj, "min").and_then(Value::as_f64),
        max: find(obj, "max").and_then(Value::as_f64),
        buckets,
    })
}

fn parse_series(name: &str, v: &Value) -> Result<SidecarSeries, ParseError> {
    let obj = v
        .as_obj()
        .ok_or_else(|| err_at(0, &format!("series {name:?} is not an object")))?;
    let mut points = Vec::new();
    for p in get(obj, "points")?.as_arr_or_empty() {
        let pair = p.as_arr_or_empty();
        match (pair.first().and_then(Value::as_u64), pair.get(1).and_then(Value::as_f64)) {
            (Some(w), Some(v)) => points.push((w, v)),
            _ => {
                return Err(err_at(
                    0,
                    &format!("series {name:?} point is not a [window, value] pair"),
                ))
            }
        }
    }
    Ok(SidecarSeries {
        kind: get_str(obj, "kind")?,
        window_ticks: get(obj, "window_ticks")?
            .as_u64()
            .ok_or_else(|| err_at(0, &format!("window_ticks of {name:?} is not a u64")))?,
        points,
    })
}

fn parse_span(i: usize, v: &Value) -> Result<SidecarSpan, ParseError> {
    let obj = v
        .as_obj()
        .ok_or_else(|| err_at(0, &format!("span #{i} is not an object")))?;
    let mut fields = Vec::new();
    for (k, fv) in get(obj, "fields")?.as_obj_or_empty() {
        fields.push((k.clone(), fv.display()));
    }
    Ok(SidecarSpan {
        id: get(obj, "id")?
            .as_u64()
            .ok_or_else(|| err_at(0, &format!("span #{i} id is not a u64")))?,
        parent: match get(obj, "parent")? {
            Value::Null => None,
            p => Some(
                p.as_u64()
                    .ok_or_else(|| err_at(0, &format!("span #{i} parent is not a u64")))?,
            ),
        },
        kind: get_str(obj, "kind")?,
        start: get(obj, "start")?
            .as_f64()
            .ok_or_else(|| err_at(0, &format!("span #{i} start is not a number")))?,
        end: get(obj, "end")?.as_f64(),
        fields,
    })
}

// ---- generic JSON value ------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    /// Raw number token, parsed lazily so u64 counters stay lossless.
    Num(String),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    fn as_obj_or_empty(&self) -> &[(String, Value)] {
        self.as_obj().unwrap_or(&[])
    }

    fn as_arr_or_empty(&self) -> &[Value] {
        match self {
            Value::Arr(a) => a,
            _ => &[],
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A display rendering for span field values (numbers keep their
    /// serialized token, strings their contents).
    fn display(&self) -> String {
        match self {
            Value::Null => "null".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Num(raw) => raw.clone(),
            Value::Str(s) => s.clone(),
            Value::Arr(_) => "[…]".to_string(),
            Value::Obj(_) => "{…}".to_string(),
        }
    }
}

fn find<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Result<&'a Value, ParseError> {
    find(obj, key).ok_or_else(|| err_at(0, &format!("missing key {key:?}")))
}

fn get_str(obj: &[(String, Value)], key: &str) -> Result<String, ParseError> {
    get(obj, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| err_at(0, &format!("{key:?} is not a string")))
}

fn err_at(at: usize, msg: &str) -> ParseError {
    ParseError {
        at,
        msg: msg.to_string(),
    }
}

// ---- recursive-descent parser ------------------------------------------

/// Nesting bound; documented sidecars nest 4 deep, this leaves headroom
/// while keeping hostile inputs from exhausting the stack.
const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        err_at(self.pos, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, b: u8) -> Result<(), ParseError> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.consume(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.consume(b':')?;
            let v = self.value(depth + 1)?;
            out.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.consume(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            out.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected '\"'"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5);
                            let code = hex
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(code);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unchanged:
                    // copy the whole scalar at once.
                    let rest = &self.bytes[self.pos..];
                    match std::str::from_utf8(rest).ok().and_then(|s| s.chars().next()) {
                        Some(c) => {
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        None => return Err(self.err("invalid UTF-8")),
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if raw.parse::<f64>().is_err() {
            return Err(err_at(start, &format!("invalid number token {raw:?}")));
        }
        Ok(Value::Num(raw.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FieldValue, Recorder};

    fn sample_json() -> String {
        let r = Recorder::new();
        r.inc("net.msgs", 7);
        r.set_gauge("net.load", 0.75);
        for v in [2.0, 30.0, 30.0, 700.0] {
            r.observe("net.delay_ms", v);
        }
        r.event(1.0, "net.step", vec![("idx", FieldValue::from(0u64))]);
        r.series_inc("net.msgs_per_s", 0.5, 3);
        r.series_inc("net.msgs_per_s", 2.5, 4);
        r.series_gauge("net.depth", 1.0, 7.5);
        let root = r.span_open(None, "proc", 0.0, vec![("route", FieldValue::from("ground"))]);
        r.span(Some(root), "hop", 0.0, 30.0, vec![("dist_km", FieldValue::from(550.0))]);
        r.span_close_with(root, 62.0, vec![("completed", FieldValue::from(1u64))]);
        r.snapshot().to_json("unit")
    }

    #[test]
    fn round_trips_an_emitted_snapshot() -> Result<(), ParseError> {
        let sc = Sidecar::parse(&sample_json())?;
        assert_eq!(sc.schema, crate::SCHEMA);
        assert_eq!(sc.experiment, "unit");
        assert_eq!(sc.counter("net.msgs"), 7);
        assert_eq!(sc.gauges.get("net.load"), Some(&0.75));
        let h = sc.histograms.get("net.delay_ms");
        assert_eq!(h.map(|h| h.count), Some(4));
        assert_eq!(h.and_then(|h| h.min), Some(2.0));
        assert_eq!(h.and_then(|h| h.max), Some(700.0));
        assert_eq!(sc.events, 1);
        assert_eq!(sc.spans.len(), 2);
        assert_eq!(sc.spans[0].kind, "proc");
        assert_eq!(sc.spans[0].parent, None);
        assert_eq!(sc.spans[0].field("route"), Some("ground"));
        assert_eq!(sc.spans[0].field("completed"), Some("1"));
        assert_eq!(sc.spans[1].parent, Some(0));
        assert_eq!(sc.spans[1].duration(), Some(30.0));
        let s = sc.series.get("net.msgs_per_s");
        assert_eq!(s.map(|s| s.kind.as_str()), Some("counter"));
        assert_eq!(s.map(|s| s.window_ticks), Some(crate::WINDOW_TICKS));
        assert_eq!(s.map(|s| s.points.clone()), Some(vec![(0, 3.0), (2, 4.0)]));
        assert_eq!(s.map(|s| s.total()), Some(7.0));
        assert_eq!(s.and_then(|s| s.peak()), Some((2, 4.0)));
        assert_eq!(s.map(|s| s.windows()), Some(3));
        assert_eq!(s.and_then(|s| s.value_at(0)), Some(3.0));
        assert_eq!(s.and_then(|s| s.value_at(1)), None);
        let g = sc.series.get("net.depth");
        assert_eq!(g.map(|g| g.kind.as_str()), Some("gauge"));
        assert_eq!(g.map(|g| g.points.clone()), Some(vec![(1, 7.5)]));
        assert_eq!(sc.series_dropped, 0);
        Ok(())
    }

    #[test]
    fn accepts_schema_two_without_series() -> Result<(), ParseError> {
        // A checked-in sc-obs/2 shape must keep parsing after the /3
        // bump: spans but no series section.
        let v2 = r#"{
  "schema": "sc-obs/2",
  "experiment": "old",
  "counters": {"a": 1},
  "gauges": {},
  "histograms": {},
  "events": [],
  "events_dropped": 0,
  "spans": [
    {"id": 0, "parent": null, "kind": "proc", "start": 0.0, "end": 1.0, "fields": {}}
  ],
  "spans_dropped": 0
}
"#;
        let sc = Sidecar::parse(v2)?;
        assert_eq!(sc.schema, "sc-obs/2");
        assert_eq!(sc.spans.len(), 1);
        assert!(sc.series.is_empty());
        assert_eq!(sc.series_dropped, 0);
        Ok(())
    }

    #[test]
    fn accepts_schema_one_without_spans() -> Result<(), ParseError> {
        let v1 = r#"{
  "schema": "sc-obs/1",
  "experiment": "old",
  "counters": {"a": 1},
  "gauges": {},
  "histograms": {},
  "events": [],
  "events_dropped": 0
}
"#;
        let sc = Sidecar::parse(v1)?;
        assert_eq!(sc.schema, "sc-obs/1");
        assert_eq!(sc.counter("a"), 1);
        assert!(sc.spans.is_empty());
        assert_eq!(sc.spans_dropped, 0);
        Ok(())
    }

    #[test]
    fn open_span_null_end_parses_as_none() -> Result<(), ParseError> {
        let r = Recorder::new();
        r.span_open(None, "open", 3.5, vec![]);
        let sc = Sidecar::parse(&r.snapshot().to_json("unit"))?;
        assert_eq!(sc.spans[0].end, None);
        assert_eq!(sc.spans[0].duration(), None);
        assert_eq!(sc.spans[0].start, 3.5);
        Ok(())
    }

    #[test]
    fn rejects_garbage_and_unknown_schema() {
        assert!(Sidecar::parse("not json").is_err());
        assert!(Sidecar::parse("{}").is_err());
        assert!(Sidecar::parse("{\"schema\": \"sc-obs/99\", \"experiment\": \"x\"}").is_err());
        // Trailing data after the object.
        let mut j = sample_json();
        j.push_str("{}");
        assert!(Sidecar::parse(&j).is_err());
    }

    #[test]
    fn percentile_matches_in_process_histogram() {
        let mut h = crate::Histogram::new();
        let r = Recorder::new();
        for v in [1.0, 4.0, 4.0, 9.0, 60.0, 120.0, 800.0, 3000.0] {
            h.observe(v);
            r.observe("x", v);
        }
        let parsed = Sidecar::parse(&r.snapshot().to_json("unit")).ok();
        let side = parsed.as_ref().and_then(|s| s.histograms.get("x"));
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(side.and_then(|s| s.percentile(q)), h.percentile(q), "q={q}");
        }
    }

    #[test]
    fn string_escapes_round_trip() -> Result<(), ParseError> {
        let r = Recorder::new();
        r.span_open(None, "k", 0.0, vec![("msg", FieldValue::from("a\"b\\c\nd"))]);
        let sc = Sidecar::parse(&r.snapshot().to_json("unit"))?;
        assert_eq!(sc.spans[0].field("msg"), Some("a\"b\\c\nd"));
        Ok(())
    }
}
