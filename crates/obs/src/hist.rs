//! Fixed-bucket histograms.
//!
//! One global 1–2–5 log ladder covers every series the reproduction
//! records — microseconds of processing up to giga-scale message counts
//! — so histograms from different runs, cells, and threads merge by
//! plain bucket-wise addition and always emit the same bounds.

/// Inclusive upper bounds of the shared 1–2–5 ladder, ascending.
/// Values above the last bound land in an overflow bucket that emits
/// with a `null` bound; values at or below `1e-6` (including zero and
/// negatives) land in the first bucket.
pub const BUCKET_BOUNDS: [f64; 46] = [
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2,
    0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1e3, 2e3, 5e3, 1e4,
    2e4, 5e4, 1e5, 2e5, 5e5, 1e6, 2e6, 5e6, 1e7, 2e7, 5e7, 1e8, 2e8, 5e8, 1e9,
];

/// Index into the per-histogram count array for a sample, with the
/// overflow bucket at `BUCKET_BOUNDS.len()`.
fn bucket_index(v: f64) -> usize {
    BUCKET_BOUNDS
        .iter()
        .position(|b| v <= *b)
        .unwrap_or(BUCKET_BOUNDS.len())
}

/// A fixed-bucket histogram with exact count/sum/min/max sidecars.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// One count per [`BUCKET_BOUNDS`] entry plus the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKET_BOUNDS.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample. Non-finite samples are dropped (NaN/∞ would
    /// poison `sum` and break byte-stable emission).
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let idx = bucket_index(v);
        if let Some(c) = self.counts.get_mut(idx) {
            *c += 1;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Bucket-wise merge (the operation parallel sweeps rely on; it is
    /// commutative but the engine still merges in slot order so `sum`,
    /// a float, accumulates in a fixed order).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest sample, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.sum / self.count as f64)
    }

    /// The non-empty buckets, ascending; `None` bound = overflow.
    pub fn nonzero_buckets(&self) -> Vec<(Option<f64>, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (BUCKET_BOUNDS.get(i).copied(), *c))
            .collect()
    }

    /// Bucket-interpolated quantile `q ∈ [0, 1]` (`0.5` = p50), `None`
    /// when the histogram is empty or `q` is out of range. See
    /// [`percentile_from_buckets`] for the estimation rule.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        percentile_from_buckets(&self.nonzero_buckets(), self.count, self.min(), self.max(), q)
    }
}

/// Quantile estimate from a sparse `(upper_bound, count)` bucket list —
/// the form histograms take both in [`Histogram::nonzero_buckets`] and
/// in parsed telemetry sidecars ([`crate::sidecar`]), so `sctrace` and
/// in-process callers share one rule.
///
/// The target rank is `q * (count - 1)` (nearest-rank on the sample
/// index line). Within the bucket holding that rank the estimate
/// interpolates linearly between the previous bucket's upper bound (or
/// `min` for the first bucket) and the bucket's own upper bound (or
/// `max` for the overflow bucket, whose bound is `None`), then clamps to
/// the exact `[min, max]` sidecars. Exact for the endpoints `q = 0` and
/// `q = 1`; at most one bucket wide off anywhere else.
pub fn percentile_from_buckets(
    buckets: &[(Option<f64>, u64)],
    count: u64,
    min: Option<f64>,
    max: Option<f64>,
    q: f64,
) -> Option<f64> {
    if count == 0 || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let (min, max) = (min?, max?);
    let rank = q * (count - 1) as f64;
    if rank <= 0.0 {
        return Some(min);
    }
    if rank >= (count - 1) as f64 {
        return Some(max);
    }
    let mut seen = 0u64;
    let mut lower = min;
    for (bound, c) in buckets {
        let upper = bound.unwrap_or(max).min(max).max(lower);
        let hi = (seen + c) as f64 - 1.0;
        if rank <= hi {
            // Fraction of this bucket's samples at or below the rank; a
            // single-sample bucket pins the estimate to its upper bound.
            let within = if *c > 1 {
                (rank - seen as f64) / (*c - 1) as f64
            } else {
                1.0
            };
            let est = lower + (upper - lower) * within.clamp(0.0, 1.0);
            return Some(est.clamp(min, max));
        }
        seen += c;
        lower = upper;
    }
    Some(max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_strictly_ascending() {
        for w in BUCKET_BOUNDS.windows(2) {
            assert!(w[0] < w[1], "{w:?}");
        }
    }

    #[test]
    fn observe_places_samples_on_the_ladder() {
        let mut h = Histogram::new();
        h.observe(0.15); // → bucket 0.2
        h.observe(0.2); // inclusive upper bound → bucket 0.2
        h.observe(3.0); // → bucket 5.0
        assert_eq!(h.count(), 3);
        assert_eq!(
            h.nonzero_buckets(),
            vec![(Some(0.2), 2), (Some(5.0), 1)]
        );
        assert_eq!(h.min(), Some(0.15));
        assert_eq!(h.max(), Some(3.0));
    }

    #[test]
    fn extremes_land_in_edge_buckets() {
        let mut h = Histogram::new();
        h.observe(0.0);
        h.observe(-5.0);
        h.observe(2e12);
        assert_eq!(
            h.nonzero_buckets(),
            vec![(Some(1e-6), 2), (None, 1)]
        );
    }

    #[test]
    fn non_finite_samples_dropped() {
        let mut h = Histogram::new();
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn merge_matches_sequential_observation() {
        let samples = [0.001, 0.4, 7.0, 7.0, 900.0, 1e10];
        let mut whole = Histogram::new();
        for s in samples {
            whole.observe(s);
        }
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for (i, s) in samples.iter().enumerate() {
            if i % 2 == 0 {
                left.observe(*s);
            } else {
                right.observe(*s);
            }
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn percentile_endpoints_are_exact() {
        let mut h = Histogram::new();
        for v in [3.0, 7.0, 42.0, 180.0] {
            h.observe(v);
        }
        assert_eq!(h.percentile(0.0), Some(3.0));
        assert_eq!(h.percentile(1.0), Some(180.0));
    }

    #[test]
    fn percentile_interpolates_within_a_bucket() {
        let mut h = Histogram::new();
        // 100 samples all in the (0.5, 1.0] bucket.
        for i in 0..100 {
            h.observe(0.51 + 0.0049 * i as f64);
        }
        let p50 = h.percentile(0.5);
        // Interpolated between min (bucket entry) and the 1.0 bound.
        assert!(p50.is_some());
        if let Some(p) = p50 {
            assert!((0.51..=1.0).contains(&p), "{p}");
        }
        let p95 = h.percentile(0.95);
        assert!(p95 >= p50, "{p95:?} vs {p50:?}");
    }

    #[test]
    fn percentile_single_sample_and_empty() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(0.5), None);
        h.observe(30.0);
        assert_eq!(h.percentile(0.0), Some(30.0));
        assert_eq!(h.percentile(0.5), Some(30.0));
        assert_eq!(h.percentile(0.99), Some(30.0));
    }

    #[test]
    fn percentile_rejects_out_of_range_q() {
        let mut h = Histogram::new();
        h.observe(1.0);
        assert_eq!(h.percentile(-0.1), None);
        assert_eq!(h.percentile(1.5), None);
        assert_eq!(h.percentile(f64::NAN), None);
    }

    #[test]
    fn percentile_overflow_bucket_clamps_to_max() {
        let mut h = Histogram::new();
        h.observe(1.0);
        for _ in 0..9 {
            h.observe(5e9); // overflow bucket (bound = null)
        }
        // The overflow bucket's missing bound substitutes the exact max,
        // so estimates inside it stay within [last bound, max].
        let p95 = h.percentile(0.95);
        assert!(p95 > Some(1e9) && p95 <= Some(5e9), "{p95:?}");
        assert_eq!(h.percentile(1.0), Some(5e9));
    }

    #[test]
    fn percentile_is_monotone_in_q() {
        let mut h = Histogram::new();
        for v in [0.002, 0.4, 0.4, 3.0, 18.0, 95.0, 400.0, 2.5e3, 8e4, 2e12] {
            h.observe(v);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
        let mut prev = f64::NEG_INFINITY;
        for q in qs {
            if let Some(p) = h.percentile(q) {
                assert!(p >= prev, "p({q}) = {p} < {prev}");
                prev = p;
            }
        }
        assert_eq!(h.percentile(1.0), Some(2e12));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        h.observe(1.0);
        let before = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, before);
    }
}
