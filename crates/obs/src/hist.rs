//! Fixed-bucket histograms.
//!
//! One global 1–2–5 log ladder covers every series the reproduction
//! records — microseconds of processing up to giga-scale message counts
//! — so histograms from different runs, cells, and threads merge by
//! plain bucket-wise addition and always emit the same bounds.

/// Inclusive upper bounds of the shared 1–2–5 ladder, ascending.
/// Values above the last bound land in an overflow bucket that emits
/// with a `null` bound; values at or below `1e-6` (including zero and
/// negatives) land in the first bucket.
pub const BUCKET_BOUNDS: [f64; 46] = [
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2,
    0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1e3, 2e3, 5e3, 1e4,
    2e4, 5e4, 1e5, 2e5, 5e5, 1e6, 2e6, 5e6, 1e7, 2e7, 5e7, 1e8, 2e8, 5e8, 1e9,
];

/// Index into the per-histogram count array for a sample, with the
/// overflow bucket at `BUCKET_BOUNDS.len()`.
fn bucket_index(v: f64) -> usize {
    BUCKET_BOUNDS
        .iter()
        .position(|b| v <= *b)
        .unwrap_or(BUCKET_BOUNDS.len())
}

/// A fixed-bucket histogram with exact count/sum/min/max sidecars.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// One count per [`BUCKET_BOUNDS`] entry plus the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKET_BOUNDS.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample. Non-finite samples are dropped (NaN/∞ would
    /// poison `sum` and break byte-stable emission).
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let idx = bucket_index(v);
        if let Some(c) = self.counts.get_mut(idx) {
            *c += 1;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Bucket-wise merge (the operation parallel sweeps rely on; it is
    /// commutative but the engine still merges in slot order so `sum`,
    /// a float, accumulates in a fixed order).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest sample, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.sum / self.count as f64)
    }

    /// The non-empty buckets, ascending; `None` bound = overflow.
    pub fn nonzero_buckets(&self) -> Vec<(Option<f64>, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (BUCKET_BOUNDS.get(i).copied(), *c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_strictly_ascending() {
        for w in BUCKET_BOUNDS.windows(2) {
            assert!(w[0] < w[1], "{w:?}");
        }
    }

    #[test]
    fn observe_places_samples_on_the_ladder() {
        let mut h = Histogram::new();
        h.observe(0.15); // → bucket 0.2
        h.observe(0.2); // inclusive upper bound → bucket 0.2
        h.observe(3.0); // → bucket 5.0
        assert_eq!(h.count(), 3);
        assert_eq!(
            h.nonzero_buckets(),
            vec![(Some(0.2), 2), (Some(5.0), 1)]
        );
        assert_eq!(h.min(), Some(0.15));
        assert_eq!(h.max(), Some(3.0));
    }

    #[test]
    fn extremes_land_in_edge_buckets() {
        let mut h = Histogram::new();
        h.observe(0.0);
        h.observe(-5.0);
        h.observe(2e12);
        assert_eq!(
            h.nonzero_buckets(),
            vec![(Some(1e-6), 2), (None, 1)]
        );
    }

    #[test]
    fn non_finite_samples_dropped() {
        let mut h = Histogram::new();
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn merge_matches_sequential_observation() {
        let samples = [0.001, 0.4, 7.0, 7.0, 900.0, 1e10];
        let mut whole = Histogram::new();
        for s in samples {
            whole.observe(s);
        }
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for (i, s) in samples.iter().enumerate() {
            if i % 2 == 0 {
                left.observe(*s);
            } else {
                right.observe(*s);
            }
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        h.observe(1.0);
        let before = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, before);
    }
}
