//! `sctrace` — analyze sc-obs telemetry sidecars.
//!
//! ```text
//! sctrace tree <telemetry.json>            indented span tree
//! sctrace critical-path <telemetry.json>   per-kind p50/p95/p99 + slowest chains
//! sctrace folded <telemetry.json>          flamegraph-compatible folded stacks
//! sctrace series <telemetry.json>          windowed series sparkline table
//! sctrace diff <a.json> <b.json> [--fail-on-regress <pct>]
//! ```
//!
//! `series` renders the sc-obs/3 windowed time-series section: one row
//! per series with total, peak window, steady-state (median), the
//! peak/steady storm-amplitude ratio, and a sparkline of the shape.
//! Older sidecars (sc-obs/1, sc-obs/2) have no series section; the
//! command says so and exits 0 so pipelines degrade gracefully.
//!
//! `diff` exits 2 when any counter, histogram statistic, drop counter,
//! or series total/peak increased by more than `<pct>` percent from A
//! to B — scripts/tier1.sh uses it as a telemetry regression gate (a
//! sidecar diffed against its own rerun must report zero regressions).
//! All other failures exit 1. Output is a pure function of the input
//! bytes, so reports are as byte-stable as the sidecars themselves.

use sc_obs::sidecar::Sidecar;
use sc_obs::trace::{render_diff, render_series, TraceForest};
use std::process::ExitCode;

const USAGE: &str = "usage: sctrace <tree|critical-path|folded|series> <telemetry.json>\n       sctrace diff <a.json> <b.json> [--fail-on-regress <pct>]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("sctrace: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let cmd = args.first().map(String::as_str).ok_or(USAGE)?;
    match cmd {
        "tree" | "critical-path" | "folded" => {
            let path = args.get(1).map(String::as_str).ok_or(USAGE)?;
            if args.len() > 2 {
                return Err(USAGE.to_string());
            }
            let sc = load(path)?;
            let forest = TraceForest::build(&sc.spans);
            let report = match cmd {
                "tree" => forest.render_tree(),
                "critical-path" => forest.render_critical_paths(),
                _ => forest.render_folded(),
            };
            print!("{report}");
            if sc.spans_dropped > 0 {
                eprintln!(
                    "sctrace: note: {} spans were shed by the bounded ring; the tree is partial",
                    sc.spans_dropped
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        "series" => {
            let path = args.get(1).map(String::as_str).ok_or(USAGE)?;
            if args.len() > 2 {
                return Err(USAGE.to_string());
            }
            let sc = load(path)?;
            print!("{}", render_series(&sc));
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            let a = args.get(1).map(String::as_str).ok_or(USAGE)?;
            let b = args.get(2).map(String::as_str).ok_or(USAGE)?;
            let gate = match args.get(3).map(String::as_str) {
                None => None,
                Some("--fail-on-regress") => Some(
                    args.get(4)
                        .ok_or(USAGE)?
                        .parse::<f64>()
                        .map_err(|e| format!("bad --fail-on-regress value: {e}"))?,
                ),
                Some(_) => return Err(USAGE.to_string()),
            };
            if args.len() > 5 {
                return Err(USAGE.to_string());
            }
            let (sa, sb) = (load(a)?, load(b)?);
            let report = render_diff(&sa, &sb, gate.unwrap_or(f64::INFINITY));
            print!("{}", report.text);
            if gate.is_some() && !report.regressions.is_empty() {
                eprintln!(
                    "sctrace: {} regression(s) beyond the gate: {}",
                    report.regressions.len(),
                    report.regressions.join(", ")
                );
                return Ok(ExitCode::from(2));
            }
            Ok(ExitCode::SUCCESS)
        }
        _ => Err(USAGE.to_string()),
    }
}

fn load(path: &str) -> Result<Sidecar, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Sidecar::parse(&text).map_err(|e| format!("{path}: {e}"))
}
