//! Windowed time-series: the `sc-obs/3` time axis.
//!
//! A [`SeriesSet`] records per-window values over **simulated** time,
//! chopped into fixed-width windows whose edges sit on an integer
//! microsecond-tick grid: a sample at sim-time `t` lands in window
//! `round(t·1e6) / WINDOW_TICKS`. With the default
//! [`WINDOW_TICKS`] = 1 000 000 the window is exactly 1.0 native time
//! unit — the DES calendar's `BUCKET_WIDTH_S` and the `ext_mload` /
//! `ext_chaosload` batch window — so a `drain_until` batch never
//! straddles a window and the rounding rule matches the engines' own
//! `tick()` grids (an event scheduled *exactly* on a bucket boundary
//! belongs to the window it opens).
//!
//! Two series kinds exist, chosen by first touch of a name:
//!
//! * **counter** series ([`SeriesData::Counter`]): a dense
//!   window-indexed `Vec<u64>` of per-window totals. Merging adds
//!   element-wise, so per-shard tallies fold identically under any
//!   shard count, thread count, or merge order — the same additivity
//!   argument as plain counters.
//! * **gauge** series ([`SeriesData::Gauge`]): a dense window-indexed
//!   `Vec<Option<f64>>` of last-written samples. Merging replays the
//!   child's written windows over the parent's (last write wins in
//!   merge order), like plain gauges — deterministic because children
//!   always absorb in input-slot order.
//!
//! Buffers are **dense window-indexed Vecs, not per-UE keyed state**:
//! nothing here identifies a subscriber, so recording into a series
//! from a stateless processing path stays within the sc-audit R4
//! state-flow rules. Windows at or past the per-series capacity are
//! shed and counted ([`SeriesSet::dropped`]) — truncation is never
//! silent, mirroring the event/span rings.

use std::collections::BTreeMap;

/// Ticks per window: 1 000 000 µs-grid ticks = 1.0 native sim-time
/// unit, aligned to the DES calendar bucket width.
pub const WINDOW_TICKS: u64 = 1_000_000;

/// Default bound on windows per series: 4096 windows ≈ 68 minutes of
/// sim-time at 1 s windows, far past every soak in this repository.
/// Samples landing at or beyond it are shed and counted.
pub const DEFAULT_SERIES_CAPACITY: usize = 4096;

/// Map sim-time `t` (native unit) onto the integer µs-tick grid.
/// `None` for negative or non-finite times (those samples are shed).
pub fn tick_of(t: f64) -> Option<u64> {
    if !t.is_finite() || t < 0.0 {
        return None;
    }
    let tick = (t * 1e6).round();
    (tick <= u64::MAX as f64).then_some(tick as u64)
}

/// What one series holds per window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Per-window totals; merges add element-wise.
    Counter,
    /// Per-window last-written samples; merges overwrite written windows.
    Gauge,
}

impl SeriesKind {
    /// The serialized kind tag.
    pub fn label(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
        }
    }
}

/// One series' dense window-indexed buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesData {
    Counter(Vec<u64>),
    Gauge(Vec<Option<f64>>),
}

impl SeriesData {
    /// Which kind this buffer is.
    pub fn kind(&self) -> SeriesKind {
        match self {
            SeriesData::Counter(_) => SeriesKind::Counter,
            SeriesData::Gauge(_) => SeriesKind::Gauge,
        }
    }

    /// Number of windows allocated (index of the last touched window + 1).
    pub fn windows(&self) -> usize {
        match self {
            SeriesData::Counter(v) => v.len(),
            SeriesData::Gauge(v) => v.len(),
        }
    }

    /// Sparse `(window, value)` points in ascending window order:
    /// non-zero windows for counters, written windows for gauges.
    pub fn points(&self) -> Vec<(u64, f64)> {
        match self {
            SeriesData::Counter(v) => v
                .iter()
                .enumerate()
                .filter(|(_, n)| **n > 0)
                .map(|(w, n)| (w as u64, *n as f64))
                .collect(),
            SeriesData::Gauge(v) => v
                .iter()
                .enumerate()
                .filter_map(|(w, s)| s.map(|x| (w as u64, x)))
                .collect(),
        }
    }
}

/// The windowed time-series registry inside a recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSet {
    window_ticks: u64,
    capacity: usize,
    series: BTreeMap<&'static str, SeriesData>,
    dropped: u64,
}

impl Default for SeriesSet {
    fn default() -> Self {
        Self::with_config(WINDOW_TICKS, DEFAULT_SERIES_CAPACITY)
    }
}

impl SeriesSet {
    /// A set with an explicit window width (ticks) and per-series
    /// window capacity. A zero `window_ticks` is clamped to 1.
    pub fn with_config(window_ticks: u64, capacity: usize) -> Self {
        Self {
            window_ticks: window_ticks.max(1),
            capacity,
            series: BTreeMap::new(),
            dropped: 0,
        }
    }

    /// Window width in µs-grid ticks.
    pub fn window_ticks(&self) -> u64 {
        self.window_ticks
    }

    /// Per-series window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The window index tick `tick` falls into.
    pub fn window_of(&self, tick: u64) -> u64 {
        tick / self.window_ticks
    }

    /// Samples shed so far: beyond-capacity windows, kind-mismatched
    /// writes, non-finite gauge samples, and negative/non-finite times.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// True when nothing was recorded and nothing was shed.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty() && self.dropped == 0
    }

    /// Iterate `(name, data)` in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &SeriesData)> {
        self.series.iter().map(|(k, v)| (*k, v))
    }

    /// The buffer under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&SeriesData> {
        self.series.get(name)
    }

    /// Number of distinct series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Note samples shed elsewhere (merge plumbing).
    pub fn note_dropped(&mut self, n: u64) {
        self.dropped = self.dropped.saturating_add(n);
    }

    /// Add `by` to the counter series `name` in the window holding
    /// `tick`. First touch fixes the series' kind to counter.
    pub fn inc_tick(&mut self, name: &'static str, tick: u64, by: u64) {
        let w = self.window_of(tick) as usize;
        if w >= self.capacity {
            self.dropped += 1;
            return;
        }
        match self
            .series
            .entry(name)
            .or_insert_with(|| SeriesData::Counter(Vec::new()))
        {
            SeriesData::Counter(v) => {
                if v.len() <= w {
                    v.resize(w + 1, 0);
                }
                v[w] = v[w].saturating_add(by);
            }
            SeriesData::Gauge(_) => self.dropped += 1,
        }
    }

    /// Write `v` into the gauge series `name` in the window holding
    /// `tick` (last write per window wins). Non-finite samples are
    /// shed; first touch fixes the series' kind to gauge.
    pub fn gauge_tick(&mut self, name: &'static str, tick: u64, v: f64) {
        if !v.is_finite() {
            self.dropped += 1;
            return;
        }
        let w = self.window_of(tick) as usize;
        if w >= self.capacity {
            self.dropped += 1;
            return;
        }
        match self
            .series
            .entry(name)
            .or_insert_with(|| SeriesData::Gauge(Vec::new()))
        {
            SeriesData::Gauge(g) => {
                if g.len() <= w {
                    g.resize(w + 1, None);
                }
                g[w] = Some(v);
            }
            SeriesData::Counter(_) => self.dropped += 1,
        }
    }

    /// [`Self::inc_tick`] at sim-time `t` (native unit); negative or
    /// non-finite times are shed.
    pub fn inc(&mut self, name: &'static str, t: f64, by: u64) {
        match tick_of(t) {
            Some(tick) => self.inc_tick(name, tick, by),
            None => self.dropped += 1,
        }
    }

    /// [`Self::gauge_tick`] at sim-time `t` (native unit); negative or
    /// non-finite times are shed.
    pub fn gauge(&mut self, name: &'static str, t: f64, v: f64) {
        match tick_of(t) {
            Some(tick) => self.gauge_tick(name, tick, v),
            None => self.dropped += 1,
        }
    }

    /// Merge `other` into `self`: counter windows add element-wise,
    /// gauge windows take the other's written values (last write wins
    /// in merge order), shed counts accumulate. A window-width mismatch
    /// sheds the other set's points rather than guessing a rebinning.
    pub fn merge(&mut self, other: &SeriesSet) {
        self.dropped = self.dropped.saturating_add(other.dropped);
        if other.window_ticks != self.window_ticks {
            let points: u64 = other.series.values().map(|d| d.points().len() as u64).sum();
            self.dropped = self.dropped.saturating_add(points);
            return;
        }
        for (name, data) in &other.series {
            match data {
                SeriesData::Counter(theirs) => {
                    for (w, by) in theirs.iter().enumerate() {
                        if *by > 0 {
                            self.inc_tick(name, w as u64 * self.window_ticks, *by);
                        }
                    }
                }
                SeriesData::Gauge(theirs) => {
                    for (w, s) in theirs.iter().enumerate() {
                        if let Some(v) = s {
                            self.gauge_tick(name, w as u64 * self.window_ticks, *v);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_windows_accumulate_on_the_tick_grid() {
        let mut s = SeriesSet::default();
        s.inc("a", 0.0, 1);
        s.inc("a", 0.999_999, 2); // last tick of window 0
        s.inc("a", 1.0, 5); // exactly on the boundary → window 1
        s.inc("a", 2.5, 7);
        assert_eq!(s.get("a").map(|d| d.kind()), Some(SeriesKind::Counter));
        assert_eq!(
            s.get("a").map(|d| d.points()),
            Some(vec![(0, 3.0), (1, 5.0), (2, 7.0)])
        );
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn boundary_rounding_matches_the_engines_tick_grid() {
        // 59.9999996 s rounds to tick 60_000_000 → window 60, exactly
        // like `(t * 1e6).round()` in the sharded engines.
        assert_eq!(tick_of(59.999_999_6), Some(60_000_000));
        assert_eq!(tick_of(59.999_999_4), Some(59_999_999));
        assert_eq!(tick_of(-1.0), None);
        assert_eq!(tick_of(f64::NAN), None);
        assert_eq!(tick_of(f64::INFINITY), None);
    }

    #[test]
    fn gauge_last_write_per_window() {
        let mut s = SeriesSet::default();
        s.gauge("g", 0.25, 1.0);
        s.gauge("g", 0.75, 2.0);
        s.gauge("g", 3.0, 9.0);
        assert_eq!(s.get("g").map(|d| d.kind()), Some(SeriesKind::Gauge));
        assert_eq!(s.get("g").map(SeriesData::windows), Some(4));
        assert_eq!(s.get("g").map(|d| d.points()), Some(vec![(0, 2.0), (3, 9.0)]));
    }

    #[test]
    fn capacity_sheds_and_counts() {
        let mut s = SeriesSet::with_config(WINDOW_TICKS, 2);
        s.inc("a", 0.0, 1);
        s.inc("a", 5.0, 1); // window 5 ≥ capacity 2
        s.gauge("g", 7.0, 1.0);
        assert_eq!(s.dropped(), 2);
        assert_eq!(s.get("a").map(SeriesData::windows), Some(1));
    }

    #[test]
    fn kind_mismatch_and_nonfinite_shed() {
        let mut s = SeriesSet::default();
        s.inc("x", 0.0, 1);
        s.gauge("x", 0.0, 2.0); // counter series: gauge write shed
        s.gauge("g", 0.0, f64::NAN);
        s.inc("y", f64::NAN, 1);
        assert_eq!(s.dropped(), 3);
        assert_eq!(s.get("x").map(|d| d.kind()), Some(SeriesKind::Counter));
    }

    #[test]
    fn merge_is_order_invariant_for_counters() {
        let mk = |windows: &[(f64, u64)]| {
            let mut s = SeriesSet::default();
            for (t, by) in windows {
                s.inc("c", *t, *by);
            }
            s
        };
        let a = mk(&[(0.5, 1), (2.5, 3)]);
        let b = mk(&[(1.5, 2), (2.5, 4)]);
        let mut ab = SeriesSet::default();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = SeriesSet::default();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(
            ab.get("c").map(|d| d.points()),
            Some(vec![(0, 1.0), (1, 2.0), (2, 7.0)])
        );
    }

    #[test]
    fn merge_gauges_last_write_in_merge_order() {
        let mut a = SeriesSet::default();
        a.gauge("g", 0.0, 1.0);
        let mut b = SeriesSet::default();
        b.gauge("g", 0.0, 2.0);
        b.gauge("g", 4.0, 5.0);
        let mut m = SeriesSet::default();
        m.merge(&a);
        m.merge(&b);
        assert_eq!(m.get("g").map(|d| d.points()), Some(vec![(0, 2.0), (4, 5.0)]));
    }

    #[test]
    fn merge_accumulates_dropped_and_rejects_width_mismatch() {
        let mut a = SeriesSet::with_config(WINDOW_TICKS, 1);
        a.inc("c", 5.0, 1); // shed
        let mut m = SeriesSet::default();
        m.merge(&a);
        assert_eq!(m.dropped(), 1);
        let mut odd = SeriesSet::with_config(500_000, DEFAULT_SERIES_CAPACITY);
        odd.inc("c", 0.0, 1);
        m.merge(&odd);
        assert_eq!(m.dropped(), 2);
        assert!(m.get("c").is_none());
    }

    #[test]
    fn empty_and_len_track_contents() {
        let mut s = SeriesSet::default();
        assert!(s.is_empty());
        s.inc("a", 0.0, 1);
        assert!(!s.is_empty());
        assert_eq!(s.len(), 1);
        assert_eq!(s.window_ticks(), WINDOW_TICKS);
        assert_eq!(s.capacity(), DEFAULT_SERIES_CAPACITY);
    }
}
