//! # sc-obs — deterministic, zero-dependency observability
//!
//! The measurement substrate for the SpaceCore reproduction: counters,
//! gauges, and fixed-bucket histograms keyed by `&'static str` names,
//! plus bounded rings of structured events and causal [`span::Span`]s
//! (parent-linked, so a procedure and its hops form a trace tree the
//! `sctrace` binary can analyze) and windowed [`series::SeriesSet`]
//! time-series (fixed 1.0-unit windows on an integer µs-tick grid, so
//! storms and recoveries have a visible time axis), all stamped with
//! **simulated time** —
//! never wall clock. Every figure in EXPERIMENTS.md regenerates
//! byte-for-byte, and telemetry must not be the thing that breaks that:
//! snapshots emit in sorted order with a stable float format, so the
//! same run always produces the same bytes, across reruns and across
//! `SC_EMU_THREADS` worker counts.
//!
//! ## Design constraints
//!
//! * **Zero dependencies.** The JSON emitter is hand-rolled
//!   ([`Snapshot::to_json`]); maps are `BTreeMap` so emission order is
//!   the sorted name order, not hash order (sc-audit R2-unordered).
//! * **No wall-clock reads.** Event timestamps are supplied by the
//!   caller from the DES scheduler ([`Recorder::event`]); this crate is
//!   deliberately *not* on sc-audit's R2 timing allowlist, so an
//!   `Instant::now()` here is a build-breaking finding.
//! * **No panic sites.** The crate ratchets at zero in the R3 baseline:
//!   no `unwrap`/`expect`/`panic!`/`unsafe`, tests included. Mutex
//!   poisoning is absorbed (`PoisonError::into_inner`), non-finite
//!   observations are dropped, and a full event ring drops the oldest
//!   entry while counting the loss ([`Snapshot::events_dropped`]).
//! * **Disabled-by-default cost.** A [`Recorder`] built with
//!   [`Recorder::disabled`] holds no allocation and every operation is
//!   one `Option` check, so instrumented hot paths (the DES scheduler,
//!   Algorithm 1 relay steps) pay nothing when telemetry is off.
//!
//! ## Determinism across threads
//!
//! Parallel sweeps record into per-cell child recorders
//! ([`Recorder::child`]) which the owner merges back in input-slot
//! order ([`Recorder::absorb`]): counters and histograms commute, and
//! events append in the deterministic merge order — so the merged
//! snapshot is independent of worker count and scheduling.
//!
//! The full metric/event name registry, with units and the paper figure
//! each series explains, lives in `docs/TELEMETRY.md`.

pub mod events;
pub mod hist;
mod json;
pub mod recorder;
pub mod series;
pub mod sidecar;
pub mod slo;
pub mod snapshot;
pub mod span;
pub mod trace;

pub use events::{Event, EventRing, FieldValue};
pub use hist::{Histogram, BUCKET_BOUNDS};
pub use recorder::{Recorder, DEFAULT_EVENT_CAPACITY, DEFAULT_SPAN_CAPACITY};
pub use series::{SeriesData, SeriesKind, SeriesSet, DEFAULT_SERIES_CAPACITY, WINDOW_TICKS};
pub use sidecar::Sidecar;
pub use slo::{SloRule, SloTracker, SloVerdict};
pub use snapshot::Snapshot;
pub use span::{Span, SpanId, SpanRing};

/// Schema identifier written into every emitted snapshot, bumped when
/// the JSON layout changes shape (documented in docs/TELEMETRY.md).
/// `sc-obs/2` added the causal `"spans"` section; `sc-obs/3` the
/// windowed `"series"` section. Readers accept all three generations.
pub const SCHEMA: &str = "sc-obs/3";
