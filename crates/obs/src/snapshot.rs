//! Point-in-time snapshots and their byte-stable JSON form.

use crate::events::{Event, FieldValue};
use crate::hist::Histogram;
use crate::json::{push_f64, push_str_literal};
use crate::series::{SeriesData, SeriesSet};
use crate::span::Span;
use std::collections::BTreeMap;

/// Everything a [`crate::Recorder`] has collected, frozen.
///
/// Maps are `BTreeMap`s so iteration — and therefore [`Snapshot::to_json`]
/// emission — is sorted name order. Two snapshots of identical runs
/// serialize to identical bytes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    pub counters: BTreeMap<&'static str, u64>,
    pub gauges: BTreeMap<&'static str, f64>,
    pub histograms: BTreeMap<&'static str, Histogram>,
    /// Events in recording/merge order (deterministic; not re-sorted by
    /// time because the caller's schedule is the ground truth).
    pub events: Vec<Event>,
    /// Events shed by the bounded ring.
    pub events_dropped: u64,
    /// Causal spans in recording/merge order (ascending id, parents
    /// before children).
    pub spans: Vec<Span>,
    /// Spans shed by the bounded ring.
    pub spans_dropped: u64,
    /// Span ids handed out so far, shed spans included. Not serialized;
    /// [`crate::Recorder::absorb`] uses it to offset a child's ids onto
    /// the parent's id space.
    pub span_ids_allocated: u64,
    /// Windowed time-series (`sc-obs/3`), shed-sample count included
    /// ([`SeriesSet::dropped`], serialized as `series_dropped`).
    pub series: SeriesSet,
}

impl Snapshot {
    /// Counter value, 0 when never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, `None` when never set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram, `None` when nothing was observed under `name`.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Sorted union of all metric names (counters, gauges, histograms).
    pub fn metric_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .copied()
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// True when nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.events.is_empty()
            && self.events_dropped == 0
            && self.spans.is_empty()
            && self.spans_dropped == 0
            && self.span_ids_allocated == 0
            && self.series.is_empty()
    }

    /// Serialize to the documented telemetry JSON (docs/TELEMETRY.md):
    /// sorted keys, 2-space indent, shortest-round-trip floats, trailing
    /// newline. Byte-stable: identical snapshots → identical bytes.
    pub fn to_json(&self, experiment: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": ");
        push_str_literal(&mut out, crate::SCHEMA);
        out.push_str(",\n  \"experiment\": ");
        push_str_literal(&mut out, experiment);

        out.push_str(",\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            push_str_literal(&mut out, name);
            out.push_str(": ");
            out.push_str(&v.to_string());
        }
        out.push_str(if self.counters.is_empty() { "}" } else { "\n  }" });

        out.push_str(",\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            push_str_literal(&mut out, name);
            out.push_str(": ");
            push_f64(&mut out, *v);
        }
        out.push_str(if self.gauges.is_empty() { "}" } else { "\n  }" });

        out.push_str(",\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            push_str_literal(&mut out, name);
            out.push_str(": {\"count\": ");
            out.push_str(&h.count().to_string());
            out.push_str(", \"sum\": ");
            push_f64(&mut out, h.sum());
            if let (Some(mn), Some(mx)) = (h.min(), h.max()) {
                out.push_str(", \"min\": ");
                push_f64(&mut out, mn);
                out.push_str(", \"max\": ");
                push_f64(&mut out, mx);
            }
            out.push_str(", \"buckets\": [");
            for (j, (bound, c)) in h.nonzero_buckets().iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push('[');
                match bound {
                    Some(b) => push_f64(&mut out, *b),
                    None => out.push_str("null"),
                }
                out.push_str(", ");
                out.push_str(&c.to_string());
                out.push(']');
            }
            out.push_str("]}");
        }
        out.push_str(if self.histograms.is_empty() { "}" } else { "\n  }" });

        out.push_str(",\n  \"events\": [");
        for (i, ev) in self.events.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            push_event(&mut out, ev);
        }
        out.push_str(if self.events.is_empty() { "]" } else { "\n  ]" });

        out.push_str(",\n  \"events_dropped\": ");
        out.push_str(&self.events_dropped.to_string());

        out.push_str(",\n  \"spans\": [");
        for (i, sp) in self.spans.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            push_span(&mut out, sp);
        }
        out.push_str(if self.spans.is_empty() { "]" } else { "\n  ]" });

        out.push_str(",\n  \"spans_dropped\": ");
        out.push_str(&self.spans_dropped.to_string());

        out.push_str(",\n  \"series\": {");
        let mut any_series = false;
        for (i, (name, data)) in self.series.iter().enumerate() {
            any_series = true;
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            push_str_literal(&mut out, name);
            out.push_str(": {\"kind\": ");
            push_str_literal(&mut out, data.kind().label());
            out.push_str(", \"window_ticks\": ");
            out.push_str(&self.series.window_ticks().to_string());
            out.push_str(", \"points\": [");
            for (j, (w, v)) in data.points().iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push('[');
                out.push_str(&w.to_string());
                out.push_str(", ");
                match data {
                    // Counter windows are exact u64 totals; keep the
                    // integer spelling so they parse losslessly.
                    SeriesData::Counter(_) => out.push_str(&(*v as u64).to_string()),
                    SeriesData::Gauge(_) => push_f64(&mut out, *v),
                }
                out.push(']');
            }
            out.push_str("]}");
        }
        out.push_str(if any_series { "\n  }" } else { "}" });

        out.push_str(",\n  \"series_dropped\": ");
        out.push_str(&self.series.dropped().to_string());
        out.push_str("\n}\n");
        out
    }
}

fn push_span(out: &mut String, sp: &Span) {
    out.push_str("{\"id\": ");
    out.push_str(&sp.id.to_string());
    out.push_str(", \"parent\": ");
    match sp.parent {
        Some(p) => out.push_str(&p.to_string()),
        None => out.push_str("null"),
    }
    out.push_str(", \"kind\": ");
    push_str_literal(out, sp.kind);
    out.push_str(", \"start\": ");
    push_f64(out, sp.start);
    out.push_str(", \"end\": ");
    match sp.end {
        // push_f64 writes null for a non-finite end; an open span's
        // missing end takes the same spelling.
        Some(e) => push_f64(out, e),
        None => out.push_str("null"),
    }
    out.push_str(", \"fields\": {");
    let mut fields: Vec<&(&'static str, FieldValue)> = sp.fields.iter().collect();
    fields.sort_by_key(|(k, _)| *k);
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_str_literal(out, k);
        out.push_str(": ");
        match v {
            FieldValue::U64(n) => out.push_str(&n.to_string()),
            FieldValue::F64(f) => push_f64(out, *f),
            FieldValue::Str(s) => push_str_literal(out, s),
        }
    }
    out.push_str("}}");
}

fn push_event(out: &mut String, ev: &Event) {
    out.push_str("{\"t\": ");
    push_f64(out, ev.t);
    out.push_str(", \"kind\": ");
    push_str_literal(out, ev.kind);
    out.push_str(", \"fields\": {");
    // Sort field keys for stable emission (stable sort: duplicate keys
    // keep their recording order).
    let mut fields: Vec<&(&'static str, FieldValue)> = ev.fields.iter().collect();
    fields.sort_by_key(|(k, _)| *k);
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_str_literal(out, k);
        out.push_str(": ");
        match v {
            FieldValue::U64(n) => out.push_str(&n.to_string()),
            FieldValue::F64(f) => push_f64(out, *f),
            FieldValue::Str(s) => push_str_literal(out, s),
        }
    }
    out.push_str("}}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn sample() -> Snapshot {
        let r = Recorder::new();
        r.inc("b.count", 2);
        r.inc("a.count", 1);
        r.set_gauge("z.gauge", 0.5);
        r.observe("m.hist", 3.0);
        r.series_inc("w.count_per_s", 0.5, 4);
        r.series_inc("w.count_per_s", 2.0, 1);
        r.series_gauge("w.depth", 1.5, 0.25);
        r.event(
            1.25,
            "net.step",
            vec![("name", FieldValue::from("rrc")), ("idx", FieldValue::from(0usize))],
        );
        let root = r.span_open(None, "net.proc", 0.0, vec![("route", FieldValue::from("ground"))]);
        r.span(Some(root), "net.hop", 0.0, 1.25, vec![]);
        r.span_close(root, 1.25);
        r.snapshot()
    }

    #[test]
    fn json_is_sorted_and_complete() {
        let j = sample().to_json("unit");
        assert!(j.contains("\"schema\": \"sc-obs/3\""));
        assert!(j.contains("\"experiment\": \"unit\""));
        // Counters in sorted order.
        let a = j.find("a.count");
        let b = j.find("b.count");
        assert!(a < b, "{j}");
        // Event fields sorted by key.
        let idx = j.find("\"idx\"");
        let name = j.find("\"name\"");
        assert!(idx < name, "{j}");
        assert!(j.ends_with("}\n"));
    }

    #[test]
    fn json_is_byte_stable() {
        assert_eq!(sample().to_json("x"), sample().to_json("x"));
    }

    #[test]
    fn empty_snapshot_has_fixed_shape() {
        let j = Snapshot::default().to_json("empty");
        assert!(j.contains("\"counters\": {}"));
        assert!(j.contains("\"gauges\": {}"));
        assert!(j.contains("\"histograms\": {}"));
        assert!(j.contains("\"events\": []"));
        assert!(j.contains("\"events_dropped\": 0"));
        assert!(j.contains("\"spans\": []"));
        assert!(j.contains("\"spans_dropped\": 0"));
        assert!(j.contains("\"series\": {}"));
        assert!(j.contains("\"series_dropped\": 0"));
    }

    #[test]
    fn series_emission_shape() {
        let j = sample().to_json("unit");
        assert!(
            j.contains(
                "\"w.count_per_s\": {\"kind\": \"counter\", \"window_ticks\": 1000000, \"points\": [[0, 4], [2, 1]]}"
            ),
            "{j}"
        );
        assert!(
            j.contains(
                "\"w.depth\": {\"kind\": \"gauge\", \"window_ticks\": 1000000, \"points\": [[1, 0.25]]}"
            ),
            "{j}"
        );
    }

    #[test]
    fn span_emission_shape() {
        let j = sample().to_json("unit");
        assert!(
            j.contains(
                "{\"id\": 0, \"parent\": null, \"kind\": \"net.proc\", \"start\": 0.0, \"end\": 1.25, \"fields\": {\"route\": \"ground\"}}"
            ),
            "{j}"
        );
        assert!(
            j.contains("{\"id\": 1, \"parent\": 0, \"kind\": \"net.hop\""),
            "{j}"
        );
    }

    #[test]
    fn open_span_emits_null_end() {
        let r = Recorder::new();
        let s = r.span_open(None, "open", 1.0, vec![]);
        // A non-finite close is refused, so the span stays open.
        r.span_close(s, f64::INFINITY);
        let j = r.snapshot().to_json("unit");
        assert!(j.contains("\"start\": 1.0, \"end\": null"), "{j}");
    }

    #[test]
    fn metric_names_union_sorted() {
        let s = sample();
        assert_eq!(
            s.metric_names(),
            vec!["a.count", "b.count", "m.hist", "z.gauge"]
        );
    }

    #[test]
    fn histogram_emission_includes_sidecars() {
        let j = sample().to_json("unit");
        assert!(
            j.contains("\"m.hist\": {\"count\": 1, \"sum\": 3.0, \"min\": 3.0, \"max\": 3.0, \"buckets\": [[5.0, 1]]}"),
            "{j}"
        );
    }
}
