//! Bounded causal-span ring.
//!
//! A span is one timed, named piece of causal structure: a procedure
//! attempt, one step of it, a single transmission, a relay hop. Spans
//! carry **simulated-time** start/end stamps (the emitting module's
//! time base, like events), a static kind, an optional parent link, and
//! a small key/value payload. Parent links turn a flat telemetry stream
//! into a navigable trace tree: `sctrace` (this crate's analysis
//! binary) rebuilds the tree from the serialized `"spans"` section and
//! answers "which hop on which procedure's critical path dominated".
//!
//! Determinism rules match the event ring: ids are allocated in
//! recording order, merged child rings are remapped onto the parent's
//! id space in input-slot order ([`crate::Recorder::absorb`]), and the
//! ring keeps the most recent `capacity` spans while counting what it
//! sheds. A span's parent is always allocated before the span itself,
//! so emission order is parent-first — the invariant the workspace
//! proptests pin down.

use crate::events::FieldValue;
use std::collections::VecDeque;

/// Identifier of a span within one recorder's id space.
///
/// Ids are dense and allocated in recording order; a child recorder's
/// ids are offset onto the parent's space when absorbed, so they stay
/// unique and parent-first within the merged snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// Sentinel returned by a **disabled** recorder's
    /// [`crate::Recorder::span_open`]; closing it is a no-op and using
    /// it as a parent records a root span.
    pub const DISABLED: SpanId = SpanId(u64::MAX);
}

/// One recorded span.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Dense id in the snapshot's id space (allocation order).
    pub id: u64,
    /// Causal parent, `None` for a root span.
    pub parent: Option<u64>,
    /// Static span kind, e.g. `netsim.sim.procedure`.
    pub kind: &'static str,
    /// Simulated start time (emitting module's time base).
    pub start: f64,
    /// Simulated end time; `None` while the span is open (serialized as
    /// `null` — a procedure blocked mid-flight leaves its step spans
    /// visibly unclosed).
    pub end: Option<f64>,
    /// Field key/value pairs; keys are sorted at emission time.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Span {
    /// `end - start` for a closed span with finite stamps.
    pub fn duration(&self) -> Option<f64> {
        match self.end {
            Some(e) if self.start.is_finite() && e.is_finite() => Some(e - self.start),
            _ => None,
        }
    }
}

/// Keep-last ring of spans with a shed counter and an id allocator.
#[derive(Debug, Clone)]
pub struct SpanRing {
    capacity: usize,
    spans: VecDeque<Span>,
    dropped: u64,
    next_id: u64,
}

impl SpanRing {
    /// An empty ring bounded at `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            spans: VecDeque::new(),
            dropped: 0,
            next_id: 0,
        }
    }

    /// Allocate an id and record an open span. The id is allocated even
    /// when the ring is full (and the span shed), so parent links stay
    /// dense and parent-first.
    pub fn open(
        &mut self,
        parent: Option<SpanId>,
        kind: &'static str,
        start: f64,
        fields: Vec<(&'static str, FieldValue)>,
    ) -> SpanId {
        let id = self.next_id;
        self.next_id += 1;
        self.push(Span {
            id,
            parent: parent.filter(|p| *p != SpanId::DISABLED).map(|p| p.0),
            kind,
            start,
            end: None,
            fields,
        });
        SpanId(id)
    }

    /// Close span `id` at `end`, appending `extra` fields. A non-finite
    /// `end` leaves the span open (it serializes as `null`); closing a
    /// shed or unknown id is a no-op.
    pub fn close(&mut self, id: SpanId, end: f64, extra: Vec<(&'static str, FieldValue)>) {
        // Recent spans close most often: scan from the back.
        if let Some(s) = self.spans.iter_mut().rev().find(|s| s.id == id.0) {
            if end.is_finite() {
                s.end = Some(end);
            }
            s.fields.extend(extra);
        }
    }

    fn push(&mut self, span: Span) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.spans.len() >= self.capacity {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(span);
    }

    /// Merge a child ring's snapshot: every span (and its parent link)
    /// is offset by this ring's allocation watermark, so merged ids stay
    /// unique and keep parent-before-child order. `ids_allocated` is the
    /// child's allocation count (shed spans included), `dropped` its
    /// shed count.
    pub fn absorb(&mut self, spans: &[Span], ids_allocated: u64, dropped: u64) {
        let base = self.next_id;
        for s in spans {
            let mut s2 = s.clone();
            s2.id += base;
            s2.parent = s2.parent.map(|p| p + base);
            self.push(s2);
        }
        self.next_id = base + ids_allocated;
        self.dropped += dropped;
    }

    /// Spans currently retained.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans shed because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Ids handed out so far (shed spans included).
    pub fn ids_allocated(&self) -> u64 {
        self.next_id
    }

    /// Configured capacity (children inherit it).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Retained spans in recording order (= ascending id order).
    pub fn iter(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_close_round_trip() {
        let mut r = SpanRing::new(8);
        let root = r.open(None, "proc", 0.0, vec![]);
        let child = r.open(Some(root), "step", 1.0, vec![("idx", FieldValue::from(0u64))]);
        r.close(child, 3.0, vec![]);
        r.close(root, 4.0, vec![("completed", FieldValue::from(1u64))]);
        let spans: Vec<&Span> = r.iter().collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].id, 0);
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[0].end, Some(4.0));
        assert_eq!(spans[0].fields.len(), 1);
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[1].duration(), Some(2.0));
    }

    #[test]
    fn wraparound_sheds_oldest_and_counts() {
        let mut r = SpanRing::new(2);
        for i in 0..5 {
            r.open(None, "s", i as f64, vec![]);
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
        assert_eq!(r.ids_allocated(), 5);
        let ids: Vec<u64> = r.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![3, 4]);
    }

    #[test]
    fn zero_capacity_allocates_ids_but_stores_nothing() {
        let mut r = SpanRing::new(0);
        let a = r.open(None, "s", 0.0, vec![]);
        let b = r.open(Some(a), "s", 1.0, vec![]);
        assert_eq!((a, b), (SpanId(0), SpanId(1)));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 2);
        r.close(a, 2.0, vec![]); // no-op, no panic
    }

    #[test]
    fn non_finite_close_leaves_span_open() {
        let mut r = SpanRing::new(4);
        let s = r.open(None, "s", 0.0, vec![]);
        r.close(s, f64::NAN, vec![("note", FieldValue::from("kept"))]);
        let got: Vec<&Span> = r.iter().collect();
        assert_eq!(got[0].end, None);
        assert_eq!(got[0].duration(), None);
        // Extra fields still attach.
        assert_eq!(got[0].fields.len(), 1);
    }

    #[test]
    fn disabled_parent_sentinel_records_a_root() {
        let mut r = SpanRing::new(4);
        r.open(Some(SpanId::DISABLED), "s", 0.0, vec![]);
        let got: Vec<&Span> = r.iter().collect();
        assert_eq!(got[0].parent, None);
    }

    #[test]
    fn absorb_remaps_ids_and_parents() {
        let mut parent = SpanRing::new(16);
        parent.open(None, "pre", 0.0, vec![]); // id 0
        let mut child = SpanRing::new(16);
        let c_root = child.open(None, "proc", 0.0, vec![]);
        child.open(Some(c_root), "step", 1.0, vec![]);
        let spans: Vec<Span> = child.iter().cloned().collect();
        parent.absorb(&spans, child.ids_allocated(), child.dropped());
        let got: Vec<&Span> = parent.iter().collect();
        assert_eq!(got.len(), 3);
        assert_eq!(got[1].id, 1); // remapped root
        assert_eq!(got[1].parent, None);
        assert_eq!(got[2].id, 2);
        assert_eq!(got[2].parent, Some(1));
        assert_eq!(parent.ids_allocated(), 3);
        // A span opened after the merge lands above the child's range.
        let later = parent.open(None, "post", 5.0, vec![]);
        assert_eq!(later, SpanId(3));
    }

    #[test]
    fn absorb_carries_dropped_counts() {
        let mut parent = SpanRing::new(16);
        let mut child = SpanRing::new(1);
        child.open(None, "a", 0.0, vec![]);
        child.open(None, "b", 1.0, vec![]); // sheds "a"
        let spans: Vec<Span> = child.iter().cloned().collect();
        parent.absorb(&spans, child.ids_allocated(), child.dropped());
        assert_eq!(parent.dropped(), 1);
        assert_eq!(parent.len(), 1);
        assert_eq!(parent.ids_allocated(), 2);
    }

    #[test]
    fn ids_ascend_in_ring_order() {
        let mut r = SpanRing::new(8);
        let a = r.open(None, "a", 0.0, vec![]);
        r.open(Some(a), "b", 1.0, vec![]);
        let mut child = SpanRing::new(8);
        child.open(None, "c", 2.0, vec![]);
        let spans: Vec<Span> = child.iter().cloned().collect();
        r.absorb(&spans, child.ids_allocated(), 0);
        r.open(None, "d", 3.0, vec![]);
        let ids: Vec<u64> = r.iter().map(|s| s.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }
}
