//! Bounded structured-event ring.
//!
//! Events carry a **simulated-time** timestamp handed in by the caller
//! (the DES scheduler's clock, an orbital epoch — whatever the emitting
//! module's time base is; docs/TELEMETRY.md records the unit per event
//! kind). The ring keeps the most recent `capacity` events and counts
//! what it sheds, so a storm of deliveries degrades telemetry detail
//! instead of memory.

use std::collections::VecDeque;

/// A value attached to an event field.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    U64(u64),
    F64(f64),
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One structured event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulated time in the emitting module's time base — never wall
    /// clock (sc-audit R2 enforces this crate reads no clocks at all).
    pub t: f64,
    /// Static event kind, e.g. `netsim.delivery`.
    pub kind: &'static str,
    /// Field key/value pairs; keys are sorted at emission time.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// Keep-last ring of events with a shed counter.
#[derive(Debug, Clone)]
pub struct EventRing {
    capacity: usize,
    events: VecDeque<Event>,
    dropped: u64,
}

impl EventRing {
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Append an event, shedding the oldest entry when full.
    pub fn push(&mut self, ev: Event) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// How many events were shed because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Carry over a shed count from a merged child ring.
    pub fn note_dropped(&mut self, n: u64) {
        self.dropped += n;
    }

    /// Configured capacity (children inherit it).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64) -> Event {
        Event {
            t,
            kind: "test.event",
            fields: vec![("n", FieldValue::from(t))],
        }
    }

    #[test]
    fn keeps_last_capacity_events() {
        let mut r = EventRing::new(3);
        for i in 0..5 {
            r.push(ev(i as f64));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let ts: Vec<f64> = r.iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut r = EventRing::new(0);
        r.push(ev(1.0));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn field_value_conversions() {
        assert_eq!(FieldValue::from(3u64), FieldValue::U64(3));
        assert_eq!(FieldValue::from(3usize), FieldValue::U64(3));
        assert_eq!(FieldValue::from(0.5), FieldValue::F64(0.5));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".to_string()));
    }
}
