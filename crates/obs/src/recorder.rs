//! The [`Recorder`] handle threaded through instrumented code.

use crate::events::{Event, EventRing, FieldValue};
use crate::hist::Histogram;
use crate::series::SeriesSet;
use crate::snapshot::Snapshot;
use crate::span::{SpanId, SpanRing};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Default bound on the structured-event ring. Large enough for every
/// per-figure replay in this repository; storms beyond it shed oldest
/// events and count the loss.
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// Default bound on the causal-span ring, sized like the event ring:
/// every per-figure replay fits; heavier traces shed oldest spans and
/// count the loss ([`Snapshot::spans_dropped`]).
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

#[derive(Debug)]
struct Inner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    hists: BTreeMap<&'static str, Histogram>,
    events: EventRing,
    spans: SpanRing,
    series: SeriesSet,
}

impl Inner {
    fn new(event_capacity: usize, span_capacity: usize) -> Self {
        Self {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
            events: EventRing::new(event_capacity),
            spans: SpanRing::new(span_capacity),
            series: SeriesSet::default(),
        }
    }
}

/// A cheap, cloneable telemetry handle.
///
/// Clones share one underlying registry, so a recorder can be threaded
/// into several components of the same simulation (scheduler + AMF +
/// relay) and their series land in one snapshot. A **disabled** recorder
/// (the [`Default`]) holds nothing and makes every operation a no-op
/// `Option` check — instrumented hot paths cost nothing when telemetry
/// is off.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl Recorder {
    /// An enabled recorder with the default event- and span-ring
    /// capacities.
    pub fn new() -> Self {
        Self::with_capacities(DEFAULT_EVENT_CAPACITY, DEFAULT_SPAN_CAPACITY)
    }

    /// An enabled recorder with an explicit event-ring capacity (and the
    /// default span-ring capacity).
    pub fn with_event_capacity(event_capacity: usize) -> Self {
        Self::with_capacities(event_capacity, DEFAULT_SPAN_CAPACITY)
    }

    /// An enabled recorder with explicit event- and span-ring capacities.
    pub fn with_capacities(event_capacity: usize, span_capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(Inner::new(
                event_capacity,
                span_capacity,
            )))),
        }
    }

    /// The no-op recorder.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Is this recorder collecting anything?
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with_inner<R>(&self, f: impl FnOnce(&mut Inner) -> R) -> Option<R> {
        self.inner.as_ref().map(|m| {
            let mut guard = m.lock().unwrap_or_else(|p| p.into_inner());
            f(&mut guard)
        })
    }

    /// Add `by` to the counter `name`.
    pub fn inc(&self, name: &'static str, by: u64) {
        self.with_inner(|i| {
            *i.counters.entry(name).or_insert(0) += by;
        });
    }

    /// Set the gauge `name` to `v` (last write wins, including across
    /// [`Recorder::absorb`], which replays children in merge order).
    pub fn set_gauge(&self, name: &'static str, v: f64) {
        self.with_inner(|i| {
            i.gauges.insert(name, v);
        });
    }

    /// Record a sample into the histogram `name`.
    pub fn observe(&self, name: &'static str, v: f64) {
        self.with_inner(|i| {
            i.hists.entry(name).or_default().observe(v);
        });
    }

    /// Add `by` to the **counter series** `name` in the 1.0-unit window
    /// holding sim-time `t_sim` (the emitting module's native time
    /// base; see docs/TELEMETRY.md for units per series). Windowed
    /// counters merge additively across children, like plain counters.
    pub fn series_inc(&self, name: &'static str, t_sim: f64, by: u64) {
        self.with_inner(|i| i.series.inc(name, t_sim, by));
    }

    /// [`Recorder::series_inc`] for callers already on the integer
    /// µs-tick grid (the sharded engines' `tick()` values).
    pub fn series_inc_tick(&self, name: &'static str, tick: u64, by: u64) {
        self.with_inner(|i| i.series.inc_tick(name, tick, by));
    }

    /// Write `v` into the **gauge series** `name` in the window holding
    /// sim-time `t_sim` (last write per window wins, including across
    /// [`Recorder::absorb`], which replays children in merge order).
    pub fn series_gauge(&self, name: &'static str, t_sim: f64, v: f64) {
        self.with_inner(|i| i.series.gauge(name, t_sim, v));
    }

    /// [`Recorder::series_gauge`] on the integer µs-tick grid.
    pub fn series_gauge_tick(&self, name: &'static str, tick: u64, v: f64) {
        self.with_inner(|i| i.series.gauge_tick(name, tick, v));
    }

    /// Append a structured event at simulated time `t_sim` (the emitting
    /// module's time base; see docs/TELEMETRY.md for units per kind).
    pub fn event(&self, t_sim: f64, kind: &'static str, fields: Vec<(&'static str, FieldValue)>) {
        self.with_inner(|i| {
            i.events.push(Event {
                t: t_sim,
                kind,
                fields,
            });
        });
    }

    /// Open a causal span at simulated time `start`. Returns
    /// [`SpanId::DISABLED`] (a harmless sentinel: closing it is a no-op,
    /// parenting on it records a root) when the recorder is disabled.
    /// Pass `parent = None` for a root span — procedure attempts are
    /// roots; their steps, transmissions, and relay hops parent on them.
    pub fn span_open(
        &self,
        parent: Option<SpanId>,
        kind: &'static str,
        start: f64,
        fields: Vec<(&'static str, FieldValue)>,
    ) -> SpanId {
        self.with_inner(|i| i.spans.open(parent, kind, start, fields))
            .unwrap_or(SpanId::DISABLED)
    }

    /// Close span `id` at simulated time `end`. No-op for a disabled
    /// recorder, the [`SpanId::DISABLED`] sentinel, or a shed id; a
    /// non-finite `end` leaves the span open (serialized as `null`).
    pub fn span_close(&self, id: SpanId, end: f64) {
        self.span_close_with(id, end, vec![]);
    }

    /// Close span `id` at `end`, attaching `extra` fields (e.g. the
    /// outcome only known at completion time).
    pub fn span_close_with(&self, id: SpanId, end: f64, extra: Vec<(&'static str, FieldValue)>) {
        if id == SpanId::DISABLED {
            return;
        }
        self.with_inner(|i| i.spans.close(id, end, extra));
    }

    /// Record an already-complete span (open + close in one call), for
    /// instants whose duration is known up front, like a relay hop.
    pub fn span(
        &self,
        parent: Option<SpanId>,
        kind: &'static str,
        start: f64,
        end: f64,
        fields: Vec<(&'static str, FieldValue)>,
    ) -> SpanId {
        self.with_inner(|i| {
            let id = i.spans.open(parent, kind, start, fields);
            i.spans.close(id, end, vec![]);
            id
        })
        .unwrap_or(SpanId::DISABLED)
    }

    /// A fresh, independent recorder for one parallel cell: enabled
    /// (with the parent's ring capacities) iff the parent is. Merge it
    /// back with [`Recorder::absorb`] in input-slot order.
    pub fn child(&self) -> Recorder {
        match self.with_inner(|i| (i.events.capacity(), i.spans.capacity())) {
            Some((ev_cap, sp_cap)) => Recorder::with_capacities(ev_cap, sp_cap),
            None => Recorder::disabled(),
        }
    }

    /// Merge a child's series into this recorder: counters and histogram
    /// buckets add, gauges take the child's value, events append in the
    /// child's order, and spans are remapped onto this recorder's id
    /// space (parent links preserved). A no-op when either side is
    /// disabled or both are the same registry.
    pub fn absorb(&self, child: &Recorder) {
        let (Some(mine), Some(theirs)) = (&self.inner, &child.inner) else {
            return;
        };
        if Arc::ptr_eq(mine, theirs) {
            return;
        }
        let snap = child.snapshot();
        self.with_inner(|i| {
            for (name, v) in &snap.counters {
                *i.counters.entry(name).or_insert(0) += v;
            }
            for (name, v) in &snap.gauges {
                i.gauges.insert(name, *v);
            }
            for (name, h) in &snap.histograms {
                i.hists.entry(name).or_default().merge(h);
            }
            for ev in &snap.events {
                i.events.push(ev.clone());
            }
            // Events the child already shed stay shed; keep the count.
            i.events.note_dropped(snap.events_dropped);
            i.spans
                .absorb(&snap.spans, snap.span_ids_allocated, snap.spans_dropped);
            i.series.merge(&snap.series);
        });
    }

    /// A point-in-time copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        self.with_inner(|i| Snapshot {
            counters: i.counters.clone(),
            gauges: i.gauges.clone(),
            histograms: i.hists.clone(),
            events: i.events.iter().cloned().collect(),
            events_dropped: i.events.dropped(),
            spans: i.spans.iter().cloned().collect(),
            spans_dropped: i.spans.dropped(),
            span_ids_allocated: i.spans.ids_allocated(),
            series: i.series.clone(),
        })
        .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Recorder::disabled();
        r.inc("a", 1);
        r.set_gauge("b", 2.0);
        r.observe("c", 3.0);
        r.series_inc("s", 0.0, 1);
        r.series_gauge("t", 0.0, 1.0);
        r.event(0.0, "d", vec![]);
        let sp = r.span_open(None, "e", 0.0, vec![]);
        assert_eq!(sp, SpanId::DISABLED);
        r.span_close(sp, 1.0);
        r.span(Some(sp), "f", 0.0, 1.0, vec![]);
        assert!(!r.enabled());
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn clones_share_one_registry() {
        let r = Recorder::new();
        let r2 = r.clone();
        r.inc("x", 1);
        r2.inc("x", 2);
        assert_eq!(r.snapshot().counter("x"), 3);
    }

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let r = Recorder::new();
        r.inc("net.msgs", 5);
        r.inc("net.msgs", 2);
        r.set_gauge("net.load", 0.5);
        r.set_gauge("net.load", 0.75);
        r.observe("net.delay_ms", 10.0);
        r.observe("net.delay_ms", 30.0);
        let s = r.snapshot();
        assert_eq!(s.counter("net.msgs"), 7);
        assert_eq!(s.gauge("net.load"), Some(0.75));
        let h = s.histogram("net.delay_ms");
        assert_eq!(h.map(|h| h.count()), Some(2));
        assert_eq!(h.and_then(|h| h.mean()), Some(20.0));
    }

    #[test]
    fn events_keep_order_and_sim_time() {
        let r = Recorder::new();
        r.event(1.5, "step", vec![("idx", FieldValue::from(0usize))]);
        r.event(0.5, "step", vec![("idx", FieldValue::from(1usize))]);
        let s = r.snapshot();
        // Insertion order, not time order: the caller's schedule is the
        // ground truth.
        let ts: Vec<f64> = s.events.iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![1.5, 0.5]);
    }

    #[test]
    fn child_of_disabled_is_disabled() {
        assert!(!Recorder::disabled().child().enabled());
        assert!(Recorder::new().child().enabled());
    }

    #[test]
    fn absorb_merges_in_slot_order() {
        let parent = Recorder::new();
        let a = parent.child();
        let b = parent.child();
        a.inc("cells", 1);
        b.inc("cells", 1);
        a.set_gauge("last", 1.0);
        b.set_gauge("last", 2.0);
        a.observe("h", 1.0);
        b.observe("h", 100.0);
        a.event(1.0, "cell", vec![]);
        b.event(2.0, "cell", vec![]);
        parent.absorb(&a);
        parent.absorb(&b);
        let s = parent.snapshot();
        assert_eq!(s.counter("cells"), 2);
        assert_eq!(s.gauge("last"), Some(2.0));
        assert_eq!(s.histogram("h").map(|h| h.count()), Some(2));
        let ts: Vec<f64> = s.events.iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![1.0, 2.0]);
    }

    #[test]
    fn absorb_adds_counter_series_and_replays_gauge_series() {
        let parent = Recorder::new();
        let a = parent.child();
        let b = parent.child();
        a.series_inc("win.c", 0.5, 2);
        b.series_inc("win.c", 0.5, 3);
        b.series_inc_tick("win.c", 2_000_000, 1);
        a.series_gauge("win.g", 1.0, 10.0);
        b.series_gauge_tick("win.g", 1_000_000, 20.0);
        parent.absorb(&a);
        parent.absorb(&b);
        let s = parent.snapshot();
        assert_eq!(
            s.series.get("win.c").map(|d| d.points()),
            Some(vec![(0, 5.0), (2, 1.0)])
        );
        assert_eq!(
            s.series.get("win.g").map(|d| d.points()),
            Some(vec![(1, 20.0)])
        );
        assert_eq!(s.series.dropped(), 0);
    }

    #[test]
    fn absorb_same_registry_is_noop() {
        let r = Recorder::new();
        r.inc("x", 1);
        let alias = r.clone();
        r.absorb(&alias);
        assert_eq!(r.snapshot().counter("x"), 1);
    }

    #[test]
    fn spans_round_trip_through_snapshot() {
        let r = Recorder::new();
        let root = r.span_open(None, "proc", 0.0, vec![("kind", FieldValue::from("c2"))]);
        let hop = r.span(Some(root), "hop", 0.0, 2.0, vec![]);
        r.span_close_with(root, 5.0, vec![("completed", FieldValue::from(1u64))]);
        let s = r.snapshot();
        assert_eq!(s.spans.len(), 2);
        assert_eq!(s.spans[0].parent, None);
        assert_eq!(s.spans[0].end, Some(5.0));
        assert_eq!(s.spans[0].fields.len(), 2);
        assert_eq!(s.spans[1].id, hop.0);
        assert_eq!(s.spans[1].parent, Some(root.0));
        assert_eq!(s.spans[1].duration(), Some(2.0));
        assert_eq!(s.spans_dropped, 0);
        assert_eq!(s.span_ids_allocated, 2);
    }

    #[test]
    fn absorb_remaps_child_span_ids_in_slot_order() {
        let parent = Recorder::new();
        let a = parent.child();
        let b = parent.child();
        // Both children allocate ids starting at 0; the merge must keep
        // them distinct and keep each tree's parent links intact.
        let ra = a.span_open(None, "proc", 0.0, vec![]);
        a.span(Some(ra), "step", 0.0, 1.0, vec![]);
        a.span_close(ra, 1.0);
        let rb = b.span_open(None, "proc", 10.0, vec![]);
        b.span(Some(rb), "step", 10.0, 12.0, vec![]);
        b.span_close(rb, 12.0);
        parent.absorb(&a);
        parent.absorb(&b);
        let s = parent.snapshot();
        let ids: Vec<u64> = s.spans.iter().map(|sp| sp.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(s.spans[1].parent, Some(0));
        assert_eq!(s.spans[3].parent, Some(2));
        assert_eq!(s.span_ids_allocated, 4);
    }

    #[test]
    fn child_inherits_span_capacity() {
        let parent = Recorder::with_capacities(8, 1);
        let c = parent.child();
        c.span(None, "a", 0.0, 1.0, vec![]);
        c.span(None, "b", 1.0, 2.0, vec![]); // sheds "a" in the child
        parent.absorb(&c);
        let s = parent.snapshot();
        assert_eq!(s.spans.len(), 1);
        assert_eq!(s.spans_dropped, 1);
        assert_eq!(s.span_ids_allocated, 2);
    }

    #[test]
    fn merged_snapshot_is_thread_count_invariant() {
        // The property the emu engine relies on: N children merged in
        // slot order produce the same snapshot regardless of which
        // thread ran which child.
        let build = |order: &[usize]| {
            let parent = Recorder::new();
            let children: Vec<Recorder> = (0..4).map(|_| parent.child()).collect();
            // "Work" happens in an arbitrary order…
            for &i in order {
                if let Some(c) = children.get(i) {
                    c.inc("work", (i + 1) as u64);
                    c.observe("cost", i as f64);
                    c.series_inc("work_per_s", i as f64, (i + 1) as u64);
                    c.event(i as f64, "done", vec![("cell", FieldValue::from(i))]);
                    let root = c.span_open(None, "cell", i as f64, vec![]);
                    c.span(Some(root), "work", i as f64, (i + 1) as f64, vec![]);
                    c.span_close(root, (i + 2) as f64);
                }
            }
            // …but the merge is always slot order.
            for c in &children {
                parent.absorb(c);
            }
            parent.snapshot().to_json("invariance")
        };
        let a = build(&[0, 1, 2, 3]);
        let b = build(&[3, 1, 0, 2]);
        assert_eq!(a, b);
    }
}
