//! Ubiquitous IoT connectivity scenario (§2.2, value proposition 2).
//!
//! Massive, delay-tolerant IoT devices scattered by the global
//! population distribution connect through the constellation. For each
//! core-placement solution this example computes the per-satellite and
//! per-ground-station signaling loads the fleet generates, and shows
//! why the stateful designs melt down while SpaceCore holds.
//!
//! Run with: `cargo run --example global_iot`

use sc_dataset::population::PopulationModel;
use sc_orbit::{ConstellationConfig, IdealPropagator, Propagator};
use sc_orbit::coverage::CoverageModel;
use spacecore::solutions::{Solution, SolutionKind};

fn main() {
    let cfg = ConstellationConfig::starlink();
    let pop = PopulationModel::world_bank_like();

    // Sample an IoT fleet and see how it concentrates under satellites.
    let devices = pop.sample_ues(50_000, 2026);
    let prop = IdealPropagator::new(cfg.clone());
    let cov = CoverageModel::new(&prop);
    let snapshot = prop.snapshot(0.0);
    let mut per_sat = std::collections::HashMap::<sc_orbit::SatId, u32>::new();
    let mut uncovered = 0u32;
    for d in &devices {
        match cov.serving_from_snapshot(&snapshot, d) {
            Some(v) => *per_sat.entry(v.sat).or_insert(0) += 1,
            None => uncovered += 1,
        }
    }
    let busiest = per_sat.values().max().copied().unwrap_or(0);
    println!(
        "{} devices, {} uncovered (high latitudes), busiest satellite sees {}",
        devices.len(),
        uncovered,
        busiest
    );

    // Scale to the full fleet: each satellite serving `capacity` IoT
    // devices; compare the solutions' signaling bills.
    println!("\nper-satellite / per-ground-station signaling at IoT scale:");
    println!(
        "{:<10} {:>10} {:>14} {:>12}",
        "solution", "capacity", "sat msg/s", "GS msg/s"
    );
    for capacity in [10_000u32, 30_000] {
        for kind in SolutionKind::ALL {
            let s = Solution::new(kind, cfg.clone());
            println!(
                "{:<10} {:>10} {:>14.0} {:>12.0}",
                kind.name(),
                capacity,
                s.sat_msgs_per_s(capacity),
                s.ground_msgs_per_s(capacity, 30)
            );
        }
        println!();
    }

    // The IoT punchline: battery-powered sensors wake rarely; what
    // kills them in legacy designs is the *mobility* signaling forced
    // by satellite sweeps even while they sleep.
    let sc = Solution::new(SolutionKind::SpaceCore, cfg.clone());
    let ntn = Solution::new(SolutionKind::FiveGNtn, cfg.clone());
    println!(
        "a sleeping sensor's signaling bill per hour: SpaceCore {:.0} msgs, legacy {:.0} msgs",
        0.0,
        3600.0 / sc.workload().transit_s
            * ntn.sat_msgs_per_procedure(sc_fiveg::messages::ProcedureKind::MobilityRegistration)
    );
}
