//! Quickstart: the SpaceCore lifecycle in one file.
//!
//! 1. Build a home network on the Starlink shell.
//! 2. Register a UE (legacy C1 through the home; the home delegates the
//!    encrypted state replica to the device and allocates its
//!    geospatial address).
//! 3. A satellite serves the UE *locally* from the replica — zero home
//!    round-trips (Fig. 16).
//! 4. The satellite sweeps on; the next one takes over via a 3-message
//!    local handover. No mobility registration fires.
//! 5. The home throttles the UE after its quota (home-controlled state
//!    update, §4.4); the old replica version is rejected by the device.
//!
//! Run with: `cargo run --example quickstart`

use spacecore::prelude::*;
use sc_geo::GeoPoint;
use sc_orbit::SatId;

fn main() {
    // 1. Home network (legacy 5G core + SpaceCore extensions).
    let home = HomeNetwork::new(HomeConfig::default());
    println!("home network up: PLMN {}", home.config().plmn);

    // 2. Initial registration from Beijing.
    let beijing = GeoPoint::from_degrees(39.9042, 116.4074);
    let mut ue = home.register_ue(8_6131_0001, &beijing);
    println!(
        "registered {}: geospatial address {}",
        ue.supi, ue.address
    );

    // 3. Localized session establishment.
    let sat_a = SpaceCoreSatellite::provision(&home, SatId::new(3, 7));
    let outcome = sat_a.establish_session(&home, &mut ue, 10.0);
    assert!(outcome.local);
    println!(
        "session via {}: local={} messages={} home-round-trips={}",
        sat_a.id, outcome.local, outcome.signaling_messages, outcome.home_round_trips
    );

    // 4. The satellite sweeps past; local handover to the next one.
    let sat_b = SpaceCoreSatellite::provision(&home, SatId::new(3, 8));
    let ho = sat_b.handover_in(&home, &mut ue, 175.0).expect("authorized");
    sat_a.release(ue.supi);
    println!(
        "handover to {}: messages={} (legacy C3 would need 11 + state migration)",
        sat_b.id, ho.signaling_messages
    );

    // Idle satellite sweeps cost nothing at all:
    let mm = MobilityManager::spacecore();
    let idle = mm.handle(MobilityEvent::SatelliteSweep(
        sc_fiveg::conn::ConnState::Idle,
    ));
    println!(
        "idle-UE satellite sweep: {} signaling messages (legacy: {})",
        idle.signaling_messages,
        MobilityManager::legacy()
            .handle(MobilityEvent::SatelliteSweep(
                sc_fiveg::conn::ConnState::Idle
            ))
            .signaling_messages
    );

    // 5. Home-controlled state update: quota crossed → throttle.
    let quota = ue.session.billing.quota_bytes;
    let update = home
        .apply_usage_report(&mut ue, quota + 1)
        .expect("quota crossed");
    let new_version = update.version;
    ue.install_update(ue.session.clone(), update).expect("fresh version");
    println!(
        "home throttled the UE to {} kbps via state v{}",
        ue.session.qos.ambr_kbps, new_version
    );

    println!("quickstart complete");
}
