//! Orbital edge computing scenario (§2.2, value proposition 3).
//!
//! "Upon satellite attacks/failures, the UE can quickly migrate to other
//! available satellites and recover from failures/attacks with its local
//! state replicas" (§4.3) — the property that makes a stateless core
//! "a necessary first step to simplify the fault/attack tolerance for
//! orbital edge computing".
//!
//! This example runs an edge workload session against a satellite,
//! kills that satellite mid-service, and measures the recovery: the UE
//! re-establishes on the next satellite from its replica in a handful of
//! messages, while a legacy core would have lost the serving state with
//! the dead node and re-run full registration through the home. It also
//! uses the message-level simulator to quantify the recovery signaling
//! time over the real ISL fabric.
//!
//! Run with: `cargo run --example orbital_edge`

use sc_netsim::failure::{LossProcess, NodeFailures};
use sc_netsim::isl::{IslConfig, IslNetwork};
use sc_netsim::sim::{steps_from_pairs, ProcedureSim, SimConfig};
use sc_geo::GeoPoint;
use sc_orbit::{ConstellationConfig, GroundStationSet, IdealPropagator};
use sc_orbit::coverage::CoverageModel;
use spacecore::prelude::*;

fn main() {
    let cfg = ConstellationConfig::starlink();
    let prop = IdealPropagator::new(cfg.clone());
    let cov = CoverageModel::new(&prop);
    let home = HomeNetwork::new(HomeConfig::default());

    // An edge client in a remote area runs inference against the
    // serving satellite's edge compute.
    let client_pos = GeoPoint::from_degrees(-44.0, 171.6); // rural NZ
    let mut client = home.register_ue(31_337, &client_pos);

    let first = cov.serving_sat(&client_pos, 0.0).expect("covered");
    let sat_a = SpaceCoreSatellite::provision(&home, first.sat);
    let o = sat_a.establish_session(&home, &mut client, 0.0);
    println!(
        "edge session on {}: local={} ({} messages)",
        first.sat, o.local, o.signaling_messages
    );

    // The serving satellite dies (radiation hit).
    println!("\n*** satellite {} fails ***", first.sat);
    // Everything it held is gone — and that's fine: the client holds
    // the state.
    drop(sat_a);

    // Recovery: next-best satellite, served from the replica.
    let next = cov
        .visible_sats(&client_pos, 5.0)
        .into_iter()
        .find(|v| v.sat != first.sat)
        .expect("redundant coverage");
    let sat_b = SpaceCoreSatellite::provision(&home, next.sat);
    let r = sat_b.establish_session(&home, &mut client, 5.0);
    println!(
        "recovered on {}: local={} in {} messages, {} home round-trips",
        next.sat, r.local, r.signaling_messages, r.home_round_trips
    );

    // Quantify the recovery signaling over the real network with the
    // message-level simulator: 4 local messages UE↔satellite vs. a
    // legacy 13-message re-establishment through the home.
    let gs = GroundStationSet::starlink_like();
    let net = IslNetwork::build(&prop, &gs, 5.0, IslConfig::default());
    let mut failures = NodeFailures::none();
    failures.fail(net.sat_node(first.sat));
    let sim = ProcedureSim::new(net.graph(), &failures, SimConfig::default());

    let ue_node = net.sat_node(next.sat); // radio attach point
    let (gnode, _) = nearest_ground(&net, &client_pos);

    // SpaceCore recovery: all four messages stay on the serving satellite.
    let local_steps = steps_from_pairs(&[
        ("rrc request", ue_node, ue_node),
        ("rrc setup", ue_node, ue_node),
        ("setup complete + replica", ue_node, ue_node),
        ("session accept", ue_node, ue_node),
    ]);
    // Legacy recovery: NAS exchanges ping-pong with the home.
    let legacy_steps = steps_from_pairs(&[
        ("rrc request", ue_node, ue_node),
        ("rrc setup", ue_node, ue_node),
        ("service request", ue_node, gnode),
        ("auth challenge", gnode, ue_node),
        ("auth response", ue_node, gnode),
        ("security mode", gnode, ue_node),
        ("security complete", ue_node, gnode),
        ("session request", ue_node, gnode),
        ("policy", gnode, gnode),
        ("forwarding rules", gnode, ue_node),
        ("session accept", gnode, ue_node),
    ]);
    let mut loss = LossProcess::new(0.01, 7);
    let local = sim.run(&local_steps, &mut loss);
    let mut loss2 = LossProcess::new(0.01, 7);
    let legacy = sim.run(&legacy_steps, &mut loss2);
    println!(
        "\nrecovery signaling time over the real fabric:\n  SpaceCore local: {:.1} ms ({} transmissions)\n  legacy via home: {:.1} ms ({} transmissions)",
        local.latency_ms, local.transmissions, legacy.latency_ms, legacy.transmissions
    );
    assert!(local.latency_ms < legacy.latency_ms);
    println!("\norbital edge scenario complete");
}

fn nearest_ground(net: &IslNetwork, p: &GeoPoint) -> (usize, f64) {
    let gs = GroundStationSet::starlink_like();
    let (idx, d) = gs
        .stations()
        .iter()
        .enumerate()
        .map(|(i, g)| (i, g.location.distance_km(p)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty");
    (net.ground_node(idx), d)
}
