//! Stateless geospatial relaying demo: Beijing → New York (Fig. 18b).
//!
//! Routes a packet with Algorithm 1 across each constellation under
//! ideal and J4-perturbed orbits, printing the per-hop path for one
//! trace so the +Grid movement pattern (α-moves, then γ-moves) is
//! visible.
//!
//! Run with: `cargo run --example beijing_newyork`

use sc_geo::GeoPoint;
use sc_orbit::{ConstellationConfig, IdealPropagator, J4Propagator, Propagator};
use spacecore::relay::GeoRelay;

fn main() {
    let beijing = GeoPoint::from_degrees(39.9042, 116.4074);
    let ny = GeoPoint::from_degrees(40.7128, -74.0060);
    println!(
        "great-circle Beijing → New York: {:.0} km\n",
        beijing.distance_km(&ny)
    );

    for cfg in ConstellationConfig::all_presets() {
        let relay = GeoRelay::for_shell(&cfg);
        let ideal = IdealPropagator::new(cfg.clone());
        let j4 = J4Propagator::new(cfg.clone());
        let props: [(&str, &dyn Propagator); 2] = [("ideal", &ideal), ("J4", &j4)];
        for (name, prop) in props {
            match relay.deliver_ground_to_ground(prop, &beijing, &ny, 1800.0, 1.0) {
                Some(tr) => println!(
                    "{:<9} {:<6} delivered={} hops={:>2} delay={:>6.1} ms",
                    cfg.name,
                    name,
                    tr.delivered,
                    tr.hops(),
                    tr.delay_ms
                ),
                None => println!("{:<9} {:<6} no coverage at source", cfg.name, name),
            }
        }
    }

    // Show one full path (Starlink, ideal) hop by hop.
    let cfg = ConstellationConfig::starlink();
    let prop = IdealPropagator::new(cfg.clone());
    let relay = GeoRelay::for_shell(&cfg);
    let tr = relay
        .deliver_ground_to_ground(&prop, &beijing, &ny, 1800.0, 1.0)
        .expect("coverage");
    println!("\nStarlink path ({} hops):", tr.hops());
    for w in tr.path.windows(2) {
        let dir = if w[0].plane != w[1].plane { "α (inter-plane)" } else { "γ (intra-plane)" };
        println!("  {} → {}   [{dir}]", w[0], w[1]);
    }
}
