//! Constellation explorer: Table 1 derived quantities and the Table 3
//! geospatial cell grids for all four presets.
//!
//! Run with: `cargo run --example constellations`

use sc_orbit::{ConstellationConfig, IdealPropagator, J4Propagator};
use sc_orbit::coverage::CoverageModel;

fn main() {
    println!(
        "{:<10} {:>7} {:>7} {:>6} {:>9} {:>8} {:>9} {:>10} {:>10}",
        "shell", "planes", "s/plane", "total", "alt (km)", "incl", "v (km/s)", "period (s)", "transit(s)"
    );
    for cfg in ConstellationConfig::all_presets() {
        let prop = IdealPropagator::new(cfg.clone());
        let cov = CoverageModel::new(&prop);
        println!(
            "{:<10} {:>7} {:>7} {:>6} {:>9.0} {:>7.1}° {:>9.2} {:>10.0} {:>10.1}",
            cfg.name,
            cfg.planes,
            cfg.sats_per_plane,
            cfg.total_sats(),
            cfg.altitude_km,
            cfg.inclination_rad.to_degrees(),
            cfg.orbital_speed_km_s(),
            cfg.period_s(),
            cov.mean_transit_s(),
        );
    }

    println!("\ngeospatial cells (Table 3):");
    println!(
        "{:<10} {:>7} {:>14} {:>14} {:>14}",
        "shell", "cells", "min km²", "max km²", "avg km²"
    );
    for cfg in ConstellationConfig::all_presets() {
        let s = cfg.cell_grid().stats();
        println!(
            "{:<10} {:>7} {:>14.0} {:>14.0} {:>14.0}",
            cfg.name, s.count, s.min_km2, s.max_km2, s.avg_km2
        );
    }

    println!("\nJ2/J4 secular drift (why the grid is anchored at t=0):");
    for cfg in ConstellationConfig::all_presets() {
        let j4 = J4Propagator::new(cfg.clone());
        println!(
            "{:<10} nodal regression {:>7.3}°/day, in-plane drift {:>8.3}°/day vs two-body",
            cfg.name,
            (j4.raan_rate() * 86_400.0).to_degrees(),
            ((j4.arg_lat_rate() - cfg.mean_motion_rad_s()) * 86_400.0).to_degrees(),
        );
    }
}
