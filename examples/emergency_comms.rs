//! Emergency communications scenario (§2.2, value proposition 4).
//!
//! "In disasters or wars, the terrestrial mobile infrastructure can be
//! destroyed. In this case, satellites as radio and core functions can
//! offer complementary services for emergency communications."
//!
//! This example knocks out the terrestrial infrastructure around a
//! disaster zone, fails a slice of the constellation (Fig. 13a's ~1/40
//! decay rate plus battle damage), hijacks one satellite, and shows
//! that pre-registered SpaceCore UEs keep communicating:
//!
//! * sessions establish locally from UE replicas with zero home contact,
//! * a hijacked satellite is revoked by a policy-epoch refresh,
//! * Algorithm 1 keeps delivering across the degraded ISL fabric.
//!
//! Run with: `cargo run --example emergency_comms`

use sc_geo::GeoPoint;
use sc_netsim::failure::NodeFailures;
use sc_orbit::{ConstellationConfig, Constellation, IdealPropagator, Propagator, SatId};
use spacecore::prelude::*;

fn main() {
    let cfg = ConstellationConfig::starlink();
    let prop = IdealPropagator::new(cfg.clone());
    let constellation = Constellation::new(cfg.clone());
    let home = HomeNetwork::new(HomeConfig::default());

    // Civilians registered *before* the disaster, while the home was
    // reachable. Their replicas are their lifeline now.
    let zone = GeoPoint::from_degrees(48.0, 35.0);
    let mut ues: Vec<_> = (0..50)
        .map(|i| home.register_ue(70_000 + i, &zone))
        .collect();
    println!("{} UEs registered before the disaster", ues.len());

    // Disaster: terrestrial core unreachable; 5% of satellites dead.
    let failures = NodeFailures::random(cfg.total_sats(), 0.05, 0xBAD);
    println!(
        "disaster strikes: terrestrial infrastructure down, {} satellites lost",
        failures.dead_count()
    );

    // Find a surviving satellite over the zone and serve everyone.
    let snapshot = prop.snapshot(0.0);
    let serving = constellation
        .sats()
        .filter(|s| !failures.is_dead(constellation.index_of(*s)))
        .min_by(|a, b| {
            let da = snapshot[constellation.index_of(*a)].subpoint.distance_km(&zone);
            let db = snapshot[constellation.index_of(*b)].subpoint.distance_km(&zone);
            da.partial_cmp(&db).expect("finite")
        })
        .expect("survivors exist");
    let sat = SpaceCoreSatellite::provision(&home, serving);
    let mut served = 0;
    for ue in ues.iter_mut() {
        let o = sat.establish_session(&home, ue, 1.0);
        assert!(o.local, "no home needed");
        served += 1;
    }
    println!("satellite {serving} serves {served}/{} UEs locally", ues.len());

    // One satellite is hijacked. Exposure: only its active sessions.
    println!(
        "hijack of {serving} would expose {} session keys (SkyCore-style replication would expose the full subscriber database)",
        sat.hijack_exposure().len()
    );

    // Home revokes the hijacked satellite with an epoch-scoped policy:
    // fresh replicas demand the new epoch attribute.
    let hijacked =
        SpaceCoreSatellite::provision_with_attrs(&home, serving, &["role:satellite", "authorized"]);
    let epoch_home = HomeNetwork::new(HomeConfig {
        satellite_policy: sc_crypto::policy::AccessTree::all_of(&[
            "role:satellite",
            "authorized",
            "epoch:2",
        ]),
        ..HomeConfig::default()
    });
    let mut fresh_ue = epoch_home.register_ue(90_001, &zone);
    let denied = hijacked.try_local_establishment(&epoch_home, &mut fresh_ue, 2.0);
    assert!(denied.is_err(), "revoked satellite cannot decrypt");
    let good = SpaceCoreSatellite::provision_with_attrs(
        &epoch_home,
        SatId::new(10, 10),
        &["role:satellite", "authorized", "epoch:2"],
    );
    let ok = good.try_local_establishment(&epoch_home, &mut fresh_ue, 2.0);
    assert!(ok.is_ok());
    println!("hijacked satellite revoked via policy epoch; epoch-2 satellites still serve");

    // Cross-zone delivery over the degraded fabric (Algorithm 1).
    let relay = GeoRelay::for_shell(&cfg);
    let berlin = GeoPoint::from_degrees(52.5, 13.4);
    let tr = relay
        .deliver_ground_to_ground(&prop, &zone, &berlin, 0.0, 1.0)
        .expect("coverage");
    println!(
        "message relayed to Berlin: delivered={} hops={} delay={:.1} ms",
        tr.delivered,
        tr.hops(),
        tr.delay_ms
    );
    println!("emergency scenario complete");
}
