//! Umbrella crate for the SpaceCore reproduction suite: re-exports the workspace crates
//! so examples and integration tests can use one dependency.
pub use sc_crypto as crypto;
pub use sc_dataset as dataset;
pub use sc_emu as emu;
pub use sc_fiveg as fiveg;
pub use sc_geo as geo;
pub use sc_netsim as netsim;
pub use sc_orbit as orbit;
pub use spacecore as core;
