//! End-to-end integration: the full SpaceCore lifecycle over a live
//! constellation, spanning every crate in the workspace.

use sc_geo::GeoPoint;
use sc_orbit::coverage::CoverageModel;
use sc_orbit::{ConstellationConfig, IdealPropagator, Propagator};
use spacecore::prelude::*;
use spacecore::home::HomeConfig;

/// Register → establish → follow real satellite sweeps with local
/// handovers → UE cell crossing through the home → release.
#[test]
fn full_lifecycle_over_live_constellation() {
    let cfg = ConstellationConfig::starlink();
    let prop = IdealPropagator::new(cfg.clone());
    let cov = CoverageModel::new(&prop);
    let home = HomeNetwork::new(HomeConfig::default());

    let denver = GeoPoint::from_degrees(39.7, -105.0);
    let mut ue = home.register_ue(42, &denver);
    assert_eq!(ue.address.ue_cell, home.cell_grid().cell_of_point(&denver));

    // Serve through whichever satellite actually covers Denver, across
    // 20 minutes of real orbital motion; count handovers.
    let mut serving: Option<(sc_orbit::SatId, SpaceCoreSatellite)> = None;
    let mut handovers = 0;
    let mut t = 0.0;
    while t < 1200.0 {
        if let Some(view) = cov.serving_sat(&denver, t) {
            let changed = serving.as_ref().is_none_or(|(id, _)| *id != view.sat);
            if changed {
                let sat = SpaceCoreSatellite::provision(&home, view.sat);
                let outcome = if serving.is_some() {
                    handovers += 1;
                    sat.handover_in(&home, &mut ue, t).expect("authorized")
                } else {
                    sat.establish_session(&home, &mut ue, t)
                };
                assert!(outcome.local, "every (re)establishment is local");
                assert_eq!(outcome.home_round_trips, 0);
                if let Some((_, old)) = serving.take() {
                    old.release(ue.supi);
                    assert_eq!(old.active_sessions(), 0, "old satellite forgets");
                }
                serving = Some((view.sat, sat));
            }
        }
        t += 30.0;
    }
    // Starlink transit ≈ 165.8 s → roughly 4-10 sweeps in 20 min.
    assert!(handovers >= 2, "expected several sweeps, got {handovers}");
    assert!(handovers <= 30, "{handovers}");

    // The UE's address never changed across all those satellite sweeps.
    let addr_before = ue.address;
    assert_eq!(
        addr_before,
        ue.session.location.geo.expect("geo address present")
    );

    // Now the UE flies to Sydney: that *is* a cell crossing → home C4.
    let sydney = GeoPoint::from_degrees(-33.9, 151.2);
    assert!(ue.move_to(&home.cell_grid(), sydney));
    let replica = home.handle_cell_crossing(&mut ue);
    assert_ne!(ue.address.ue_cell, addr_before.ue_cell);
    ue.install_update(ue.session.clone(), replica).expect("fresh");

    // And it can be served again at the new location.
    let view = cov
        .serving_sat(&sydney, 1200.0)
        .expect("Starlink covers Sydney");
    let sat = SpaceCoreSatellite::provision(&home, view.sat);
    let o = sat.establish_session(&home, &mut ue, 1200.0);
    assert!(o.local);
}

/// The replica piggybacked over GTP-U survives the wire format: encode
/// into the FutureExtensionField, decode, decrypt, verify.
#[test]
fn replica_piggyback_over_gtpu_fef() {
    let home = HomeNetwork::new(HomeConfig::default());
    let ue = home.register_ue(7, &GeoPoint::from_degrees(10.0, 20.0));

    // Serialize the encrypted replica envelope into the FEF. The
    // envelope fields ride alongside the ABE ciphertext bytes; here we
    // carry the ciphertext payload and rebuild the envelope at the
    // receiver (versions/TTL are in the signaling layer).
    let state_bytes = ue.session.encode();
    let header = sc_fiveg::gtp::GtpUHeader::gpdu(ue.session.id.uplink_tunnel, 1400)
        .with_fef(state_bytes.clone());
    let mut wire = header.encode();
    wire.extend_from_slice(&[0u8; 64]); // payload

    let (decoded, consumed) = sc_fiveg::gtp::GtpUHeader::decode(&wire).expect("valid");
    assert_eq!(consumed, header.header_len());
    let fef = decoded.fef.expect("fef present");
    let state = sc_fiveg::state::SessionState::decode(&fef).expect("codec");
    assert_eq!(state, ue.session);
}

/// Downlink delivery: a packet addressed to a UE's geospatial address
/// is routed by Algorithm 1 to a satellite that covers the UE's cell.
#[test]
fn downlink_by_geospatial_address() {
    let cfg = ConstellationConfig::starlink();
    let prop = IdealPropagator::new(cfg.clone());
    let home = HomeNetwork::new(HomeConfig::default());
    let grid = home.cell_grid();
    let relay = GeoRelay::for_shell(&cfg);

    let ue_pos = GeoPoint::from_degrees(-23.5, -46.6); // São Paulo
    let ue = home.register_ue(99, &ue_pos);

    // Destination coordinate from the UE's *address*, not its position.
    let dst_cell = ue.address.ue_cell;
    let dst_coord = grid.cell_center(dst_cell);

    // Ingress anywhere (Beijing side of the constellation).
    let tr = relay.trace(&prop, sc_orbit::SatId::new(0, 0), dst_coord, 600.0, 1.0);
    assert!(tr.delivered, "hops {}", tr.hops());

    // The delivering satellite's coordinate is within its coverage
    // radius of the cell (paging would reach the UE).
    let last = *tr.path.last().expect("non-empty");
    let sat_coord = prop.state(last, 600.0).coord;
    let da = sc_geo::angle::signed_delta(sat_coord.alpha, dst_coord.alpha).abs();
    let dg = sc_geo::angle::signed_delta(sat_coord.gamma, dst_coord.gamma).abs();
    assert!(da <= relay.coverage_radius() && dg <= relay.coverage_radius());
}

/// Registration density respects the population model end to end: more
/// UEs register into cells over Asia than over the Pacific.
#[test]
fn registration_follows_population() {
    let home = HomeNetwork::new(HomeConfig::default());
    let pop = sc_dataset::population::PopulationModel::world_bank_like();
    let ues = pop.sample_ues(2000, 11);
    let grid = home.cell_grid();
    let mut cells = std::collections::HashMap::new();
    for (i, p) in ues.iter().enumerate() {
        let ue = home.register_ue(i as u64, p);
        *cells.entry(ue.address.ue_cell).or_insert(0u32) += 1;
        let _ = grid; // grid used implicitly through home
    }
    let max_in_one_cell = cells.values().max().copied().unwrap();
    // Population concentration: busiest cell ≫ uniform expectation.
    let uniform = 2000 / grid_cells(&home) as u32;
    assert!(max_in_one_cell > 5 * uniform.max(1), "{max_in_one_cell} vs uniform {uniform}");
}

fn grid_cells(home: &HomeNetwork) -> usize {
    home.cell_grid().cell_count()
}
