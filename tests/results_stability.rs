//! Byte-stability of the checked-in `results/` figure JSONs.
//!
//! Every figure binary writes `serde_json::to_string_pretty` of its
//! result struct; these tests regenerate each experiment in-process
//! and require the bytes to match the checked-in file exactly. The
//! worker-threaded experiments are additionally run at
//! `SC_EMU_THREADS` 1 and 4 (passed explicitly through `run_with`, so
//! the tests cannot race on the environment): the scheduler, arena,
//! and visibility-kernel hot paths must not shift a single output
//! byte under any thread count.
//!
//! fig18 is excluded by design: it reports wall-clock timings
//! (EXPERIMENTS.md documents it as the one non-reproducible figure).

use std::error::Error;

/// Serialize exactly as `sc_emu::obs::run_cli` does and diff against
/// the checked-in `results/<name>.json` bytes.
fn assert_matches_checked_in<R: serde::Serialize>(
    name: &str,
    r: &R,
) -> Result<(), Box<dyn Error>> {
    let path = format!("{}/results/{name}.json", env!("CARGO_MANIFEST_DIR"));
    let want = std::fs::read_to_string(&path)?;
    let got = serde_json::to_string_pretty(r)?;
    if got != want {
        return Err(format!(
            "results/{name}.json drifted: regenerated {} bytes != checked-in {} bytes",
            got.len(),
            want.len()
        )
        .into());
    }
    Ok(())
}

/// Serialize two runs of the same experiment and require identity.
fn assert_same_bytes<R: serde::Serialize>(
    name: &str,
    a: &R,
    b: &R,
) -> Result<(), Box<dyn Error>> {
    if serde_json::to_string_pretty(a)? != serde_json::to_string_pretty(b)? {
        return Err(format!("{name} output differs across thread counts").into());
    }
    Ok(())
}

#[test]
fn threaded_experiments_byte_stable_across_thread_counts() -> Result<(), Box<dyn Error>> {
    let (a, b) = (sc_emu::fig10::run_with(1), sc_emu::fig10::run_with(4));
    assert_same_bytes("fig10", &a, &b)?;
    assert_matches_checked_in("fig10", &a)?;

    let (a, b) = (sc_emu::fig12::run_with(1), sc_emu::fig12::run_with(4));
    assert_same_bytes("fig12", &a, &b)?;
    assert_matches_checked_in("fig12", &a)?;

    let (a, b) = (sc_emu::fig20::run_with(1), sc_emu::fig20::run_with(4));
    assert_same_bytes("fig20", &a, &b)?;
    assert_matches_checked_in("fig20", &a)?;

    let (a, b) = (
        sc_emu::ext_scaling::run_with(1),
        sc_emu::ext_scaling::run_with(4),
    );
    assert_same_bytes("ext_scaling", &a, &b)?;
    assert_matches_checked_in("ext_scaling", &a)?;

    let obs = sc_obs::Recorder::disabled();
    let (a, b) = (
        sc_emu::ext_chaos::run_with(1, &obs),
        sc_emu::ext_chaos::run_with(4, &obs),
    );
    assert_same_bytes("ext_chaos", &a, &b)?;
    assert_matches_checked_in("ext_chaos", &a)?;
    Ok(())
}

#[test]
fn single_threaded_experiments_match_checked_in_results() -> Result<(), Box<dyn Error>> {
    assert_matches_checked_in("fig05", &sc_emu::fig05::run())?;
    assert_matches_checked_in("fig07", &sc_emu::fig07::run())?;
    assert_matches_checked_in("fig08", &sc_emu::fig08::run())?;
    assert_matches_checked_in("fig13", &sc_emu::fig13::run())?;
    assert_matches_checked_in("fig17", &sc_emu::fig17::run())?;
    assert_matches_checked_in("fig19", &sc_emu::fig19::run())?;
    assert_matches_checked_in("fig21", &sc_emu::fig21::run())?;
    assert_matches_checked_in("table3", &sc_emu::table3::run())?;
    assert_matches_checked_in("table4", &sc_emu::table4::run())?;
    assert_matches_checked_in("ext_anchor", &sc_emu::ext_anchor::run())?;
    assert_matches_checked_in("ext_iot", &sc_emu::ext_iot::run())?;
    assert_matches_checked_in("ext_resilience", &sc_emu::ext_resilience::run())?;
    Ok(())
}
