//! Figure-level integration tests: every experiment in `sc-emu` runs,
//! serializes to JSON, and reproduces its headline claim.

#[test]
fn fig05_geo_pipe_latency() {
    let r = sc_emu::fig05::run();
    assert_eq!(r.series.len(), 2);
    serde_json::to_string(&r).expect("serializable");
    assert!(!sc_emu::fig05::render(&r).is_empty());
}

#[test]
fn fig07_cpu_breakdown() {
    let r = sc_emu::fig07::run();
    assert_eq!(r.hardware.len(), 2);
    // Headline: the Pi saturates by 250 registrations/s.
    assert!(r.hardware[0].points.last().unwrap().total_percent >= 99.0);
    serde_json::to_string(&r).expect("serializable");
}

#[test]
fn fig08_latency_knee() {
    let r = sc_emu::fig08::run();
    let pi = &r.registration[0];
    assert!(pi.points.last().unwrap().1 / pi.points[0].1 > 50.0);
    serde_json::to_string(&r).expect("serializable");
}

#[test]
fn fig10_storm_matrix() {
    let r = sc_emu::fig10::run();
    assert_eq!(r.cells.len(), 64);
    serde_json::to_string(&r).expect("serializable");
}

#[test]
fn fig12_temporal_dynamics() {
    let r = sc_emu::fig12::run();
    assert!(r.points.len() > 90);
    assert!(sc_emu::fig12::regions_visited(&r).len() >= 3);
    serde_json::to_string(&r).expect("serializable");
}

#[test]
fn table3_cells() {
    let r = sc_emu::table3::run();
    assert_eq!(r.rows.len(), 4);
    serde_json::to_string(&r).expect("serializable");
}

#[test]
fn fig17_prototype() {
    let r = sc_emu::fig17::run();
    assert_eq!(r.panels.len(), 3);
    assert_eq!(r.panels[0].series.len(), 5);
    serde_json::to_string(&r).expect("serializable");
}

#[test]
fn fig18_microbenchmarks() {
    let r = sc_emu::fig18::run();
    assert_eq!(r.abe.len(), 5);
    assert!(r.relay.iter().all(|p| p.delivered));
    serde_json::to_string(&r).expect("serializable");
}

#[test]
fn fig19_leakage() {
    let r = sc_emu::fig19::run();
    assert_eq!(r.hijack.len(), 5);
    assert_eq!(r.mitm.len(), 5);
    serde_json::to_string(&r).expect("serializable");
}

#[test]
fn fig20_and_table4_consistent() {
    let fig20 = sc_emu::fig20::run();
    let table4 = sc_emu::table4::run();
    // Table 4's Starlink/5G NTN factor equals the Fig. 20 cell ratio.
    let sc = sc_emu::fig20::cell(&fig20, "Starlink", "SpaceCore", 30_000).sat_msgs_per_s;
    let ntn = sc_emu::fig20::cell(&fig20, "Starlink", "5G NTN", 30_000).sat_msgs_per_s;
    let t4 = table4.rows[0]
        .reductions
        .iter()
        .find(|(n, _)| n == "5G NTN")
        .unwrap()
        .1;
    assert!((ntn / sc - t4).abs() < 1e-9);
    serde_json::to_string(&fig20).expect("serializable");
    serde_json::to_string(&table4).expect("serializable");
}

#[test]
fn fig21_stalling() {
    let r = sc_emu::fig21::run();
    assert_eq!(r.bars.len(), 5);
    // SpaceCore's stall is the shortest bar.
    let sc = r.bars.iter().find(|b| b.solution == "SpaceCore").unwrap();
    for b in &r.bars {
        if b.solution != "SpaceCore" {
            assert!(b.tcp_stall_s > sc.tcp_stall_s, "{}", b.solution);
        }
    }
    serde_json::to_string(&r).expect("serializable");
}

/// The paper's global headline, end to end: SpaceCore reduces satellite
/// signaling by at least an order of magnitude vs. the legacy 5G NTN on
/// every constellation at 30K capacity, while eliminating ground-station
/// load and mobility registrations entirely.
#[test]
fn headline_claims_hold() {
    let fig20 = sc_emu::fig20::run();
    for cons in ["Starlink", "Kuiper", "OneWeb", "Iridium"] {
        let sc = sc_emu::fig20::cell(&fig20, cons, "SpaceCore", 30_000);
        let ntn = sc_emu::fig20::cell(&fig20, cons, "5G NTN", 30_000);
        assert!(
            ntn.sat_msgs_per_s / sc.sat_msgs_per_s > 10.0,
            "{cons}: {}",
            ntn.sat_msgs_per_s / sc.sat_msgs_per_s
        );
        assert_eq!(sc.gs_msgs_per_s, 0.0, "{cons}");
        assert_eq!(sc.state_tx_per_s, 0.0, "{cons}");
    }
}
