//! Shard-merging and batching invariants of the chaos-under-load
//! engine (`sc_emu::ext_chaosload`): results and telemetry sidecars
//! must be byte-identical across worker-thread counts (`SC_EMU_THREADS`
//! 1 vs 4, passed explicitly through `run_config_with`), across shard
//! counts, and across DES drain-batch widths — including when a crash
//! lands exactly on a batch boundary versus mid-batch.
//!
//! These are the contracts that let `scripts/tier1.sh` cmp the smoke
//! run's artifacts across thread counts, and let `bench-report` assert
//! the serial and parallel million-UE chaos soaks agree. The batching
//! invariance leans on chaos timestamps being quantized to the
//! integer-µs tick grid (`sc_netsim::chaos::quantize_ms_to_us_grid`),
//! so a crash at a window edge is applied on the same tick regardless
//! of how the calendar is drained.

use proptest::prelude::*;
use sc_emu::ext_chaosload::{run_config_with, ChaosloadConfig, MloadConfig};
use sc_netsim::chaos::FailureTimeline;
use sc_obs::Recorder;

/// A small-but-real chaos scenario: hundreds of UEs, a crash with a
/// mid-recovery re-crash, a loss burst over the outage, and a feeder
/// flap — every robustness path (drop, paced reattach, barred
/// admission, deferral, shed, burst loss) exercised in ~20 simulated
/// seconds.
fn small(total_ues: usize, shards: usize, seed: u64, crash_s: f64) -> ChaosloadConfig {
    let base = ChaosloadConfig::smoke();
    ChaosloadConfig {
        load: MloadConfig {
            total_ues,
            shards,
            warmup_s: 3.0,
            measure_s: 17.0,
            seed,
            crossing_interval_s: 60.0,
        },
        timeline: FailureTimeline::none()
            .crash(crash_s * 1000.0, 5)
            .recover((crash_s + 1.5) * 1000.0, 5)
            .crash((crash_s + 2.0) * 1000.0, 5)
            .recover((crash_s + 3.0) * 1000.0, 5)
            .link_flap((crash_s + 6.0) * 1000.0, (crash_s + 8.0) * 1000.0, 20, 24)
            .loss_burst(crash_s * 1000.0, (crash_s + 3.0) * 1000.0, 0.25)
            .with_seed(seed ^ 0xC4A0_5EED),
        deadline_s: 10.0,
        ..base
    }
}

/// Run and capture both artifacts: the result JSON and the telemetry
/// sidecar bytes.
fn artifacts(threads: usize, cfg: &ChaosloadConfig) -> (String, String) {
    let obs = Recorder::new();
    let r = run_config_with(threads, &obs, cfg);
    (
        serde_json::to_string_pretty(&r).expect("serialize"),
        obs.snapshot().to_json("ext_chaosload"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `SC_EMU_THREADS` 1 vs 4: byte-identical results and telemetry
    /// for any population size, shard count and seed.
    #[test]
    fn thread_count_invisible_in_artifacts(
        total_ues in 50usize..400,
        shards in 1usize..32,
        seed in any::<u64>(),
    ) {
        let cfg = small(total_ues, shards, seed, 6.0);
        let one = artifacts(1, &cfg);
        let four = artifacts(4, &cfg);
        prop_assert_eq!(&one.0, &four.0, "result JSON diverged");
        prop_assert_eq!(&one.1, &four.1, "telemetry sidecar diverged");
    }

    /// Shard count is an execution detail: merging any partition of the
    /// cells reproduces the single-shard bytes exactly — even though
    /// chaos cursors are replayed per shard and crash footprints span
    /// shard boundaries.
    #[test]
    fn shard_count_invisible_in_artifacts(
        total_ues in 50usize..400,
        shards in 2usize..64,
        seed in any::<u64>(),
    ) {
        let single = artifacts(2, &small(total_ues, 1, seed, 6.0));
        let sharded = artifacts(2, &small(total_ues, shards, seed, 6.0));
        prop_assert_eq!(&single.0, &sharded.0, "result JSON depends on shard count");
        prop_assert_eq!(&single.1, &sharded.1, "telemetry depends on shard count");
    }

    /// The DES drain-batch width is invisible: 0.25 s, 0.5 s and 1 s
    /// calendars produce the same bytes whether the crash lands exactly
    /// on a batch boundary (6.0) or strictly inside a batch (6.3).
    #[test]
    fn batch_width_and_boundary_alignment_invisible(
        seed in any::<u64>(),
        on_boundary in any::<bool>(),
    ) {
        let crash_s = if on_boundary { 6.0 } else { 6.3 };
        let reference = artifacts(2, &small(250, 8, seed, crash_s));
        for batch_window_s in [0.25, 0.5] {
            let cfg = ChaosloadConfig {
                batch_window_s,
                ..small(250, 8, seed, crash_s)
            };
            let got = artifacts(2, &cfg);
            prop_assert_eq!(&reference.0, &got.0, "batch={} crash={}", batch_window_s, crash_s);
            prop_assert_eq!(&reference.1, &got.1, "batch={} crash={}", batch_window_s, crash_s);
        }
    }
}

/// The chaos scenario is a pure function of the seed: same seed → same
/// bytes on repeated runs, different seed → different outcome.
#[test]
fn chaos_outcome_deterministic_under_fixed_seed() {
    let cfg = small(300, 8, 0xC0FFEE, 6.0);
    let a = artifacts(2, &cfg);
    let b = artifacts(2, &cfg);
    assert_eq!(a, b, "same seed must reproduce identical artifacts");
    let other = artifacts(2, &small(300, 8, 0xC0FFEE + 1, 6.0));
    assert_ne!(a.0, other.0, "different seeds must produce different chaos outcomes");
}

/// Shard invariance holds at the exact boundary cases: one shard per
/// cell, and more shards than cells (clamped) — with the crash
/// footprint split across the maximum number of shards.
#[test]
fn shard_invariance_at_extremes() {
    let reference = artifacts(1, &small(250, 1, 7, 6.0));
    for shards in [1584, 100_000] {
        let got = artifacts(4, &small(250, shards, 7, 6.0));
        assert_eq!(reference, got, "shards={shards}");
    }
}

/// A crash scheduled exactly at the warmup edge and one at the horizon
/// edge don't wedge the accounting: the engine stays consistent
/// (dropped = survived + late + lost + pending).
#[test]
fn crash_at_measurement_edges_keeps_accounting_consistent() {
    for crash_s in [3.0, 18.5] {
        let r = run_config_with(2, &Recorder::disabled(), &small(300, 8, 11, crash_s));
        let pending: u64 = r.crashes.iter().map(|c| c.pending).sum();
        assert_eq!(
            r.sessions_dropped,
            r.sessions_survived + r.sessions_late + r.sessions_lost + pending,
            "crash_s={crash_s}"
        );
    }
}
