//! Snapshot stability of the sc-obs telemetry sidecars (docs/TELEMETRY.md).
//!
//! The schema's core promise is that telemetry never perturbs
//! determinism: for a fixed seed the serialized snapshot is
//! byte-identical across reruns and across `SC_EMU_THREADS` settings,
//! and an instrumented run produces the same figure output as an
//! uninstrumented one. `SC_OBS=1 scripts/tier1.sh` checks the same
//! property end-to-end through the experiment binaries.

use sc_obs::Recorder;

/// Same seed, two runs: fig05's sidecar must be byte-identical, and the
/// instrumented run must not change the figure itself.
#[test]
fn fig05_telemetry_byte_identical_across_reruns() {
    let plain = sc_emu::fig05::run();

    let rec_a = Recorder::new();
    let r_a = sc_emu::fig05::run_obs(&rec_a);
    let rec_b = Recorder::new();
    let r_b = sc_emu::fig05::run_obs(&rec_b);

    assert_eq!(r_a.series.len(), plain.series.len());
    assert_eq!(r_b.series.len(), plain.series.len());

    let json_a = rec_a.snapshot().to_json("fig05");
    let json_b = rec_b.snapshot().to_json("fig05");
    assert!(!json_a.is_empty());
    assert_eq!(json_a, json_b, "fig05 telemetry differs across reruns");
}

/// fig10 under 1 worker vs. 4 workers: child recorders are absorbed in
/// input-slot order, so the merged sidecar must be byte-identical.
#[test]
fn fig10_telemetry_byte_identical_across_thread_counts() {
    let rec_1 = Recorder::new();
    let r_1 = sc_emu::fig10::run_obs_with(1, &rec_1);
    let rec_4 = Recorder::new();
    let r_4 = sc_emu::fig10::run_obs_with(4, &rec_4);

    assert_eq!(
        serde_json::to_string(&r_1).ok(),
        serde_json::to_string(&r_4).ok(),
        "fig10 figure output differs across thread counts"
    );
    assert_eq!(
        rec_1.snapshot().to_json("fig10"),
        rec_4.snapshot().to_json("fig10"),
        "fig10 telemetry differs across thread counts"
    );
}

/// One fig10 run spans the whole registry: at least ten distinct metric
/// names covering the netsim, fiveg, crypto, and spacecore layers
/// (acceptance floor from docs/TELEMETRY.md).
#[test]
fn fig10_telemetry_spans_layers_with_ten_plus_metrics() {
    let rec = Recorder::new();
    let _ = sc_emu::fig10::run_obs_with(2, &rec);
    let snap = rec.snapshot();

    let names = snap.metric_names();
    assert!(
        names.len() >= 10,
        "expected >= 10 distinct metrics, got {}: {names:?}",
        names.len()
    );
    for prefix in ["netsim.", "fiveg.", "crypto.", "spacecore.", "emu."] {
        assert!(
            names.iter().any(|n| n.starts_with(prefix)),
            "no metric with prefix {prefix} in {names:?}"
        );
    }

    assert_eq!(snap.counter("emu.fig10.units"), 16);
    assert_eq!(snap.counter("emu.fig10.cells"), 64);
    assert!(snap.counter("fiveg.amf.registrations") >= 1);
    assert!(snap.counter("crypto.suci.concealments") >= 1);
    assert!(snap.counter("spacecore.satellite.local_establishments") >= 1);
    assert!(snap.counter("netsim.sim.procedures") >= 1);
}

/// The acceptance contrast from docs/TELEMETRY.md: in fig10's sidecar,
/// the ground-routed C2 replay's critical path runs through a ≥ 30 ms
/// satellite↔ground transmission, while the satellite-local contrast
/// replay never waits on anything longer than its 2 ms radio leg —
/// exactly the asymmetry Figure 10 aggregates into rates.
#[test]
fn fig10_critical_path_contrasts_ground_vs_local_routes() {
    let rec = Recorder::new();
    let _ = sc_emu::fig10::run_obs_with(1, &rec);
    let json = rec.snapshot().to_json("fig10");
    let side = sc_obs::Sidecar::parse(&json).expect("sidecar parses");
    assert_eq!(side.schema, sc_obs::SCHEMA);
    assert_eq!(side.spans_dropped, 0, "storm miniature fits the span ring");
    assert!(!side.spans.is_empty());

    let forest = sc_obs::trace::TraceForest::build(&side.spans);
    let root_idx = |route: &str| {
        side.spans
            .iter()
            .position(|s| {
                s.kind == "fiveg.proc.c2_session_establishment"
                    && s.field("route") == Some(route)
            })
            .unwrap_or_else(|| panic!("no C2 root with route={route}"))
    };
    let longest_tx = |path: &[usize]| {
        path.iter()
            .filter_map(|i| side.spans.get(*i))
            .filter(|s| s.kind == "netsim.sim.tx")
            .filter_map(sc_obs::sidecar::SidecarSpan::duration)
            .fold(0.0f64, f64::max)
    };

    let ground = forest.critical_path(root_idx("ground"));
    let local = forest.critical_path(root_idx("local"));
    assert!(
        longest_tx(&ground) >= 30.0,
        "ground route's critical path should cross the 30 ms feeder link: {ground:?}"
    );
    let local_tx = longest_tx(&local);
    assert!(
        local_tx > 0.0 && local_tx <= 4.0,
        "local route should resolve over 2 ms radio hops, got {local_tx}"
    );

    let root_latency = |i: usize| side.spans[i].duration().unwrap_or(0.0);
    assert!(
        root_latency(root_idx("ground")) > root_latency(root_idx("local")),
        "ground-routed C2 must take longer end-to-end than the local one"
    );

    // The analyzer's renderings agree: the per-kind table lists the C2
    // roots and the folded stacks contain a ground-routed tx frame.
    let paths = forest.render_critical_paths();
    assert!(
        paths.contains("fiveg.proc.c2_session_establishment"),
        "{paths}"
    );
    let folded = forest.render_folded();
    assert!(
        folded
            .lines()
            .any(|l| l.contains("fiveg.proc.c2_session_establishment")
                && l.contains("netsim.sim.tx")),
        "{folded}"
    );
}

/// A disabled recorder records nothing and costs nothing: the default
/// (no `--obs-out`, no `SC_OBS`) path stays telemetry-free so regenerated
/// `results/` files are byte-identical to the pre-instrumentation build.
#[test]
fn disabled_recorder_stays_empty_through_a_full_run() {
    let rec = Recorder::disabled();
    let _ = sc_emu::fig05::run_obs(&rec);
    let _ = sc_emu::fig10::run_obs_with(2, &rec);
    assert!(rec.snapshot().is_empty());
}
