//! Invariance properties of the sc-obs/3 windowed time-series layer
//! (docs/TELEMETRY.md): the merged series must be byte-identical across
//! worker-thread counts, shard partitions (one item per child through
//! everything-in-one-child), and the granularity events are recorded at
//! — one `series_inc` per event versus one pre-bucketed
//! `series_inc_tick` per window, the `drain_until` batch shapes of the
//! mload/chaosload engines. Plus the window-edge cases: an event
//! landing exactly on a window boundary, a run confined to one window,
//! and an empty series. Backward compatibility rides along: sc-obs/1
//! and sc-obs/2 sidecars (no `series` section) must keep parsing, and
//! the series analytics must degrade to a clear message, not an error.

use proptest::prelude::*;
use sc_obs::{Recorder, SeriesSet, WINDOW_TICKS};

const NAMES: [&str; 2] = ["t.alpha_per_s", "t.beta_per_s"];

/// Record counter-series `ops` through `threads` workers over `shards`
/// input slots and return the merged snapshot bytes. Ops are dealt
/// round-robin across the slots — the adversarial partition for a merge
/// that must commute. (Counter series only: like plain gauges, gauge
/// series are last-write and therefore top-level-only under the
/// mload/chaosload shard-telemetry policy.)
fn merged_json(threads: usize, shards: usize, ops: &[(usize, u32, u64)]) -> String {
    let rec = Recorder::new();
    let mut slots: Vec<Vec<(usize, u32, u64)>> = vec![Vec::new(); shards];
    for (i, op) in ops.iter().enumerate() {
        slots[i % shards].push(*op);
    }
    sc_emu::engine::parallel_map_obs_with(threads, &rec, slots, |ops, child| {
        for &(name_idx, t_centi, by) in &ops {
            let t = f64::from(t_centi) / 100.0;
            child.series_inc(NAMES[name_idx % NAMES.len()], t, by);
        }
        ops.len()
    });
    rec.snapshot().to_json("series_props")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Counter series add elementwise, so any thread count over any
    /// shard partition merges to the same bytes. (Gauge series are
    /// last-write in slot order, which the fixed round-robin deal keeps
    /// deterministic too.)
    #[test]
    fn series_merge_is_thread_and_shard_invariant(
        ops in proptest::collection::vec((0usize..2, 0u32..2_000, 1u64..50), 1..120),
        shards in 1usize..24,
    ) {
        let reference = merged_json(1, 1, &ops);
        prop_assert_eq!(&reference, &merged_json(4, 1, &ops));
        prop_assert_eq!(&reference, &merged_json(1, shards, &ops));
        prop_assert_eq!(&reference, &merged_json(4, shards, &ops));
    }

    /// Recording granularity is invisible for counters: one
    /// `series_inc` per event produces the same series as one
    /// pre-bucketed `series_inc_tick` per window — the contract that
    /// lets `ext_mload` bill a whole drained batch at once while the
    /// DES bills per event.
    #[test]
    fn per_event_and_per_window_recording_agree(
        events in proptest::collection::vec((0u32..1_000, 1u64..20), 1..200),
    ) {
        let mut per_event = SeriesSet::default();
        let mut per_window: std::collections::BTreeMap<u64, u64> = Default::default();
        for &(t_centi, by) in &events {
            let t = f64::from(t_centi) / 100.0;
            per_event.inc("ev_per_s", t, by);
            *per_window.entry((u64::from(t_centi) * WINDOW_TICKS / 100) / WINDOW_TICKS)
                .or_default() += by;
        }
        let mut batched = SeriesSet::default();
        for (&w, &sum) in &per_window {
            batched.inc_tick("ev_per_s", w * WINDOW_TICKS, sum);
        }
        let a = per_event.get("ev_per_s").map(|d| d.points());
        let b = batched.get("ev_per_s").map(|d| d.points());
        prop_assert_eq!(a, b);
        prop_assert_eq!(per_event.dropped(), 0);
        prop_assert_eq!(batched.dropped(), 0);
    }
}

/// An event exactly on a window boundary opens the new window — the
/// half-open `[w, w+1)` convention of the DES `drain_until` batches.
#[test]
fn boundary_event_lands_in_the_new_window() {
    let mut s = SeriesSet::default();
    s.inc("x", 0.999_999, 1); // one tick short of the boundary
    s.inc("x", 1.0, 1); // exactly on it
    s.inc("x", 1.000_001, 1); // one tick past
    assert_eq!(
        s.get("x").map(|d| d.points()),
        Some(vec![(0, 1.0), (1, 2.0)])
    );
}

/// A run confined to a single window produces exactly one point, and a
/// recorder that never writes a series emits an empty section.
#[test]
fn sub_window_runs_and_empty_series() {
    let mut s = SeriesSet::default();
    for i in 0..10 {
        s.inc("x", 0.05 * f64::from(i), 1);
    }
    assert_eq!(s.get("x").map(|d| d.points()), Some(vec![(0, 10.0)]));

    let rec = Recorder::new();
    rec.inc("plain_counter", 1);
    let json = rec.snapshot().to_json("empty_series");
    assert!(json.contains("\"series\": {}"), "{json}");
    assert!(json.contains("\"series_dropped\": 0"), "{json}");
}

/// Pre-series sidecars keep parsing (sc-obs/1: no spans either;
/// sc-obs/2: spans but no series), and the series analytics degrade to
/// a clear message instead of failing — old telemetry archives stay
/// readable by new tooling.
#[test]
fn old_sidecar_generations_parse_and_degrade_gracefully() {
    let v1 = "{\n  \"schema\": \"sc-obs/1\",\n  \"experiment\": \"archive\",\n  \
        \"counters\": {\n    \"netsim.des.processed\": 42\n  },\n  \"gauges\": {},\n  \
        \"histograms\": {},\n  \"events\": [],\n  \"events_dropped\": 0\n}\n";
    let v2 = "{\n  \"schema\": \"sc-obs/2\",\n  \"experiment\": \"archive\",\n  \
        \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {},\n  \"events\": [],\n  \
        \"events_dropped\": 0,\n  \"spans\": [],\n  \"spans_dropped\": 0\n}\n";
    for (text, schema) in [(v1, "sc-obs/1"), (v2, "sc-obs/2")] {
        let sc = sc_obs::Sidecar::parse(text).expect(schema);
        assert_eq!(sc.schema, schema);
        assert!(sc.series.is_empty());
        assert_eq!(sc.series_dropped, 0);
        let report = sc_obs::trace::render_series(&sc);
        assert!(report.contains("no series section"), "{report}");
        assert!(report.contains(schema), "{report}");
    }
    // A current-schema sidecar with series renders the table instead.
    let rec = Recorder::new();
    rec.series_inc("x_per_s", 0.0, 3);
    let sc = sc_obs::Sidecar::parse(&rec.snapshot().to_json("new")).expect("sc-obs/3");
    let report = sc_obs::trace::render_series(&sc);
    assert!(report.contains("x_per_s"), "{report}");
}
