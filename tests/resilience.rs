//! Resilience integration tests: failures and attacks (§3.3, Fig. 13,
//! Fig. 19, Appendix B) exercised across crates.

use sc_geo::GeoPoint;
use sc_netsim::failure::{AttackInjector, GilbertElliott, NodeFailures};
use sc_netsim::isl::{IslConfig, IslNetwork};
use sc_orbit::{ConstellationConfig, GroundStationSet, IdealPropagator, SatId};
use spacecore::home::HomeConfig;
use spacecore::prelude::*;

/// Dead satellites: Dijkstra routes around them; connectivity survives
/// the Fig. 13a decay rate (~1/40) and much worse.
#[test]
fn routing_survives_satellite_decay() {
    let prop = IdealPropagator::new(ConstellationConfig::starlink());
    let gs = GroundStationSet::starlink_like();
    let net = IslNetwork::build(&prop, &gs, 0.0, IslConfig::default());

    for p_fail in [0.025, 0.10] {
        let failures = NodeFailures::random(net.num_sats(), p_fail, 99);
        let src = net.sat_node(SatId::new(0, 0));
        let dst = net.sat_node(SatId::new(36, 11));
        if failures.is_dead(src) || failures.is_dead(dst) {
            continue;
        }
        let clean = net
            .graph()
            .shortest_path(src, dst, |n| n >= net.num_sats())
            .expect("connected");
        let degraded = net
            .graph()
            .shortest_path(src, dst, |n| n >= net.num_sats() || failures.is_dead(n))
            .expect("still connected under decay");
        assert!(degraded.cost >= clean.cost, "detours cannot be cheaper");
        assert!(
            degraded.cost < 3.0 * clean.cost,
            "p={p_fail}: detour {} vs {}",
            degraded.cost,
            clean.cost
        );
    }
}

/// Bursty radio-link loss (Fig. 13b): a stateful multi-message
/// procedure fails if *any* message is lost; SpaceCore's 4-message local
/// exchange survives far more often than the 24-message legacy C1.
#[test]
fn short_procedures_survive_bursty_loss() {
    let trials = 2000;
    let legacy_msgs = 24; // C1 step count
    let local_msgs = 4; // SpaceCore local establishment
    let mut legacy_ok = 0;
    let mut local_ok = 0;
    let mut ge = GilbertElliott::tiantong_profile(7);
    for _ in 0..trials {
        if (0..legacy_msgs).all(|_| !ge.lost()) {
            legacy_ok += 1;
        }
        if (0..local_msgs).all(|_| !ge.lost()) {
            local_ok += 1;
        }
    }
    let legacy_rate = legacy_ok as f64 / trials as f64;
    let local_rate = local_ok as f64 / trials as f64;
    assert!(
        local_rate > legacy_rate + 0.05,
        "local {local_rate} vs legacy {legacy_rate}"
    );
}

/// Hijack exposure: a hijacked SpaceCore satellite exposes exactly its
/// active sessions, and release shrinks the exposure — while a
/// SkyCore-style replicated store would expose everything registered.
#[test]
fn hijack_exposure_is_bounded_and_shrinks() {
    let home = HomeNetwork::new(HomeConfig::default());
    let sat = SpaceCoreSatellite::provision(&home, SatId::new(5, 5));
    let mut ues: Vec<_> = (0..40)
        .map(|i| home.register_ue(1000 + i, &GeoPoint::from_degrees(35.0, 139.0)))
        .collect();
    for ue in ues.iter_mut() {
        assert!(sat.establish_session(&home, ue, 1.0).local);
    }
    assert_eq!(sat.hijack_exposure().len(), 40);
    for ue in &ues {
        sat.release(ue.supi);
    }
    assert_eq!(sat.hijack_exposure().len(), 0, "stateless after release");
}

/// Man-in-the-middle on ISLs: tapped links capture legacy state
/// migrations; Algorithm 1 paths that avoid tapped links leak nothing,
/// and the attack-injector bookkeeping composes with real paths.
#[test]
fn mitm_taps_compose_with_real_paths() {
    let prop = IdealPropagator::new(ConstellationConfig::iridium());
    let gs = GroundStationSet::starlink_like();
    let net = IslNetwork::build(&prop, &gs, 0.0, IslConfig::default());
    let mut atk = AttackInjector::new();

    let src = net.sat_node(SatId::new(0, 0));
    let dst = net.sat_node(SatId::new(3, 5));
    let path = net
        .graph()
        .shortest_path(src, dst, |n| n >= net.num_sats())
        .expect("connected");
    // Tap the middle hop of the found path.
    let mid = path.path.len() / 2;
    atk.tap_link(path.path[mid - 1], path.path[mid]);
    assert!(atk.path_tapped(&path.path));

    // Re-route around the tapped link's downstream node: clean again.
    let avoided = net
        .graph()
        .shortest_path(src, dst, |n| n >= net.num_sats() || n == path.path[mid])
        .expect("alternative exists");
    assert!(!atk.path_tapped(&avoided.path));
}

/// Replay defence: an expired replica is refused even by an authorized
/// satellite; a refreshed replica works again (Appendix B).
#[test]
fn ttl_replay_defence_end_to_end() {
    let home = HomeNetwork::new(HomeConfig {
        state_ttl_s: 100.0,
        ..HomeConfig::default()
    });
    let sat = SpaceCoreSatellite::provision(&home, SatId::new(2, 2));
    let mut ue = home.register_ue(77, &GeoPoint::from_degrees(0.0, 0.0));

    assert!(sat.try_local_establishment(&home, &mut ue, 50.0).is_ok());
    // Past the TTL: rejected, falls back to home.
    let err = sat.try_local_establishment(&home, &mut ue, 150.0).unwrap_err();
    assert!(matches!(
        err,
        spacecore::satellite::LocalPathFailure::Crypto(
            sc_crypto::statecrypt::StateCryptError::Expired
        )
    ));
    let rolled_back = sat.establish_session(&home, &mut ue, 150.0);
    assert!(!rolled_back.local);

    // Home refresh (version 2 → TTL window 200 s): local path works again.
    let (session, replica) = home.refresh_state(&ue, 150.0);
    ue.install_update(session, replica).expect("fresh version");
    assert!(sat.try_local_establishment(&home, &mut ue, 150.0).is_ok());
}

/// A compromised UE cannot forge a better state: re-encrypting a
/// modified state under the public parameters fails the home envelope
/// check at the satellite (Appendix B "UE-side state manipulation").
#[test]
fn ue_state_forgery_detected_end_to_end() {
    let home = HomeNetwork::new(HomeConfig::default());
    let sat = SpaceCoreSatellite::provision(&home, SatId::new(4, 4));
    let mut ue = home.register_ue(88, &GeoPoint::from_degrees(20.0, 30.0));

    // The selfish UE grants itself unlimited bandwidth and re-wraps the
    // state with the public ABE parameters under the same policy.
    let mut forged_session = ue.session.clone();
    forged_session.qos.ambr_kbps = u32::MAX;
    forged_session.billing.quota_bytes = u64::MAX;
    let policy = ue.replica.ciphertext.policy().clone();
    let forged_ct = sc_crypto::abe::AbeSystem::encrypt(
        home.crypto().public_key(),
        &forged_session.encode(),
        &policy,
        12345,
    );
    ue.replica.ciphertext = forged_ct;

    let err = sat.try_local_establishment(&home, &mut ue, 1.0).unwrap_err();
    assert!(matches!(
        err,
        spacecore::satellite::LocalPathFailure::Crypto(
            sc_crypto::statecrypt::StateCryptError::BadHomeSignature
        )
    ));
}

/// Polar cross-link shutdown (Fig. 13 context / §3.2 footnote): paths
/// between near-polar satellites get longer but stay connected.
#[test]
fn polar_crosslink_shutdown_lengthens_paths() {
    let prop = IdealPropagator::new(ConstellationConfig::oneweb());
    let gs = GroundStationSet::starlink_like();
    let with_cutoff = IslNetwork::build(&prop, &gs, 0.0, IslConfig::default());
    let without = IslNetwork::build(
        &prop,
        &gs,
        0.0,
        IslConfig {
            polar_cutoff_lat: None,
            ..IslConfig::default()
        },
    );
    let src = with_cutoff.sat_node(SatId::new(0, 10));
    let dst = with_cutoff.sat_node(SatId::new(9, 10));
    let block_grounds = |net: &IslNetwork, n: usize| n >= net.num_sats();
    let a = with_cutoff
        .graph()
        .shortest_path(src, dst, |n| block_grounds(&with_cutoff, n))
        .expect("connected with cutoff");
    let b = without
        .graph()
        .shortest_path(src, dst, |n| block_grounds(&without, n))
        .expect("connected without cutoff");
    assert!(a.cost >= b.cost, "cutoff cannot shorten paths");
}
