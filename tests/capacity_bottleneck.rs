//! Data-plane capacity integration: the Fig. 5a gateway bottleneck over
//! the real constellation, with the `netsim::capacity` model.

use sc_dataset::population::PopulationModel;
use sc_netsim::capacity::CapacityModel;
use sc_netsim::isl::{IslConfig, IslNetwork};
use sc_orbit::{ConstellationConfig, GroundStationSet, IdealPropagator};
use spacecore::relay::GeoRelay;

/// Build a capacity plan over the ISL network: fat ISLs, thin feeders.
fn plan(net: &IslNetwork) -> CapacityModel {
    let mut m = CapacityModel::new();
    for a in 0..net.graph().len() {
        for (b, _) in net.graph().neighbors(a) {
            let feeder = a >= net.num_sats() || b >= net.num_sats();
            // ISL 20 Gbps-class; feeder 4 Gbps-class (per-link units are
            // relative; the ratio drives the bottleneck).
            m.set_capacity(a, b, if feeder { 4.0 } else { 20.0 });
        }
    }
    m
}

#[test]
fn anchored_traffic_saturates_feeders_distributed_does_not() {
    let cfg = ConstellationConfig::starlink();
    let prop = IdealPropagator::new(cfg.clone());
    let stations = GroundStationSet::starlink_like();
    let net = IslNetwork::build(&prop, &stations, 0.0, IslConfig::default());
    let relay = GeoRelay::for_shell(&cfg);
    let pop = PopulationModel::world_bank_like();
    let ues = pop.sample_ues(60, 0xCAFE);
    let home_gw = net.ground_node(19); // beijing-cn in the default set

    // Anchored plan: every UE's traffic goes serving-sat → … → home GW.
    let mut anchored = plan(&net);
    let mut assigned = 0;
    for ue in &ues {
        let Some(serving) = net.serving_sat_of(ue, cfg.min_elevation_rad) else {
            continue;
        };
        let Some(p) = net
            .graph()
            .shortest_path(net.sat_node(serving), home_gw, |_| false)
        else {
            continue;
        };
        anchored.assign_flow(&p.path, 0.5).expect("links exist");
        assigned += 1;
    }
    assert!(assigned > 40, "coverage too sparse: {assigned}");

    // Distributed plan: the same demands relayed UE→UE by Algorithm 1
    // (pairs of consecutive samples), never touching a gateway.
    let mut distributed = plan(&net);
    for pair in ues.chunks(2) {
        if pair.len() < 2 {
            break;
        }
        let Some(serving) = net.serving_sat_of(&pair[0], cfg.min_elevation_rad) else {
            continue;
        };
        let frame = sc_geo::inclined::InclinedFrame::new(cfg.inclination_rad);
        let dst = frame.from_geo_clamped(&pair[1]);
        let tr = relay.trace(&prop, serving, dst, 0.0, 1.0);
        if !tr.delivered {
            continue;
        }
        let path: Vec<usize> = tr.path.iter().map(|s| net.sat_node(*s)).collect();
        if path.len() >= 2 {
            distributed.assign_flow(&path, 0.5).expect("ISLs exist");
        }
    }

    let (anchored_link, anchored_u) = anchored.bottleneck().expect("load assigned");
    let (_, distributed_u) = distributed.bottleneck().expect("load assigned");

    // The anchored bottleneck is a feeder link at/near the home gateway
    // and is far more utilized than anything in the distributed plan.
    let is_feeder = anchored_link.0 >= net.num_sats() || anchored_link.1 >= net.num_sats();
    assert!(is_feeder, "anchored bottleneck should be a feeder: {anchored_link:?}");
    assert!(
        anchored_u > 3.0 * distributed_u,
        "anchored {anchored_u} vs distributed {distributed_u}"
    );
}
