//! Shard-merging invariants of the sustained-load engine
//! (`sc_emu::ext_mload`): results and telemetry sidecars must be
//! byte-identical across worker-thread counts (`SC_EMU_THREADS` 1 vs 4,
//! passed explicitly through `run_config_with`) and across shard
//! counts, and the churn schedule must be a pure function of the seed.
//!
//! These are the contracts that let `scripts/tier1.sh` cmp the smoke
//! run's artifacts across thread counts, and let `bench-report` assert
//! the serial and parallel million-UE soaks agree.

use proptest::prelude::*;
use sc_emu::ext_mload::{run_config_with, MloadConfig};
use sc_obs::Recorder;

/// A small-but-real config: hundreds of UEs, a few simulated seconds,
/// every churn path (arrival, piggyback, release, sweep, crossing)
/// exercised.
fn small(total_ues: usize, shards: usize, seed: u64) -> MloadConfig {
    MloadConfig {
        total_ues,
        shards,
        warmup_s: 3.0,
        measure_s: 9.0,
        seed,
        crossing_interval_s: 60.0,
    }
}

/// Run and capture both artifacts: the result JSON and the telemetry
/// sidecar bytes.
fn artifacts(threads: usize, cfg: &MloadConfig) -> (String, String) {
    let obs = Recorder::new();
    let r = run_config_with(threads, &obs, cfg);
    (
        serde_json::to_string_pretty(&r).expect("serialize"),
        obs.snapshot().to_json("ext_mload"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `SC_EMU_THREADS` 1 vs 4: byte-identical results and telemetry
    /// for any population size, shard count and seed.
    #[test]
    fn thread_count_invisible_in_artifacts(
        total_ues in 50usize..600,
        shards in 1usize..32,
        seed in any::<u64>(),
    ) {
        let cfg = small(total_ues, shards, seed);
        let one = artifacts(1, &cfg);
        let four = artifacts(4, &cfg);
        prop_assert_eq!(&one.0, &four.0, "result JSON diverged");
        prop_assert_eq!(&one.1, &four.1, "telemetry sidecar diverged");
    }

    /// Shard count is an execution detail: merging any partition of the
    /// cells reproduces the single-shard bytes exactly.
    #[test]
    fn shard_count_invisible_in_artifacts(
        total_ues in 50usize..600,
        shards in 2usize..64,
        seed in any::<u64>(),
    ) {
        let single = artifacts(2, &small(total_ues, 1, seed));
        let sharded = artifacts(2, &small(total_ues, shards, seed));
        prop_assert_eq!(&single.0, &sharded.0, "result JSON depends on shard count");
        prop_assert_eq!(&single.1, &sharded.1, "telemetry depends on shard count");
    }
}

/// The churn arrival schedule is a pure function of the seed: same seed
/// → same bytes on repeated runs, different seed → different churn.
#[test]
fn churn_schedule_deterministic_under_fixed_seed() {
    let cfg = small(400, 8, 0xC0FFEE);
    let a = artifacts(2, &cfg);
    let b = artifacts(2, &cfg);
    assert_eq!(a, b, "same seed must reproduce identical artifacts");
    let other = artifacts(2, &small(400, 8, 0xC0FFEE + 1));
    assert_ne!(a.0, other.0, "different seeds must produce different churn");
}

/// Shard invariance holds at the exact boundary cases: one shard per
/// cell, and more shards than cells (clamped).
#[test]
fn shard_invariance_at_extremes() {
    let reference = artifacts(1, &small(300, 1, 7));
    for shards in [1584, 100_000] {
        let got = artifacts(4, &small(300, shards, 7));
        assert_eq!(reference, got, "shards={shards}");
    }
}
