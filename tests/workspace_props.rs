//! Cross-crate property tests: invariants that span the workspace.

use proptest::prelude::*;
use sc_fiveg::gtp::GtpUHeader;
use sc_fiveg::ids::TunnelId;
use sc_fiveg::state::SessionState;
use sc_geo::GeoPoint;
use sc_orbit::{ConstellationConfig, IdealPropagator, J4Propagator, Propagator, SatId};
use spacecore::home::{HomeConfig, HomeNetwork};
use spacecore::relay::GeoRelay;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sampled session state round-trips through the byte codec.
    #[test]
    fn session_state_codec_total(msin in 0u64..1_000_000_000) {
        let s = SessionState::sample(msin);
        prop_assert_eq!(SessionState::decode(&s.encode()).unwrap(), s);
    }

    /// ABE wrap → unwrap of any session state by its owner UE.
    #[test]
    fn registered_state_decryptable_by_owner(msin in 0u64..1_000_000, lat in -0.9f64..0.9, lon in -3.1f64..3.1) {
        let home = HomeNetwork::new(HomeConfig::default());
        let ue = home.register_ue(msin, &GeoPoint::new(lat, lon));
        let plain = sc_crypto::abe::AbeSystem::decrypt(&ue.replica.ciphertext, &ue.credentials.sk).unwrap();
        let decoded = SessionState::decode(&plain).unwrap();
        prop_assert_eq!(decoded, ue.session);
    }

    /// GTP-U FEF carries arbitrary byte payloads faithfully.
    #[test]
    fn gtpu_fef_roundtrip(teid in any::<u32>(), plen in any::<u16>(), fef in proptest::collection::vec(any::<u8>(), 0..512)) {
        let h = GtpUHeader::gpdu(TunnelId(teid), plen).with_fef(fef.clone());
        let wire = h.encode();
        let (h2, n) = GtpUHeader::decode(&wire).unwrap();
        prop_assert_eq!(n, wire.len());
        prop_assert_eq!(h2.fef.unwrap(), fef);
        prop_assert_eq!(h2.teid, TunnelId(teid));
    }

    /// Algorithm 1 delivers from any ingress satellite to any satellite's
    /// current coordinate, under ideal orbits, at any epoch.
    #[test]
    fn relay_delivers_from_anywhere(
        ingress_plane in 0u16..72, ingress_slot in 0u16..22,
        dst_plane in 0u16..72, dst_slot in 0u16..22,
        t in 0.0f64..6000.0,
    ) {
        let cfg = ConstellationConfig::starlink();
        let prop = IdealPropagator::new(cfg.clone());
        let relay = GeoRelay::for_shell(&cfg);
        let dst = prop.state(SatId::new(dst_plane, dst_slot), t).coord;
        let tr = relay.trace(&prop, SatId::new(ingress_plane, ingress_slot), dst, t, 1.0);
        prop_assert!(tr.delivered, "hops {}", tr.hops());
        // Grid diameter bound plus the γ compensation that Walker
        // phasing forces on long inter-plane traversals (each plane hop
        // shifts the in-plane phase by F/(m·n) of a turn).
        prop_assert!(tr.hops() <= 72 / 2 + 2 * 22 + 8, "{}", tr.hops());
    }

    /// Algorithm 1 also delivers under J4 perturbations (runtime
    /// coordinate self-calibration), for Iridium's coarse grid.
    #[test]
    fn relay_delivers_under_j4(
        dst_plane in 0u16..6, dst_slot in 0u16..11,
        t in 0.0f64..20_000.0,
    ) {
        let cfg = ConstellationConfig::iridium();
        let prop = J4Propagator::new(cfg.clone());
        let relay = GeoRelay::for_shell(&cfg);
        let dst = prop.state(SatId::new(dst_plane, dst_slot), t).coord;
        let tr = relay.trace(&prop, SatId::new(0, 0), dst, t, 1.0);
        prop_assert!(tr.delivered);
    }

    /// Geospatial addresses are unique per (cell, registration order) and
    /// stable in the encode/decode path all the way from registration.
    #[test]
    fn addresses_unique_within_batch(n in 2usize..30, lat in -0.8f64..0.8, lon in -3.0f64..3.0) {
        let home = HomeNetwork::new(HomeConfig::default());
        let p = GeoPoint::new(lat, lon);
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            let ue = home.register_ue(i as u64, &p);
            prop_assert!(seen.insert(ue.address.encode()), "duplicate address");
            prop_assert_eq!(
                sc_geo::GeoAddress::decode(ue.address.encode()),
                ue.address
            );
        }
    }

    /// Satellite sub-points always stay within the inclination band, and
    /// runtime coordinates always map back to the sub-point.
    #[test]
    fn satellite_coordinates_consistent(plane in 0u16..34, slot in 0u16..34, t in 0.0f64..50_000.0) {
        let cfg = ConstellationConfig::kuiper();
        let prop = J4Propagator::new(cfg.clone());
        let st = prop.state(SatId::new(plane, slot), t);
        prop_assert!(st.subpoint.lat.abs() <= cfg.inclination_rad + 1e-9);
        let frame = sc_geo::inclined::InclinedFrame::new(cfg.inclination_rad);
        let back = frame.to_geo(st.coord);
        prop_assert!((back.lat - st.subpoint.lat).abs() < 1e-9);
        prop_assert!(sc_geo::angle::signed_delta(back.lon, st.subpoint.lon).abs() < 1e-9);
    }

    /// Causal integrity of span traces: replaying any signaling
    /// procedure under any loss process, every span's parent link
    /// references a span that was emitted earlier (lower id AND earlier
    /// position in the ring) — so a trace can always be read forward
    /// without dangling references, whatever the retry churn.
    #[test]
    fn span_parents_reference_earlier_spans(
        kind_idx in 0usize..5,
        loss_pct in 0.0f64..0.6,
        seed in any::<u64>(),
    ) {
        use sc_fiveg::messages::{Procedure, ProcedureKind};
        let kind = [
            ProcedureKind::InitialRegistration,
            ProcedureKind::SessionEstablishment,
            ProcedureKind::Handover,
            ProcedureKind::MobilityRegistration,
            ProcedureKind::Paging,
        ][kind_idx];
        let proc = Procedure::build(kind);
        let rec = sc_obs::Recorder::new();
        let mut g = sc_netsim::topo::Graph::new(3);
        g.add_bidirectional(0, 1, 2.0);
        g.add_bidirectional(1, 2, 30.0);
        let nf = sc_netsim::failure::NodeFailures::none();
        let sim = sc_netsim::sim::ProcedureSim::new(
            &g,
            &nf,
            sc_netsim::sim::SimConfig::default(),
        )
        .with_recorder(rec.clone());
        let steps = sc_emu::obs::replay_steps(&proc);
        let mut loss = sc_netsim::failure::LossProcess::new(loss_pct, seed);
        sc_emu::obs::replay_traced(&rec, &sim, &proc, &steps, "ground", &mut loss);

        let snap = rec.snapshot();
        prop_assert!(!snap.spans.is_empty());
        prop_assert_eq!(snap.spans_dropped, 0);
        let mut seen = std::collections::HashSet::new();
        for s in &snap.spans {
            if let Some(p) = s.parent {
                prop_assert!(p < s.id, "parent {} not older than child {}", p, s.id);
                prop_assert!(
                    seen.contains(&p),
                    "parent {} of {} not emitted earlier in the ring",
                    p,
                    s.id
                );
            }
            seen.insert(s.id);
        }
        // Exactly one 5G root carrying the route tag, owning the one
        // netsim procedure span.
        let roots: Vec<_> = snap.spans.iter().filter(|s| s.parent.is_none()).collect();
        prop_assert_eq!(roots.len(), 1);
        prop_assert_eq!(roots[0].kind, kind.span_kind());
    }

    /// The mobility decision table never requires the home for satellite
    /// sweeps under SpaceCore, at any connection state.
    #[test]
    fn spacecore_sweeps_never_touch_home(connected in any::<bool>()) {
        use sc_fiveg::conn::ConnState;
        use spacecore::mobility::{MobilityEvent, MobilityManager};
        let st = if connected { ConnState::Connected } else { ConnState::Idle };
        let o = MobilityManager::spacecore().handle(MobilityEvent::SatelliteSweep(st));
        prop_assert!(!o.requires_home);
        prop_assert_eq!(o.state_migrations, 0);
    }
}
