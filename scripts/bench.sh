#!/usr/bin/env sh
# Performance snapshot: build release and emit a machine-readable
# BENCH_<date>.json (schema documented in docs/BENCHMARKS.md) with
#   - calendar-vs-heap DES events/s on the fig10/ext_chaos shapes,
#   - run_until loop-shape throughput,
#   - full fig10/ext_chaos runs: wall s, events/s, p99 step cost
#     (simulated ms, from the sc-obs span sidecar),
#   - the million-UE ext_mload soak: total UEs, steady-state events/s,
#     p99 sim-step cost, serial-vs-parallel wall (results asserted
#     byte-identical across thread counts),
#   - the fault-injected ext_chaosload soak: sessions dropped, session
#     survival, per-crash tt99, signaling-surge amplitude (byte-identity
#     asserted again, plus the recovery SLOs: survival >= 98%,
#     surge <= 3x steady state),
#   - peak RSS (VmHWM).
#
# The output filename's date stamp comes from here (override with
# SC_BENCH_DATE or pass an explicit path); the Rust binary never reads
# a wall-clock date. Everything runs --offline against the vendored
# dependency set.
#
# Usage:
#   scripts/bench.sh              # writes BENCH_<today>.json
#   scripts/bench.sh out.json     # writes out.json
set -eu

cd "$(dirname "$0")/.."

DATE="${SC_BENCH_DATE:-$(date +%Y-%m-%d)}"
OUT="${1:-BENCH_${DATE}.json}"

echo "== bench: cargo build --release --offline -p sc-bench --bin bench-report" >&2
cargo build -q --release --offline -p sc-bench --bin bench-report

echo "== bench: bench-report $OUT" >&2
./target/release/bench-report "$OUT"
