#!/usr/bin/env sh
# Static-analysis gate: sc-audit (statelessness / determinism / panic
# ratchet, see crates/audit) plus clippy with warnings promoted to
# errors. Fatal on any finding — run before merging. tier1.sh runs the
# same audit warn-only.
#
# Everything runs --offline against the vendored dependency set.
set -eu

cd "$(dirname "$0")/.."

echo "== audit: cargo build -p sc-audit --offline" >&2
cargo build -q -p sc-audit --offline

echo "== audit: sc-audit (R1 statelessness / R2 determinism / R3 ratchet)" >&2
cargo run -q -p sc-audit --offline

echo "== audit: cargo clippy --offline --workspace --all-targets -- -D warnings" >&2
cargo clippy -q --offline --workspace --all-targets -- -D warnings

# Docs gate: rustdoc must build warning-free (broken intra-doc links,
# missing code-block languages, …). docs/TELEMETRY.md names every
# metric; the crate-level rustdoc maps modules to paper sections.
echo "== audit: cargo doc --no-deps --offline --workspace (warnings are errors)" >&2
RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps --offline --workspace

echo "== audit: OK" >&2
