#!/usr/bin/env sh
# Static-analysis gate: sc-audit (statelessness / determinism / panic
# ratchet, see crates/audit) plus clippy with warnings promoted to
# errors. Fatal on any finding — run before merging. tier1.sh runs the
# same audit warn-only.
#
# Everything runs --offline against the vendored dependency set.
set -eu

cd "$(dirname "$0")/.."

# Release build: the wall-clock budget below times the real binary, and
# a debug-profile parse of the full workspace would blow it for free.
echo "== audit: cargo build -p sc-audit --release --offline" >&2
cargo build -q -p sc-audit --release --offline
AUDIT_BIN=target/release/sc-audit

echo "== audit: sc-audit (R1/R2 findings, R3 panic ratchet, R4 state-flow, R5 parallel)" >&2
T0=$(date +%s%N)
if ! "$AUDIT_BIN"; then
    echo "== audit: FAIL — re-running with --explain for the flow traces" >&2
    "$AUDIT_BIN" --explain >&2 || true
    exit 1
fi
T1=$(date +%s%N)
ELAPSED_MS=$(( (T1 - T0) / 1000000 ))
echo "== audit: full-workspace semantic audit in ${ELAPSED_MS}ms (budget 5000ms)" >&2
if [ "$ELAPSED_MS" -ge 5000 ]; then
    echo "== audit: FAIL — audit wall-clock budget exceeded (${ELAPSED_MS}ms >= 5000ms);" >&2
    echo "           the gate must stay cheap enough to run on every merge" >&2
    exit 1
fi

# Machine-readable artifact for CI annotation (SARIF 2.1.0, byte-stable
# across reruns). Emitted after the gate so a failing audit leaves the
# previous artifact untouched.
"$AUDIT_BIN" --format json > target/sc-audit.sarif.json
echo "== audit: SARIF artifact at target/sc-audit.sarif.json" >&2

echo "== audit: cargo clippy --offline --workspace --all-targets -- -D warnings" >&2
cargo clippy -q --offline --workspace --all-targets -- -D warnings

# Docs gate: rustdoc must build warning-free (broken intra-doc links,
# missing code-block languages, …). docs/TELEMETRY.md names every
# metric; the crate-level rustdoc maps modules to paper sections.
echo "== audit: cargo doc --no-deps --offline --workspace (warnings are errors)" >&2
RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps --offline --workspace

echo "== audit: OK" >&2
