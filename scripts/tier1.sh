#!/usr/bin/env sh
# Tier-1 verification (ROADMAP.md): release build + quiet test run.
#
# Runs with --offline: every external dependency is vendored under
# vendor/ (see vendor/README.md), so the build must never touch a
# registry. Pass extra cargo arguments through, e.g.
#   scripts/tier1.sh --workspace
# to extend the test run to every workspace member.
set -eu

cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release --offline" >&2
cargo build --release --offline

echo "== tier-1: cargo test -q --offline $*" >&2
cargo test -q --offline "$@"

echo "== tier-1: OK" >&2
