#!/usr/bin/env sh
# Tier-1 verification (ROADMAP.md): release build + quiet test run.
#
# Runs with --offline: every external dependency is vendored under
# vendor/ (see vendor/README.md), so the build must never touch a
# registry. Pass extra cargo arguments through, e.g.
#   scripts/tier1.sh --workspace
# to extend the test run to every workspace member.
set -eu

cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release --offline" >&2
cargo build --release --offline

echo "== tier-1: cargo test -q --offline $*" >&2
cargo test -q --offline "$@"

# Statelessness/determinism audit, warn-only at this tier: findings are
# printed but do not fail the build. scripts/audit.sh is the fatal gate.
echo "== tier-1: sc-audit (warn-only; scripts/audit.sh enforces)" >&2
cargo run -q -p sc-audit --offline -- --warn-only || true

echo "== tier-1: OK" >&2
