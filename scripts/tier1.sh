#!/usr/bin/env sh
# Tier-1 verification (ROADMAP.md): release build + quiet test run.
#
# Runs with --offline: every external dependency is vendored under
# vendor/ (see vendor/README.md), so the build must never touch a
# registry. Pass extra cargo arguments through, e.g.
#   scripts/tier1.sh --workspace
# to extend the test run to every workspace member.
set -eu

cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release --offline" >&2
cargo build --release --offline

echo "== tier-1: cargo test -q --offline $*" >&2
cargo test -q --offline "$@"

# Statelessness/determinism audit, warn-only at this tier: R1/R2 token
# findings, R4 state-flow and R5 parallel-determinism dataflow findings,
# and R3/R4/R5 ratchet regressions are printed but do not fail the
# build. scripts/audit.sh is the fatal gate (and emits the SARIF
# artifact).
echo "== tier-1: sc-audit (warn-only; scripts/audit.sh enforces)" >&2
cargo run -q -p sc-audit --offline -- --warn-only || true

# Perf-ratchet (opt-out: SC_NO_RATCHET=1). Regenerate the fig10 sc-obs
# sidecar deterministically (threads=1 — spans record *simulated* time,
# so the file is byte-stable and a checked-in baseline is meaningful)
# and gate span regressions against perf/fig10.telemetry.baseline.json
# with `sctrace diff --fail-on-regress`. 5% headroom: simulated span
# durations only move when modeled behavior changes, and small modeled
# shifts should not block unrelated work; anything larger is either a
# real regression or an intentional change that must regenerate the
# baseline (see perf/README.md).
if [ "${SC_NO_RATCHET:-0}" = "0" ]; then
    echo "== tier-1: perf-ratchet (sctrace diff vs perf/fig10.telemetry.baseline.json)" >&2
    RATCHET_TMP="$(mktemp -d)"
    ( cd "$RATCHET_TMP" && \
      SC_EMU_THREADS=1 cargo run -q --release --offline \
          --manifest-path "$OLDPWD/Cargo.toml" -p sc-emu --bin fig10 -- \
          --obs-out "$RATCHET_TMP/fig10.telemetry.json" >/dev/null )
    cargo run -q --release --offline -p sc-obs --bin sctrace -- \
        diff perf/fig10.telemetry.baseline.json "$RATCHET_TMP/fig10.telemetry.json" \
        --fail-on-regress 5 >&2 || {
        echo "== tier-1: FAIL — perf-ratchet: fig10 span regression vs checked-in baseline" >&2
        echo "           (intentional change? regenerate per perf/README.md; bypass: SC_NO_RATCHET=1)" >&2
        rm -rf "$RATCHET_TMP"
        exit 1
    }
    rm -rf "$RATCHET_TMP"
    echo "== tier-1: perf-ratchet clean (--fail-on-regress 5)" >&2
fi

# Opt-in telemetry determinism check (SC_OBS=1 scripts/tier1.sh): run
# fig05 and fig10 with the sc-obs sidecar enabled, twice and under
# different thread counts, and require byte-identical telemetry.json.
# See docs/TELEMETRY.md for the schema.
if [ "${SC_OBS:-0}" != "0" ] && [ -n "${SC_OBS:-}" ]; then
    echo "== tier-1: SC_OBS telemetry determinism (fig05, fig10)" >&2
    OBS_TMP="$(mktemp -d)"
    trap 'rm -rf "$OBS_TMP"' EXIT
    for exp in fig05 fig10; do
        ( cd "$OBS_TMP" && \
          SC_EMU_THREADS=1 cargo run -q --release --offline \
              --manifest-path "$OLDPWD/Cargo.toml" -p sc-emu --bin "$exp" -- \
              --obs-out "$OBS_TMP/$exp.t1.json" >/dev/null && \
          SC_EMU_THREADS=1 cargo run -q --release --offline \
              --manifest-path "$OLDPWD/Cargo.toml" -p sc-emu --bin "$exp" -- \
              --obs-out "$OBS_TMP/$exp.t1b.json" >/dev/null && \
          SC_EMU_THREADS=4 cargo run -q --release --offline \
              --manifest-path "$OLDPWD/Cargo.toml" -p sc-emu --bin "$exp" -- \
              --obs-out "$OBS_TMP/$exp.t4.json" >/dev/null )
        cmp "$OBS_TMP/$exp.t1.json" "$OBS_TMP/$exp.t1b.json" || {
            echo "== tier-1: FAIL — $exp telemetry differs across reruns" >&2; exit 1; }
        cmp "$OBS_TMP/$exp.t1.json" "$OBS_TMP/$exp.t4.json" || {
            echo "== tier-1: FAIL — $exp telemetry differs across thread counts" >&2; exit 1; }
        echo "== tier-1: $exp telemetry byte-stable (reruns, threads 1 vs 4)" >&2
    done

    # Causal spans + cross-run diff gate: fig10's sidecar must carry the
    # storm miniature's traced C2 replays ("spans" section), and
    # `sctrace diff` of a byte-identical rerun pair must gate zero
    # regressions at the tightest threshold.
    grep -q '"spans"' "$OBS_TMP/fig10.t1.json" || {
        echo "== tier-1: FAIL — fig10 sidecar has no spans section" >&2; exit 1; }
    echo "== tier-1: sctrace critical-path (fig10)" >&2
    cargo run -q --release --offline -p sc-obs --bin sctrace -- \
        critical-path "$OBS_TMP/fig10.t1.json" >&2
    cargo run -q --release --offline -p sc-obs --bin sctrace -- \
        diff "$OBS_TMP/fig10.t1.json" "$OBS_TMP/fig10.t1b.json" --fail-on-regress 0 >&2 || {
        echo "== tier-1: FAIL — sctrace diff gated a regression between identical reruns" >&2
        exit 1; }
    echo "== tier-1: sctrace diff gate clean (rerun pair, --fail-on-regress 0)" >&2

    # Chaos experiment: the result JSON and the telemetry sidecar must
    # both be byte-identical across thread counts (the timeline replay,
    # burst draws, and per-cell recorders are all seeded + slot-merged).
    echo "== tier-1: ext_chaos result/telemetry byte-stability (threads 1 vs 4)" >&2
    ( cd "$OBS_TMP" && \
      SC_EMU_THREADS=1 cargo run -q --release --offline \
          --manifest-path "$OLDPWD/Cargo.toml" -p sc-emu --bin ext_chaos -- \
          --obs-out "$OBS_TMP/ext_chaos.t1.json" >/dev/null && \
      cp results/ext_chaos.json ext_chaos.r1.json && \
      SC_EMU_THREADS=4 cargo run -q --release --offline \
          --manifest-path "$OLDPWD/Cargo.toml" -p sc-emu --bin ext_chaos -- \
          --obs-out "$OBS_TMP/ext_chaos.t4.json" >/dev/null && \
      cp results/ext_chaos.json ext_chaos.r4.json )
    cmp "$OBS_TMP/ext_chaos.r1.json" "$OBS_TMP/ext_chaos.r4.json" || {
        echo "== tier-1: FAIL — ext_chaos results differ across thread counts" >&2; exit 1; }
    cmp "$OBS_TMP/ext_chaos.t1.json" "$OBS_TMP/ext_chaos.t4.json" || {
        echo "== tier-1: FAIL — ext_chaos telemetry differs across thread counts" >&2; exit 1; }
    echo "== tier-1: ext_chaos byte-stable (results + telemetry, threads 1 vs 4)" >&2

    # Sustained-load engine, bounded smoke config (seconds, not the
    # million-UE soak): per-shard recorders are merged in slot order and
    # every reported quantity is shard-additive, so both the result JSON
    # and the telemetry sidecar must be byte-identical across thread
    # counts (docs/BENCHMARKS.md covers the full soak).
    echo "== tier-1: ext_mload --smoke result/telemetry byte-stability (threads 1 vs 4)" >&2
    ( cd "$OBS_TMP" && \
      SC_EMU_THREADS=1 cargo run -q --release --offline \
          --manifest-path "$OLDPWD/Cargo.toml" -p sc-emu --bin ext_mload -- \
          --smoke --obs-out "$OBS_TMP/ext_mload.t1.json" >/dev/null && \
      cp results/ext_mload.json ext_mload.r1.json && \
      SC_EMU_THREADS=4 cargo run -q --release --offline \
          --manifest-path "$OLDPWD/Cargo.toml" -p sc-emu --bin ext_mload -- \
          --smoke --obs-out "$OBS_TMP/ext_mload.t4.json" >/dev/null && \
      cp results/ext_mload.json ext_mload.r4.json )
    cmp "$OBS_TMP/ext_mload.r1.json" "$OBS_TMP/ext_mload.r4.json" || {
        echo "== tier-1: FAIL — ext_mload results differ across thread counts" >&2; exit 1; }
    cmp "$OBS_TMP/ext_mload.t1.json" "$OBS_TMP/ext_mload.t4.json" || {
        echo "== tier-1: FAIL — ext_mload telemetry differs across thread counts" >&2; exit 1; }
    echo "== tier-1: ext_mload byte-stable (results + telemetry, threads 1 vs 4)" >&2

    # Chaos under load, bounded smoke config: the fault-injected soak
    # (satellite crash + mid-recovery re-crash, feeder flap, loss burst)
    # drives paced reattach storms, admission barring and overload
    # deferral across shard boundaries — every one of those draws is
    # keyed by (seed, ue, attempt) and chaos markers replay per shard,
    # so results and telemetry must still be byte-identical across
    # thread counts (docs/BENCHMARKS.md covers the full soak + SLOs).
    echo "== tier-1: ext_chaosload --smoke result/telemetry byte-stability (threads 1 vs 4)" >&2
    ( cd "$OBS_TMP" && \
      SC_EMU_THREADS=1 cargo run -q --release --offline \
          --manifest-path "$OLDPWD/Cargo.toml" -p sc-emu --bin ext_chaosload -- \
          --smoke --obs-out "$OBS_TMP/ext_chaosload.t1.json" >/dev/null && \
      cp results/ext_chaosload.json ext_chaosload.r1.json && \
      SC_EMU_THREADS=4 cargo run -q --release --offline \
          --manifest-path "$OLDPWD/Cargo.toml" -p sc-emu --bin ext_chaosload -- \
          --smoke --obs-out "$OBS_TMP/ext_chaosload.t4.json" >/dev/null && \
      cp results/ext_chaosload.json ext_chaosload.r4.json )
    cmp "$OBS_TMP/ext_chaosload.r1.json" "$OBS_TMP/ext_chaosload.r4.json" || {
        echo "== tier-1: FAIL — ext_chaosload results differ across thread counts" >&2; exit 1; }
    cmp "$OBS_TMP/ext_chaosload.t1.json" "$OBS_TMP/ext_chaosload.t4.json" || {
        echo "== tier-1: FAIL — ext_chaosload telemetry differs across thread counts" >&2; exit 1; }
    echo "== tier-1: ext_chaosload byte-stable (results + telemetry, threads 1 vs 4)" >&2

    # Windowed time-series layer (sc-obs/3): the cmp checks above already
    # prove the "series" section byte-stable across thread counts; here,
    # require that the load-engine sidecars actually carry their windowed
    # series (an empty section would make those cmps vacuous), and smoke
    # the `sctrace series` analytics over the storm-shaped chaosload run.
    for pair in "ext_mload.t1.json:emu.mload.events_per_s" \
                "ext_chaosload.t1.json:emu.chaosload.rereg_storm_per_s" \
                "fig10.t1.json:fiveg.msgs_per_window.c2_session_establishment"; do
        side="${pair%%:*}"; name="${pair#*:}"
        grep -q "\"$name\"" "$OBS_TMP/$side" || {
            echo "== tier-1: FAIL — $side sidecar is missing series \"$name\"" >&2; exit 1; }
    done
    echo "== tier-1: sctrace series (ext_chaosload storm windows)" >&2
    cargo run -q --release --offline -p sc-obs --bin sctrace -- \
        series "$OBS_TMP/ext_chaosload.t1.json" >&2 || {
        echo "== tier-1: FAIL — sctrace series could not render the chaosload sidecar" >&2
        exit 1; }
fi

echo "== tier-1: OK" >&2
