//! Minimal offline stand-in for `rand` 0.8.
//!
//! Provides the exact surface this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen` for the primitive
//! types. The generator is a faithful ChaCha12 — the same core the
//! real crate's `StdRng` wraps — seeded through `rand_core` 0.6's
//! `seed_from_u64` PCG fill and consumed through `BlockRng`'s word
//! discipline, so the value stream is **bit-compatible** with genuine
//! `rand` 0.8: `results/` JSON regenerated against this stand-in is
//! byte-identical to output produced with the real dependency.

/// Types that can be sampled uniformly from an RNG, mirroring the real
/// crate's `Standard` distribution bit-for-bit.
pub trait RandValue {
    fn rand_from(rng: &mut rngs::StdRng) -> Self;
}

macro_rules! impl_rand_small_int {
    ($($t:ty),*) => {$(
        impl RandValue for $t {
            fn rand_from(rng: &mut rngs::StdRng) -> Self {
                rng.next_u32() as $t
            }
        }
    )*};
}
impl_rand_small_int!(u8, u16, u32, i8, i16, i32);

macro_rules! impl_rand_wide_int {
    ($($t:ty),*) => {$(
        impl RandValue for $t {
            fn rand_from(rng: &mut rngs::StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_rand_wide_int!(u64, usize, i64, isize);

impl RandValue for bool {
    /// `Standard` compares the most significant bit of a `u32`.
    fn rand_from(rng: &mut rngs::StdRng) -> Self {
        rng.next_u32() < (1 << 31)
    }
}

impl RandValue for f64 {
    /// Uniform in [0, 1): 53 random mantissa bits.
    fn rand_from(rng: &mut rngs::StdRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl RandValue for f32 {
    fn rand_from(rng: &mut rngs::StdRng) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<A: RandValue, B: RandValue> RandValue for (A, B) {
    fn rand_from(rng: &mut rngs::StdRng) -> Self {
        (A::rand_from(rng), B::rand_from(rng))
    }
}

/// Seedable random generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling interface.
pub trait Rng {
    fn next_u32(&mut self) -> u32;

    fn next_u64(&mut self) -> u64;

    fn gen<T: RandValue>(&mut self) -> T
    where
        Self: AsStdRng,
    {
        T::rand_from(self.as_std_rng())
    }
}

/// Helper so `Rng::gen` can hand the concrete core to `RandValue`
/// without making `Rng` object-unsafe generics soup.
pub trait AsStdRng {
    fn as_std_rng(&mut self) -> &mut rngs::StdRng;
}

pub mod rngs {
    use super::{AsStdRng, Rng, SeedableRng};

    const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
    /// `rand_chacha` generates four 16-word blocks per refill; the
    /// 64-word buffer boundary is where `BlockRng`'s split-`u64` case
    /// fires, so the buffer size is part of the output contract.
    const BUF_WORDS: usize = 64;

    /// ChaCha12 generator, bit-compatible with `rand` 0.8's `StdRng`
    /// (`rand_chacha::ChaCha12Rng` behind `rand_core::block::BlockRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        key: [u32; 8],
        /// 64-bit block counter (stream id is fixed at 0).
        counter: u64,
        buf: [u32; BUF_WORDS],
        /// Next unread word in `buf`; `BUF_WORDS` means exhausted.
        index: usize,
    }

    fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    /// One 16-word ChaCha12 block for (key, 64-bit counter, stream 0).
    fn chacha12_block(key: &[u32; 8], counter: u64, out: &mut [u32]) {
        let mut init = [0u32; 16];
        init[..4].copy_from_slice(&CHACHA_CONSTANTS);
        init[4..12].copy_from_slice(key);
        init[12] = counter as u32;
        init[13] = (counter >> 32) as u32;
        // Words 14/15: the 64-bit stream id, always 0 here.
        let mut w = init;
        for _ in 0..6 {
            // Double round: columns then diagonals; 12 rounds total.
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for i in 0..16 {
            out[i] = w[i].wrapping_add(init[i]);
        }
    }

    impl StdRng {
        fn from_seed(seed: [u8; 32]) -> Self {
            let mut key = [0u32; 8];
            for (i, w) in key.iter_mut().enumerate() {
                *w = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
            }
            Self {
                key,
                counter: 0,
                buf: [0; BUF_WORDS],
                index: BUF_WORDS,
            }
        }

        /// Refill the 4-block buffer and position the cursor at
        /// `start_index` (`BlockRng::generate_and_set`).
        fn refill(&mut self, start_index: usize) {
            for b in 0..BUF_WORDS / 16 {
                chacha12_block(
                    &self.key,
                    self.counter + b as u64,
                    &mut self.buf[16 * b..16 * (b + 1)],
                );
            }
            self.counter += (BUF_WORDS / 16) as u64;
            self.index = start_index;
        }
    }

    impl SeedableRng for StdRng {
        /// `rand_core` 0.6's default `seed_from_u64`: a PCG32 stream
        /// fills the 32-byte seed four bytes at a time.
        fn seed_from_u64(mut state: u64) -> Self {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_mut(4) {
                state = state.wrapping_mul(MUL).wrapping_add(INC);
                let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
                let rot = (state >> 59) as u32;
                chunk.copy_from_slice(&xorshifted.rotate_right(rot).to_le_bytes());
            }
            Self::from_seed(seed)
        }
    }

    impl Rng for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= BUF_WORDS {
                self.refill(0);
            }
            let w = self.buf[self.index];
            self.index += 1;
            w
        }

        /// `BlockRng::next_u64`: two consecutive words (low then high),
        /// including the straddle case at the buffer boundary.
        fn next_u64(&mut self) -> u64 {
            let index = self.index;
            if index < BUF_WORDS - 1 {
                self.index += 2;
                (u64::from(self.buf[index + 1]) << 32) | u64::from(self.buf[index])
            } else if index >= BUF_WORDS {
                self.refill(2);
                (u64::from(self.buf[1]) << 32) | u64::from(self.buf[0])
            } else {
                let lo = u64::from(self.buf[BUF_WORDS - 1]);
                self.refill(1);
                (u64::from(self.buf[0]) << 32) | lo
            }
        }
    }

    impl AsStdRng for StdRng {
        fn as_std_rng(&mut self) -> &mut StdRng {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let mut c = StdRng::seed_from_u64(10);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn u64_straddles_buffer_boundary() {
        // After 63 u32 draws one word remains in the 64-word buffer;
        // the next u64 must take its low half from that word and its
        // high half from the refilled buffer's first word, exactly as
        // `BlockRng` does. The word stream itself must be unaffected.
        let mut split = StdRng::seed_from_u64(7);
        for _ in 0..63 {
            split.next_u32();
        }
        let straddle = split.next_u64();
        let mut flat = StdRng::seed_from_u64(7);
        let words: Vec<u32> = (0..65).map(|_| flat.next_u32()).collect();
        assert_eq!(straddle as u32, words[63]);
        assert_eq!((straddle >> 32) as u32, words[64]);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn f64_fills_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..1000).map(|_| rng.gen::<f64>()).collect();
        assert!(xs.iter().any(|x| *x < 0.1));
        assert!(xs.iter().any(|x| *x > 0.9));
    }
}
