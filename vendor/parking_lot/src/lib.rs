//! Minimal offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with the `parking_lot` API shape the
//! workspace uses: infallible `lock()` / `read()` / `write()` (no
//! poisoning — a panicked holder aborts the guard's critical section,
//! and subsequent lockers proceed, matching parking_lot semantics
//! closely enough for this suite).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive (std-backed, poison-transparent).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock (std-backed, poison-transparent).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
