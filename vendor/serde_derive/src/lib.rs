//! Minimal offline stand-in for `serde_derive`.
//!
//! Supports `#[derive(Serialize)]` on **non-generic structs with named
//! fields** — the only shape this workspace serializes. The expansion
//! walks fields in declaration order, matching serde's JSON field
//! ordering. Hand-rolled token walking (no `syn`/`quote` available in
//! the offline environment).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, fields) = match parse_struct(input) {
        Ok(v) => v,
        Err(msg) => {
            return format!("compile_error!(\"derive(Serialize) stub: {msg}\");")
                .parse()
                .unwrap();
        }
    };

    let mut body = String::from("e.begin_object();\n");
    for f in &fields {
        body.push_str(&format!(
            "e.field(\"{f}\");\n::serde::Serialize::serialize(&self.{f}, e);\n"
        ));
    }
    body.push_str("e.end_object();");

    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self, e: &mut ::serde::ser::Emitter) {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .unwrap()
}

/// Extract `(struct_name, field_names)` from a derive input stream.
fn parse_struct(input: TokenStream) -> Result<(String, Vec<String>), String> {
    let mut iter = input.into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility/qualifiers until `struct`.
    let mut name = None;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    _ => return Err("expected struct name".into()),
                }
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                return Err("enums are not supported".into());
            }
            _ => {}
        }
    }
    let name = name.ok_or("no struct keyword found")?;

    // Find the brace-delimited field group (rejecting generics for
    // simplicity: nothing in the workspace derives on generic types).
    for tt in iter {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                return Err("generic structs are not supported".into());
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                return Ok((name, field_names(g.stream())));
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                return Err("tuple structs are not supported".into());
            }
            _ => {}
        }
    }
    Err("no field block found".into())
}

/// Field names: for each top-level comma-separated chunk, the
/// identifier immediately preceding the first top-level `:`.
/// Generic arguments (`<...>`) are tracked so their commas and colons
/// don't split fields.
fn field_names(fields: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut angle_depth = 0i32;
    let mut last_ident: Option<String> = None;
    let mut in_type = false;
    for tt in fields {
        match tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ':' if angle_depth == 0 && !in_type => {
                    if let Some(id) = last_ident.take() {
                        names.push(id);
                    }
                    in_type = true;
                }
                ',' if angle_depth == 0 => {
                    in_type = false;
                    last_ident = None;
                }
                _ => {}
            },
            TokenTree::Ident(id) if !in_type => last_ident = Some(id.to_string()),
            _ => {}
        }
    }
    names
}
