//! Minimal offline stand-in for `serde` (serialization only).
//!
//! Instead of serde's full data model, the stand-in drives a single
//! JSON [`ser::Emitter`] directly: `Serialize::serialize` writes the
//! value into the emitter, and `serde_json::to_string{,_pretty}` wrap
//! it. Field order follows declaration order, and pretty output uses
//! two-space indentation — both matching the real serde_json.

pub use serde_derive::Serialize;

pub mod ser {
    /// A JSON writer: compact or pretty (2-space indent).
    #[derive(Debug)]
    pub struct Emitter {
        out: String,
        pretty: bool,
        depth: usize,
        /// Per-level flag: has this container already emitted an item?
        has_item: Vec<bool>,
        /// An object key was just written; the next value follows `: `.
        after_key: bool,
    }

    impl Emitter {
        pub fn new(pretty: bool) -> Self {
            Self {
                out: String::new(),
                pretty,
                depth: 0,
                has_item: Vec::new(),
                after_key: false,
            }
        }

        pub fn finish(self) -> String {
            self.out
        }

        fn newline_indent(&mut self) {
            self.out.push('\n');
            for _ in 0..self.depth {
                self.out.push_str("  ");
            }
        }

        /// Position the cursor for a new value or key: emit the
        /// separating comma and (when pretty) the newline + indent.
        fn pre_item(&mut self) {
            if self.after_key {
                self.after_key = false;
                return;
            }
            if let Some(has) = self.has_item.last_mut() {
                if *has {
                    self.out.push(',');
                }
                *has = true;
                if self.pretty {
                    self.newline_indent();
                }
            }
        }

        pub fn begin_object(&mut self) {
            self.pre_item();
            self.out.push('{');
            self.depth += 1;
            self.has_item.push(false);
        }

        pub fn field(&mut self, name: &str) {
            self.pre_item();
            self.string(name);
            self.out.push(':');
            if self.pretty {
                self.out.push(' ');
            }
            self.after_key = true;
        }

        pub fn end_object(&mut self) {
            let had = self.has_item.pop().unwrap_or(false);
            self.depth -= 1;
            if self.pretty && had {
                self.newline_indent();
            }
            self.out.push('}');
        }

        pub fn begin_array(&mut self) {
            self.pre_item();
            self.out.push('[');
            self.depth += 1;
            self.has_item.push(false);
        }

        pub fn end_array(&mut self) {
            let had = self.has_item.pop().unwrap_or(false);
            self.depth -= 1;
            if self.pretty && had {
                self.newline_indent();
            }
            self.out.push(']');
        }

        /// A raw (pre-rendered) scalar token.
        pub fn scalar(&mut self, token: &str) {
            self.pre_item();
            self.out.push_str(token);
        }

        /// A JSON string literal with escaping.
        pub fn string(&mut self, s: &str) {
            self.out.push('"');
            for c in s.chars() {
                match c {
                    '"' => self.out.push_str("\\\""),
                    '\\' => self.out.push_str("\\\\"),
                    '\n' => self.out.push_str("\\n"),
                    '\r' => self.out.push_str("\\r"),
                    '\t' => self.out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        self.out.push_str(&format!("\\u{:04x}", c as u32));
                    }
                    c => self.out.push(c),
                }
            }
            self.out.push('"');
        }

        /// A string value (positions, then writes the literal).
        pub fn string_value(&mut self, s: &str) {
            self.pre_item();
            self.string(s);
        }
    }
}

/// Serialize a value into JSON via the [`ser::Emitter`].
pub trait Serialize {
    fn serialize(&self, e: &mut ser::Emitter);
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, e: &mut ser::Emitter) {
                e.scalar(&self.to_string());
            }
        }
    )*};
}
impl_ser_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// Render a finite float exactly as the real serde_json does: shortest
/// round-trip digits (Rust's `{:e}` and ryu agree on those) laid out
/// under ryu's notation rules — plain decimal while the decimal point
/// lands within [-4, 16] digits of the front, scientific (`d.ddde±x`)
/// outside that, integral values keeping a trailing `.0`.
fn ryu_format(mantissa_exp: String) -> String {
    let (mant, exp) = mantissa_exp
        .split_once('e')
        .expect("{:e} always contains an exponent");
    let exp: i32 = exp.parse().expect("{:e} exponent is an integer");
    let (sign, mant) = match mant.strip_prefix('-') {
        Some(m) => ("-", m),
        None => ("", mant),
    };
    let digits: String = mant.chars().filter(|&c| c != '.').collect();
    let len = digits.len() as i32;
    // value = digits × 10^k; decimal point sits `kk` digits in.
    let k = exp - (len - 1);
    let kk = exp + 1;
    let body = if k >= 0 && kk <= 16 {
        format!("{digits}{}.0", "0".repeat(k as usize))
    } else if kk > 0 && kk <= 16 {
        format!("{}.{}", &digits[..kk as usize], &digits[kk as usize..])
    } else if kk > -5 && kk <= 0 {
        format!("0.{}{digits}", "0".repeat(-kk as usize))
    } else if len == 1 {
        format!("{digits}e{}", kk - 1)
    } else {
        format!("{}.{}e{}", &digits[..1], &digits[1..], kk - 1)
    };
    format!("{sign}{body}")
}

macro_rules! impl_ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, e: &mut ser::Emitter) {
                if self.is_finite() {
                    e.scalar(&ryu_format(format!("{self:e}")));
                } else {
                    e.scalar("null");
                }
            }
        }
    )*};
}
impl_ser_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self, e: &mut ser::Emitter) {
        e.scalar(if *self { "true" } else { "false" });
    }
}

impl Serialize for str {
    fn serialize(&self, e: &mut ser::Emitter) {
        e.string_value(self);
    }
}

impl Serialize for String {
    fn serialize(&self, e: &mut ser::Emitter) {
        e.string_value(self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, e: &mut ser::Emitter) {
        (**self).serialize(e);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, e: &mut ser::Emitter) {
        match self {
            Some(v) => v.serialize(e),
            None => e.scalar("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, e: &mut ser::Emitter) {
        e.begin_array();
        for v in self {
            v.serialize(e);
        }
        e.end_array();
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, e: &mut ser::Emitter) {
        self.as_slice().serialize(e);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, e: &mut ser::Emitter) {
        self.as_slice().serialize(e);
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self, e: &mut ser::Emitter) {
                e.begin_array();
                $(self.$n.serialize(e);)+
                e.end_array();
            }
        }
    )*};
}
impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::ser::Emitter;
    use super::Serialize;

    fn compact<T: Serialize>(v: &T) -> String {
        let mut e = Emitter::new(false);
        v.serialize(&mut e);
        e.finish()
    }

    #[test]
    fn scalars() {
        assert_eq!(compact(&42u32), "42");
        assert_eq!(compact(&-1i64), "-1");
        assert_eq!(compact(&true), "true");
        assert_eq!(compact(&1.5f64), "1.5");
        assert_eq!(compact(&2.0f64), "2.0");
        assert_eq!(compact(&f64::NAN), "null");
        // ryu notation boundaries (matching real serde_json output).
        assert_eq!(compact(&0.0f64), "0.0");
        assert_eq!(compact(&-0.0f64), "-0.0");
        assert_eq!(compact(&893.8f64), "893.8");
        assert_eq!(compact(&0.00001f64), "0.00001");
        assert_eq!(compact(&4.913500492498967e-6), "4.913500492498967e-6");
        assert_eq!(compact(&-8.802013090673619e-6), "-8.802013090673619e-6");
        assert_eq!(compact(&1e15f64), "1000000000000000.0");
        assert_eq!(compact(&1e16f64), "1e16");
        assert_eq!(compact(&1.23e20f64), "1.23e20");
        assert_eq!(compact(&123400.0f64), "123400.0");
        assert_eq!(compact(&0.30000000000000004f64), "0.30000000000000004");
        assert_eq!(compact(&"a\"b\n"), "\"a\\\"b\\n\"");
    }

    #[test]
    fn containers() {
        assert_eq!(compact(&vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(compact(&(1u32, 2.5f64)), "[1,2.5]");
        assert_eq!(compact(&Option::<u32>::None), "null");
        assert_eq!(compact(&Some("x".to_string())), "\"x\"");
        assert_eq!(
            compact(&vec![("a".to_string(), 1.0f64)]),
            "[[\"a\",1.0]]"
        );
    }

    #[test]
    fn pretty_object_shape() {
        struct S {
            a: u32,
            b: Vec<u32>,
        }
        impl Serialize for S {
            fn serialize(&self, e: &mut Emitter) {
                e.begin_object();
                e.field("a");
                self.a.serialize(e);
                e.field("b");
                self.b.serialize(e);
                e.end_object();
            }
        }
        let mut e = Emitter::new(true);
        S { a: 1, b: vec![2, 3] }.serialize(&mut e);
        assert_eq!(
            e.finish(),
            "{\n  \"a\": 1,\n  \"b\": [\n    2,\n    3\n  ]\n}"
        );
    }

    #[test]
    fn empty_containers() {
        assert_eq!(compact(&Vec::<u32>::new()), "[]");
        let mut e = Emitter::new(true);
        Vec::<u32>::new().serialize(&mut e);
        assert_eq!(e.finish(), "[]");
    }
}
