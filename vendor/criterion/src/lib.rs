//! Minimal offline stand-in for `criterion`.
//!
//! Benches compile and run with the same source as against the real
//! crate, but measurement is intentionally lightweight: each benchmark
//! runs for a handful of iterations (bounded by `SC_BENCH_BUDGET_MS`,
//! default 200 ms per benchmark) and reports a mean ns/iter line to
//! stdout. There are no statistics, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn budget() -> Duration {
    let ms = std::env::var("SC_BENCH_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200u64);
    Duration::from_millis(ms)
}

/// Like the real criterion: cargo passes `--bench` only under
/// `cargo bench`; without it (e.g. `cargo test` running a
/// `harness = false` bench target) each benchmark executes once as a
/// smoke test instead of being measured.
fn in_test_mode() -> bool {
    !std::env::args().any(|a| a == "--bench")
}

/// Runs a closure repeatedly and records timing.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    total: Duration,
    budget: Duration,
    test_mode: bool,
}

impl Bencher {
    fn new(budget: Duration, test_mode: bool) -> Self {
        Self {
            iters: 0,
            total: Duration::ZERO,
            budget,
            test_mode,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.iters = 1;
            return;
        }
        // One untimed warm-up iteration.
        black_box(f());
        let start = Instant::now();
        loop {
            black_box(f());
            self.iters += 1;
            self.total = start.elapsed();
            if self.iters >= 3 && self.total >= self.budget {
                break;
            }
            if self.iters >= 1000 {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.test_mode {
            println!("Testing {name} ... ok");
            return;
        }
        if self.iters == 0 {
            println!("{name}: no iterations recorded");
            return;
        }
        let ns = self.total.as_nanos() / self.iters as u128;
        println!("{name}: {ns} ns/iter ({} iters)", self.iters);
    }
}

/// Identifies a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Throughput annotation; accepted and ignored by the stand-in.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    budget: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            budget: budget(),
            test_mode: in_test_mode(),
        }
    }
}

impl Criterion {
    /// Sample count hint. The stand-in keeps its time budget instead,
    /// but scales it down for small requested sample sizes.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.budget = self.budget.min(t);
        self
    }

    pub fn warm_up_time(self, _t: Duration) -> Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.budget, self.test_mode);
        f(&mut b);
        b.report(name);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.budget, self.test_mode);
        f(&mut b, input);
        b.report(&id.id);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.budget = self.criterion.budget.min(t);
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<GroupId>, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.criterion.budget, self.criterion.test_mode);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.into().0));
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<GroupId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.criterion.budget, self.criterion.test_mode);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.into().0));
        self
    }

    pub fn finish(self) {}
}

/// A benchmark label within a group: either a plain string or a
/// [`BenchmarkId`].
#[derive(Debug, Clone)]
pub struct GroupId(pub String);

impl From<&str> for GroupId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for GroupId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

impl From<BenchmarkId> for GroupId {
    fn from(id: BenchmarkId) -> Self {
        Self(id.id)
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_bounds_iters() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
            test_mode: false,
        };
        let mut count = 0u64;
        c.bench_function("counting", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        // warm-up + at least 3 measured iterations, bounded above.
        assert!(count >= 4, "{count}");
        assert!(count <= 1001 + 1, "{count}");
    }

    #[test]
    fn group_labels_compose() {
        assert_eq!(GroupId::from(BenchmarkId::new("f", 7)).0, "f/7");
        assert_eq!(GroupId::from(BenchmarkId::from_parameter("x")).0, "x");
        assert_eq!(GroupId::from("plain").0, "plain");
    }

    fn target(c: &mut Criterion) {
        c.bench_function("t", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group! {
        name = benches;
        config = Criterion { budget: Duration::from_millis(1), test_mode: false };
        targets = target
    }

    #[test]
    fn group_macro_invokes_targets() {
        benches();
    }
}
