//! Minimal offline stand-in for `proptest`.
//!
//! Supports the surface this workspace uses: the `proptest!` macro
//! (with optional `#![proptest_config(...)]` header), `prop_assert*!`,
//! range and `any::<T>()` strategies, `Strategy::prop_map`, and
//! `collection::vec`. Cases are drawn from a deterministic RNG seeded
//! by the test name, so failures reproduce across runs. There is no
//! shrinking and `*.proptest-regressions` files are ignored.

use std::ops::Range;

/// Deterministic case RNG (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed from a test name (FNV-1a), so each test gets a stable,
    /// distinct stream.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-proptest!-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

/// A value generator.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// `Strategy::prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_int {
    ($($t:ty : $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Full-range arbitrary values (the stand-in's `any`).
pub trait ArbitraryValue {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

/// Marker strategy for [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count bounds for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        pub min: usize,
        pub max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `elem`-generated values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.min < self.size.max_exclusive, "empty size range");
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, ArbitraryValue,
        ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The property-test harness macro: each contained `fn` runs its body
/// for `cases` deterministic samples of its argument strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let _ = case;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let f = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = crate::TestRng::from_name("lens");
        for _ in 0..200 {
            let v = crate::collection::vec(any::<u8>(), 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn prop_map_composes() {
        let s = (0usize..4).prop_map(|i| i * 10);
        let mut rng = crate::TestRng::from_name("map");
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 10 == 0 && v < 40);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let mut c = crate::TestRng::from_name("y");
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        assert_eq!(va, (0..4).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(va, (0..4).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bodies see generated bindings.
        #[test]
        fn macro_generates_in_range(a in 1u64..100, xs in crate::collection::vec(any::<u8>(), 0..8)) {
            prop_assert!((1..100).contains(&a), "{a}");
            prop_assert!(xs.len() < 8);
        }
    }
}
