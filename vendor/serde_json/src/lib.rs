//! Minimal offline stand-in for `serde_json` (serialization only).

use serde::ser::Emitter;
use serde::Serialize;

/// Serialization error. The stand-in emitter is infallible, so this is
/// never produced — it exists for signature compatibility.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut e = Emitter::new(false);
    value.serialize(&mut e);
    Ok(e.finish())
}

/// Serialize to a pretty JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut e = Emitter::new(true);
    value.serialize(&mut e);
    Ok(e.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[derive(Serialize)]
    struct Point {
        x: f64,
        label: String,
        series: Vec<(u32, f64)>,
    }

    #[test]
    fn derive_and_emit() {
        let p = Point {
            x: 1.25,
            label: "a".into(),
            series: vec![(1, 2.0), (3, 4.5)],
        };
        assert_eq!(
            to_string(&p).unwrap(),
            "{\"x\":1.25,\"label\":\"a\",\"series\":[[1,2.0],[3,4.5]]}"
        );
        let pretty = to_string_pretty(&p).unwrap();
        assert!(pretty.starts_with("{\n  \"x\": 1.25,"), "{pretty}");
        assert!(pretty.ends_with("\n}"), "{pretty}");
    }

    #[test]
    fn nested_structs() {
        #[derive(Serialize)]
        struct Outer {
            inner: Vec<Point>,
        }
        let o = Outer {
            inner: vec![Point {
                x: 0.0,
                label: String::new(),
                series: vec![],
            }],
        };
        assert_eq!(
            to_string(&o).unwrap(),
            "{\"inner\":[{\"x\":0.0,\"label\":\"\",\"series\":[]}]}"
        );
    }
}
